"""Group-scoped shared heaps: shared memory visible to a compartment subset.

The paper's data sharing strategies include "shared memory areas" that
need not be global: under MPK a fresh protection key can tag a region
only a *named subset* of compartments may touch, and under EPT the
backend "set[s] up shared memory areas between VMs" — per-pair windows,
not one world-readable heap.  This module generalises the builder's
single global shared heap to that model: :meth:`GroupSharedHeaps.get`
returns (creating on first use) a heap whose pages only the member
compartments can access.

Per backend:

- **MPK** — the region is tagged with a fresh pkey (descending from the
  key below the global shared key) and each member's base PKRU value is
  opened for it, so contexts created afterwards can access the region
  while non-members still fault.  When the 16-key budget is exhausted
  the region falls back to the global shared key (scope degrades to
  world-shared; counted in :attr:`pkey_fallbacks`).
- **VM/EPT** — the region is a shared window mapped at identical
  virtual addresses into exactly the member domains.
- **CHERI** — the region is appended to each member compartment's base
  capability set, so derived crossing contexts inherit reachability.
- **none/profile** — a plain mapping (no hardware scoping to apply).

Queue channels (:mod:`repro.gates.queue`) allocate their submission and
completion rings here so that ring traffic crosses no boundary for
either endpoint while remaining invisible to third compartments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.libos.alloc.allocator import HeapAllocator
from repro.machine.faults import GateError
from repro.machine.mpk import pkru_allow_write

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.machine.machine import Machine


class GroupHeap:
    """One group-scoped region plus its allocator and membership."""

    def __init__(
        self,
        name: str,
        machine: "Machine",
        base: int,
        size: int,
        members: tuple["Compartment", ...],
        pkey: int | None = None,
    ) -> None:
        self.name = name
        self.base = base
        self.size = size
        self.members = members
        #: Protection key tagging the region (MPK builds only).
        self.pkey = pkey
        self.allocator = HeapAllocator(name, machine, base, size)

    @property
    def range(self) -> tuple[int, int]:
        return (self.base, self.base + self.size)

    def owns(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = "+".join(c.name for c in self.members)
        return f"GroupHeap({names}, base={self.base:#x}, size={self.size})"


class GroupSharedHeaps:
    """Registry of group-scoped shared heaps, one per member set.

    The builder installs one instance on ``machine.group_heaps``; a
    queue channel constructed outside the builder creates a default
    instance lazily.  Heaps are keyed by the member set, so every
    channel between the same pair of compartments shares one region.
    """

    def __init__(
        self,
        machine: "Machine",
        compartments: Iterable["Compartment"] | None = None,
        shared_ranges: list[tuple[int, int]] | None = None,
        region_size: int = 256 * 1024,
    ) -> None:
        self.machine = machine
        #: All compartments in the image (pkey-budget bookkeeping);
        #: may be extended lazily as members show up.
        self.compartments: list["Compartment"] = list(compartments or ())
        #: The image's live shared-ranges list (API guards + hardening
        #: consult it); group regions are appended so pointer-provenance
        #: checks accept ring addresses.  This over-approximates *their*
        #: view of sharing scope — the hardware scoping above is what
        #: actually restricts access.
        self.shared_ranges = shared_ranges
        self.region_size = region_size
        self._heaps: dict[frozenset[int], GroupHeap] = {}
        #: Regions that fell back to the global shared pkey because the
        #: 16-key MPK budget ran out.
        self.pkey_fallbacks = 0

    # --- lookup ---------------------------------------------------------------

    def get(self, members: Iterable["Compartment"]) -> GroupHeap:
        """The group heap for exactly this member set (created lazily)."""
        members = tuple(dict.fromkeys(members))
        if not members:
            raise GateError("group heap needs at least one member compartment")
        key = frozenset(id(c) for c in members)
        heap = self._heaps.get(key)
        if heap is None:
            heap = self._create(members)
            self._heaps[key] = heap
        return heap

    def find(self, addr: int) -> GroupHeap | None:
        """The group heap owning ``addr``, if any (for free paths)."""
        for heap in self._heaps.values():
            if heap.owns(addr):
                return heap
        return None

    @property
    def regions(self) -> list[GroupHeap]:
        """All group heaps created so far (report introspection)."""
        return list(self._heaps.values())

    # --- creation -------------------------------------------------------------

    def _create(self, members: tuple["Compartment", ...]) -> GroupHeap:
        machine = self.machine
        for member in members:
            if member not in self.compartments:
                self.compartments.append(member)
        name = "gheap:" + "+".join(c.name for c in members)
        pkey: int | None = None
        if all(c.vm_domain is not None for c in members):
            base = machine.map_shared_window(
                [c.vm_domain for c in members], self.region_size
            )
        elif any(c.pkey for c in members):
            pkey = self._alloc_pkey()
            base = members[0].address_space.map_new(self.region_size, pkey=pkey)
            for member in members:
                member.pkru_value = pkru_allow_write(member.pkru_value, pkey)
        else:
            base = members[0].address_space.map_new(self.region_size)
        region = (base, base + self.region_size)
        for member in members:
            if member.capabilities is not None:
                # Mutating the base set's list means future derive()s
                # (per-crossing contexts) inherit reachability.
                member.capabilities.shared_ranges.append(region)
        if self.shared_ranges is not None and region not in self.shared_ranges:
            self.shared_ranges.append(region)
        return GroupHeap(name, machine, base, self.region_size, members, pkey)

    def _alloc_pkey(self) -> int:
        """A fresh protection key below the global shared key.

        Falls back to the global shared key when all 16 are spoken for
        — scoping degrades, the image still works.
        """
        from repro.core.config import SHARED_PKEY, STACK_PKEY

        used = {c.pkey for c in self.compartments}
        used.update({0, SHARED_PKEY, STACK_PKEY})
        used.update(
            h.pkey for h in self._heaps.values() if h.pkey is not None
        )
        for key in range(SHARED_PKEY - 1, 0, -1):
            if key not in used:
                return key
        self.pkey_fallbacks += 1
        return SHARED_PKEY
