"""The ``alloc`` micro-library: malloc/free as a gated service.

Under the MPK backend the Memory Manager must be trusted (its domain
includes the page table mapping pages to protection domains — paper
§3), which its ``Requires`` clause below encodes: other libraries in
its compartment may read but never write its memory.

The builder may *replicate* this library — one instance per compartment
— which is how FlexOS supports per-compartment allocators (mandatory
for the VM backend, and required for fine-grained SH so that only
hardened compartments pay for instrumented malloc).  ``malloc`` serves
the compartment's private heap; ``malloc_shared`` serves the global
shared heap used for data annotated as shared (mbufs, cross-domain I/O
buffers).
"""

from __future__ import annotations

from repro.libos.library import MicroLibrary, export
from repro.machine.faults import GateError


class AllocLibrary(MicroLibrary):
    """Allocation service bound to its compartment's heaps."""

    NAME = "alloc"
    SPEC = """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call]
    [API] malloc(size); free(addr); malloc_shared(size, scope=None); \
free_shared(addr); malloc_shared_many(size, count); free_shared_many(addrs); \
heap_stats()
    [Requires] *(Read,Own), *(Write,Shared), *(Call, malloc), *(Call, free), \
*(Call, malloc_shared), *(Call, free_shared), *(Call, malloc_shared_many), \
*(Call, free_shared_many), *(Call, heap_stats)
    """
    TRUE_BEHAVIOR = {"writes": ["Own", "Shared"], "reads": ["Own", "Shared"]}

    API_CONTRACTS = {
        "malloc": [(lambda args: args[0] > 0, "size must be positive")],
        "malloc_shared": [(lambda args: args[0] > 0, "size must be positive")],
        "malloc_shared_many": [
            (lambda args: args[0] > 0 and args[1] > 0, "size and count positive"),
        ],
    }

    def _private_heap(self):
        allocator = self.compartment.allocator
        if allocator is None:
            raise GateError(f"{self.NAME}: no private heap configured")
        return allocator

    def _shared_heap(self):
        allocator = self.compartment.shared_allocator
        if allocator is None:
            raise GateError(f"{self.NAME}: no shared heap configured")
        return allocator

    @export
    def malloc(self, size: int) -> int:
        """Allocate from the compartment-private heap."""
        return self._private_heap().malloc(size)

    @export
    def free(self, addr: int) -> None:
        """Free a private-heap block."""
        self._private_heap().free(addr)

    @export
    def malloc_shared(self, size: int, scope=None) -> int:
        """Allocate from the shared heap (cross-compartment data).

        With ``scope`` — an iterable of compartment names — the block
        comes from the group heap visible to exactly the caller's
        compartment plus the named ones (the paper's per-pair shared
        memory areas, rather than one world-readable heap).
        """
        if scope is None:
            return self._shared_heap().malloc(size)
        heaps = getattr(self.machine, "group_heaps", None)
        if heaps is None:
            raise GateError(f"{self.NAME}: no group heaps on this machine")
        by_name = {c.name: c for c in heaps.compartments}
        members = [self.compartment]
        for name in scope:
            member = by_name.get(name)
            if member is None:
                raise GateError(
                    f"{self.NAME}: unknown compartment {name!r} in scope"
                )
            members.append(member)
        return heaps.get(members).allocator.malloc(size)

    @export
    def free_shared(self, addr: int) -> None:
        """Free a shared-heap block (global or group-scoped)."""
        heaps = getattr(self.machine, "group_heaps", None)
        if heaps is not None:
            group = heaps.find(addr)
            if group is not None:
                group.allocator.free(addr)
                return
        self._shared_heap().free(addr)

    @export
    def malloc_shared_many(self, size: int, count: int) -> list[int]:
        """Batch-allocate ``count`` shared blocks in one crossing.

        Packet-buffer pools refill through this so that per-packet
        allocation does not cost a gate crossing each (the pbuf-pool
        pattern of lwip).
        """
        heap = self._shared_heap()
        return [heap.malloc(size) for _ in range(count)]

    @export
    def free_shared_many(self, addrs: list[int]) -> None:
        """Batch-free shared blocks in one crossing."""
        heap = self._shared_heap()
        for addr in addrs:
            heap.free(addr)

    @export
    def heap_stats(self) -> dict[str, int]:
        """Usage counters for both heaps (diagnostics)."""
        private = self._private_heap()
        shared = self._shared_heap()
        return {
            "private_in_use": private.bytes_in_use,
            "private_live": private.live_blocks,
            "shared_in_use": shared.bytes_in_use,
            "shared_live": shared.live_blocks,
        }
