"""Memory allocation micro-library (Unikraft ukalloc analogue)."""

from repro.libos.alloc.allocator import AllocationError, HeapAllocator
from repro.libos.alloc.liballoc import AllocLibrary

__all__ = ["AllocationError", "AllocLibrary", "HeapAllocator"]
