"""A first-fit free-list heap allocator over a simulated memory region.

Block metadata lives host-side (Python dictionaries) — storing headers
inside simulated memory would only slow the simulation without changing
any behaviour the evaluation exercises — but every allocation is a real
region of simulated memory, subject to pkeys and monitors, and each
malloc/free charges the cost model.

Software hardening wraps instances of this class (see
:class:`repro.sh.asan.AsanAllocator`) to add redzones and quarantine,
which is why FlexOS needs *per-compartment* allocators when only a
subset of compartments is hardened (paper, §3 "SH Support").
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING

from repro.machine.faults import OutOfMemoryError

if TYPE_CHECKING:
    from repro.machine.machine import Machine


class AllocationError(OutOfMemoryError):
    """Heap exhaustion or invalid free."""


#: All user allocations are rounded up to this alignment.
ALIGNMENT = 16


def _round_up(size: int) -> int:
    return (size + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


class HeapAllocator:
    """First-fit allocator with coalescing free list.

    Attributes:
        name: diagnostic name ("heap:netstack", "heap:shared", ...).
        base, size: the simulated region served.
    """

    def __init__(self, name: str, machine: "Machine", base: int, size: int) -> None:
        if size <= 0:
            raise ValueError("heap size must be positive")
        self.name = name
        self.machine = machine
        self.base = base
        self.size = size
        # Sorted list of free block start addresses + parallel size map.
        self._free_starts: list[int] = [base]
        self._free_sizes: dict[int, int] = {base: size}
        self._live: dict[int, int] = {}
        self.total_allocs = 0
        self.total_frees = 0
        # Size distribution of this heap's allocations (metrics layer).
        self._size_hist = machine.cpu.metrics.histogram(f"alloc.bytes:{name}")

    # --- allocation -------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the block address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        cpu = self.machine.cpu
        start_ns = cpu.clock_ns
        cpu.charge(self.machine.cost.alloc_ns)
        cpu.bump(f"malloc:{self.name}")
        injector = self.machine.injector
        if injector is not None:
            # Resilience harness: may raise InjectedFault to model
            # exhaustion of this heap (site "alloc-exhaustion").
            injector.on_malloc(self, size)
        need = _round_up(size)
        self._size_hist.observe(need)
        for index, start in enumerate(self._free_starts):
            avail = self._free_sizes[start]
            if avail < need:
                continue
            del self._free_sizes[start]
            self._free_starts.pop(index)
            if avail > need:
                rest = start + need
                self._free_sizes[rest] = avail - need
                bisect.insort(self._free_starts, rest)
            self._live[start] = need
            self.total_allocs += 1
            tracer = self.machine.obs.tracer
            if tracer.enabled:
                tracer.complete(
                    "malloc", "alloc", start_ns, heap=self.name, bytes=need
                )
            return start
        raise AllocationError(f"{self.name}: out of heap ({size} bytes requested)")

    def free(self, addr: int) -> None:
        """Release a previously allocated block."""
        cpu = self.machine.cpu
        start_ns = cpu.clock_ns
        cpu.charge(self.machine.cost.free_ns)
        size = self._live.pop(addr, None)
        if size is None:
            raise AllocationError(f"{self.name}: invalid free of {addr:#x}")
        self.total_frees += 1
        self._insert_free(addr, size)
        tracer = self.machine.obs.tracer
        if tracer.enabled:
            tracer.complete("free", "alloc", start_ns, heap=self.name, bytes=size)

    def _insert_free(self, addr: int, size: int) -> None:
        """Insert a free block, coalescing with neighbours."""
        index = bisect.bisect_left(self._free_starts, addr)
        # Coalesce with successor.
        if index < len(self._free_starts):
            nxt = self._free_starts[index]
            if addr + size == nxt:
                size += self._free_sizes.pop(nxt)
                self._free_starts.pop(index)
        # Coalesce with predecessor.
        if index > 0:
            prev = self._free_starts[index - 1]
            if prev + self._free_sizes[prev] == addr:
                self._free_sizes[prev] += size
                return
        self._free_sizes[addr] = size
        bisect.insort(self._free_starts, addr)

    # --- introspection -----------------------------------------------------

    def owns(self, addr: int) -> bool:
        """True if ``addr`` is the start of a live allocation."""
        return addr in self._live

    def block_size(self, addr: int) -> int:
        """Size of the live block at ``addr``."""
        try:
            return self._live[addr]
        except KeyError:
            raise AllocationError(f"{self.name}: {addr:#x} is not live") from None

    def contains(self, addr: int) -> bool:
        """True if ``addr`` falls inside this heap's region."""
        return self.base <= addr < self.base + self.size

    @property
    def bytes_in_use(self) -> int:
        """Total bytes currently allocated."""
        return sum(self._live.values())

    @property
    def bytes_free(self) -> int:
        """Total bytes currently free."""
        return sum(self._free_sizes.values())

    @property
    def live_blocks(self) -> int:
        """Number of live allocations."""
        return len(self._live)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HeapAllocator({self.name!r}, in_use={self.bytes_in_use}, "
            f"free={self.bytes_free})"
        )
