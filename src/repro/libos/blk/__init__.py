"""The ``blk`` micro-library: a crash-semantics block device."""

from repro.libos.blk.blkdev import (
    SECTOR_SIZE,
    BlockDeviceLibrary,
    CrashReport,
    DiskMedium,
)

__all__ = [
    "SECTOR_SIZE",
    "BlockDeviceLibrary",
    "CrashReport",
    "DiskMedium",
]
