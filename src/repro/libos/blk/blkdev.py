"""The ``blk`` micro-library: a block device with crash semantics.

Unikraft ships ``ukblkdev`` as a micro-library; FlexOS can place the
block layer in its own compartment like any other component.  The model
here has the three properties a durability study needs:

1. **Write-back caching.**  ``blk_write`` lands in a per-sector cache
   of *simulated* private memory (blocks from the compartment's heap),
   so cached-but-unflushed data is subject to protection keys,
   hardening, and gate semantics like every other byte in the system.
2. **Explicit flush barriers.**  Only ``blk_flush`` moves cached
   sectors to the durable :class:`DiskMedium`.  An acknowledged write
   is durable *iff* a flush barrier completed after it.
3. **Crash semantics.**  On an injected power failure, the unflushed
   cache is destroyed *adversarially but deterministically* from the
   campaign seed: dirty sectors are reordered, a random-length prefix
   survives, and each surviving sector may be torn (a partial write —
   the classic "512-byte sector, 4k write" failure).  Torn sectors are
   what CRC framing in the layers above must catch.

The :class:`DiskMedium` itself is *host-side* state — the analogue of
the platter surviving a reboot.  The campaign driver creates one
medium, builds an image around it, crashes the image, then builds a
fresh image against the same medium and runs recovery.

Like the filesystem, the block layer's declared FlexOS metadata is
conservative (``Read(*); Write(*); Call *``); its ``TRUE_BEHAVIOR``
is bounded, so software-hardening variants can narrow it.
"""

from __future__ import annotations

import dataclasses
import random

from repro.libos.library import MicroLibrary, export
from repro.machine.faults import GateError

#: Bytes per device sector.  Deliberately smaller than the 4096-byte
#: ramfs block so multi-sector objects exercise torn-write semantics.
SECTOR_SIZE = 512

#: Garbage byte pattern filling the torn tail of a partially-persisted
#: sector (old data / bit rot — anything but the intended payload).
_TORN_FILL = 0xEE


@dataclasses.dataclass
class CrashReport:
    """What the crash model did to the unflushed cache (audit row)."""

    dirty: int
    persisted: int
    dropped: int
    torn: int
    torn_sectors: tuple[int, ...]

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class DiskMedium:
    """Host-side durable sector store — the platter across reboots.

    Lives *outside* any image: images attach to it at build time and
    the medium keeps its contents when the image is torn down, which is
    how "reboot and recover" is modelled.  ``generation`` counts power
    failures applied to it, so tests can assert a crash happened.
    """

    def __init__(
        self, num_sectors: int = 4096, sector_size: int = SECTOR_SIZE
    ) -> None:
        self.num_sectors = num_sectors
        self.sector_size = sector_size
        #: Sparse sector payloads; missing sectors read as zeros.
        self.sectors: dict[int, bytes] = {}
        #: Power failures survived so far.
        self.generation = 0
        #: Total sector writes that reached the platter (all time).
        self.writes = 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_sectors:
            raise GateError(
                f"sector {index} out of range [0, {self.num_sectors})"
            )

    def read(self, index: int) -> bytes:
        """Durable payload of one sector (zeros when never written)."""
        self._check(index)
        payload = self.sectors.get(index)
        if payload is None:
            return b"\x00" * self.sector_size
        return payload

    def write(self, index: int, payload: bytes) -> None:
        """Persist one full sector."""
        self._check(index)
        if len(payload) != self.sector_size:
            raise GateError(
                f"sector write must be exactly {self.sector_size} bytes, "
                f"got {len(payload)}"
            )
        self.sectors[index] = bytes(payload)
        self.writes += 1


class BlockDeviceLibrary(MicroLibrary):
    """Write-back block device over a :class:`DiskMedium`."""

    NAME = "blk"
    SPEC = """
    [Memory access] Read(*); Write(*)
    [Call] *
    [API] blk_info(); blk_read(sector, buf); blk_write(sector, buf); \
blk_flush(); blk_stats()
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": [
            "alloc::malloc",
            "alloc::free",
        ],
    }
    API_CONTRACTS = {
        "blk_read": [
            (lambda args: args[0] >= 0, "sector must be non-negative"),
        ],
        "blk_write": [
            (lambda args: args[0] >= 0, "sector must be non-negative"),
        ],
    }
    POINTER_PARAMS = {"blk_read": (1,), "blk_write": (1,)}
    #: Buffers are always exactly one sector; negative = fixed size.
    CAP_GRANTS = {
        "blk_read": ((1, -SECTOR_SIZE),),
        "blk_write": ((1, -SECTOR_SIZE),),
    }

    def __init__(self) -> None:
        super().__init__()
        self.medium: DiskMedium | None = None
        self._alloc = None
        #: sector → private cache-block address (clean or dirty).
        self._cache: dict[int, int] = {}
        #: Dirty sectors in write-completion order (flush order).
        self._dirty: list[int] = []
        self.reads = 0
        self.writes = 0
        self.flushes = 0

    def on_boot(self) -> None:
        self._alloc = self.stub("alloc")
        if self.medium is None:
            # Standalone use (tests, benchmarks without a campaign
            # driver): a fresh volatile medium per image.
            self.medium = DiskMedium()

    # --- host-side wiring (campaign driver, not simulated code) -----------

    def attach_medium(self, medium: DiskMedium) -> None:
        """Attach the durable medium this device fronts (pre-boot)."""
        self.medium = medium

    # --- helpers ------------------------------------------------------------

    def _medium(self) -> DiskMedium:
        if self.medium is None:
            raise GateError("blk: no medium attached (device not booted)")
        return self.medium

    def _cache_block(self, sector: int) -> int:
        addr = self._cache.get(sector)
        if addr is None:
            addr = self._cache[sector] = self._alloc.call(
                "malloc", SECTOR_SIZE
            )
        return addr

    def _charge_op(self) -> None:
        cost = self.machine.cost
        self.charge(cost.blk_op_ns + SECTOR_SIZE * cost.blk_byte_ns)

    # --- exports --------------------------------------------------------------

    @export
    def blk_info(self) -> dict:
        """Device geometry."""
        medium = self._medium()
        return {
            "num_sectors": medium.num_sectors,
            "sector_size": medium.sector_size,
            "generation": medium.generation,
        }

    @export
    def blk_read(self, sector: int, buf_addr: int) -> int:
        """Read one sector into the caller's (shared) buffer.

        Served from the write-back cache when the sector is cached —
        reads always observe the latest write, flushed or not.
        """
        medium = self._medium()
        self._charge_op()
        cached = self._cache.get(sector)
        if cached is not None:
            self.machine.copy(buf_addr, cached, SECTOR_SIZE)
        else:
            self.machine.store(buf_addr, medium.read(sector))
        self.reads += 1
        self.machine.cpu.bump("blk.reads")
        return SECTOR_SIZE

    @export
    def blk_write(self, sector: int, buf_addr: int) -> int:
        """Write one sector from the caller's buffer into the cache.

        NOT durable until a subsequent :meth:`blk_flush` returns.
        """
        medium = self._medium()
        medium._check(sector)
        self._charge_op()
        self.machine.copy(self._cache_block(sector), buf_addr, SECTOR_SIZE)
        if sector in self._dirty:
            self._dirty.remove(sector)
        self._dirty.append(sector)
        self.writes += 1
        self.machine.cpu.bump("blk.writes")
        return SECTOR_SIZE

    @export
    def blk_flush(self) -> int:
        """Flush barrier: write back every dirty sector, in order.

        Returns the number of sectors written back.  When this export
        returns, everything written before it is durable.  The armed
        ``blk-torn-write`` site fires *during* the writeback — the
        in-flight sector is torn on the medium and the machine loses
        power, so the caller never sees the flush acknowledged.
        """
        medium = self._medium()
        cost = self.machine.cost
        self.charge(cost.blk_flush_ns)
        injector = self.machine.injector
        flushed = 0
        while self._dirty:
            sector = self._dirty[0]
            if injector is not None:
                injector.on_blk_flush(self, sector)
            self.charge(cost.blk_op_ns + SECTOR_SIZE * cost.blk_byte_ns)
            medium.write(sector, self.machine.load(self._cache[sector], SECTOR_SIZE))
            self._dirty.pop(0)
            flushed += 1
        self.flushes += 1
        self.machine.cpu.bump("blk.flushes")
        self.machine.cpu.bump("blk.flushed_sectors", flushed)
        return flushed

    @export
    def blk_stats(self) -> dict:
        """Operation counters + cache state."""
        medium = self._medium()
        return {
            "reads": self.reads,
            "writes": self.writes,
            "flushes": self.flushes,
            "cached": len(self._cache),
            "dirty": len(self._dirty),
            "medium_writes": medium.writes,
            "generation": medium.generation,
        }

    # --- crash model (host-side, driven by the campaign) ------------------

    def cache_payload(self, sector: int) -> bytes:
        """Host-side peek at a cached sector (DMA, zero cost)."""
        addr = self._cache[sector]
        return self.machine.dma_read(
            self.compartment.address_space, addr, SECTOR_SIZE
        )

    def tear_on_medium(self, sector: int, rng: random.Random) -> int:
        """Persist a *torn* copy of a cached sector (crash mid-write).

        Models power failing while the head was over the sector: a
        random-length prefix of the intended payload lands, the tail is
        garbage.  Returns the number of valid prefix bytes.  Used by
        the injector's ``blk-torn-write`` site; the caller then raises
        :class:`~repro.machine.faults.PowerFailure`.
        """
        medium = self._medium()
        payload = self.cache_payload(sector)
        keep = rng.randrange(0, SECTOR_SIZE)
        torn = payload[:keep] + bytes([_TORN_FILL]) * (SECTOR_SIZE - keep)
        medium.sectors[sector] = torn
        medium.writes += 1
        return keep

    def crash(self, rng: random.Random) -> CrashReport:
        """Destroy the unflushed cache per the crash model; seed-driven.

        Dirty sectors are *reordered*, a random-length prefix of the
        reordered list is persisted (the rest is *dropped*), and each
        persisted sector is *torn* with probability ½.  The medium's
        generation is bumped; the cache is gone (the machine lost
        power).  Flushed data is untouched — that is the contract.
        """
        medium = self._medium()
        dirty = list(self._dirty)
        rng.shuffle(dirty)
        persisted = dirty[: rng.randint(0, len(dirty))]
        torn_sectors = []
        for sector in persisted:
            if rng.random() < 0.5:
                self.tear_on_medium(sector, rng)
                torn_sectors.append(sector)
            else:
                medium.write(sector, self.cache_payload(sector))
        self._cache.clear()
        self._dirty.clear()
        medium.generation += 1
        return CrashReport(
            dirty=len(dirty),
            persisted=len(persisted),
            dropped=len(dirty) - len(persisted),
            torn=len(torn_sectors),
            torn_sectors=tuple(sorted(torn_sectors)),
        )
