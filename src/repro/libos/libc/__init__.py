"""The LibC micro-library (semaphores, memory and string operations)."""

from repro.libos.libc.libc import LibCLibrary, Semaphore

__all__ = ["LibCLibrary", "Semaphore"]
