"""The LibC micro-library: bulk memory ops and semaphores.

Two properties of this library drive the paper's results:

1. **Bulk copies live here.**  ``memcpy`` is what moves payload bytes
   between mbufs and application buffers, so hardening LibC with SH
   multiplies the dominant per-byte work — the paper's Table 1 shows a
   2.3× iperf slowdown for SH-on-LibC alone, far above any other
   component.
2. **Semaphores live here.**  The network stack's wait queues are used
   "through semaphores" implemented in LibC, so even when the network
   stack and the scheduler share a compartment, every block/wake still
   crosses into LibC (and from there into the scheduler) — which is
   exactly why the paper's ``NW+Sched/Rest`` Redis configuration is no
   faster than ``NW/Sched/Rest`` (Fig. 5 discussion).

As an unsafe C code base whose writes cannot be proven bounded, its
FlexOS spec is fully conservative (``Read(*); Write(*); Call *``): the
compatibility analysis will refuse to co-locate it with the scheduler
unless an SH-hardened variant is selected.
"""

from __future__ import annotations

import dataclasses

from repro.libos.library import MicroLibrary, export, export_blocking
from repro.libos.sched.base import Block, WaitQueue
from repro.machine.faults import GateError


@dataclasses.dataclass
class Semaphore:
    """A counting semaphore backed by a scheduler wait queue.

    ``binary`` semaphores clamp the count at 1 (event semantics, used
    for I/O readiness notification); counting semaphores serve bounded
    queues.
    """

    sem_id: int
    count: int
    waitq: WaitQueue
    binary: bool = False


class LibCLibrary(MicroLibrary):
    """LibC subset: memcpy/memset/memcmp/strlen + counting semaphores."""

    NAME = "libc"
    SPEC = """
    [Memory access] Read(*); Write(*)
    [Call] *
    [API] memcpy(dst, src, n); memset(dst, v, n); memcmp(a, b, n); \
strlen(addr); sem_new(value); sem_p(sem); sem_v(sem); sem_value(sem)
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": ["sched::block_notify", "sched::wake_one"],
    }

    API_CONTRACTS = {
        "memcpy": [
            (lambda args: args[2] >= 0, "length must be non-negative"),
        ],
        "memset": [
            (lambda args: args[2] >= 0, "length must be non-negative"),
        ],
        "sem_new": [
            (lambda args: not args or args[0] >= 0, "initial value >= 0"),
        ],
    }
    POINTER_PARAMS = {
        "memcpy": (0, 1),
        "memset": (0,),
        "memcmp": (0, 1),
        "strlen": (0,),
    }
    CAP_GRANTS = {
        "memcpy": ((0, 2), (1, 2)),
        "memset": ((0, 2),),
        "memcmp": ((0, 2), (1, 2)),
        "strlen": ((0, -1024),),
    }

    #: Upper bound for strlen scans (defensive).
    STRLEN_LIMIT = 1 << 20

    def __init__(self) -> None:
        super().__init__()
        self._sems: dict[int, Semaphore] = {}
        self._next_sem = 1
        self._sched = None

    def on_boot(self) -> None:
        self._sched = self.stub("sched")

    # --- memory operations ---------------------------------------------------

    @export
    def memcpy(self, dst: int, src: int, n: int) -> int:
        """Copy ``n`` bytes; returns ``dst`` (C convention)."""
        if n < 0:
            raise ValueError("memcpy length must be non-negative")
        if n:
            self.machine.copy(dst, src, n)
        return dst

    @export
    def memset(self, dst: int, value: int, n: int) -> int:
        """Fill ``n`` bytes with ``value``; returns ``dst``."""
        if n < 0:
            raise ValueError("memset length must be non-negative")
        if n:
            self.machine.fill(dst, value, n)
        return dst

    @export
    def memcmp(self, a: int, b: int, n: int) -> int:
        """Compare two ranges; returns <0, 0 or >0 like C memcmp."""
        left = self.machine.load(a, n) if n else b""
        right = self.machine.load(b, n) if n else b""
        if left == right:
            return 0
        return -1 if left < right else 1

    @export
    def strlen(self, addr: int) -> int:
        """Length of the NUL-terminated string at ``addr``."""
        length = 0
        while length < self.STRLEN_LIMIT:
            chunk = self.machine.load(addr + length, 16)
            nul = chunk.find(0)
            if nul >= 0:
                return length + nul
            length += 16
        raise GateError("strlen: no terminator found")

    # --- semaphores -----------------------------------------------------------

    @export
    def sem_new(self, value: int = 0, binary: bool = False) -> int:
        """Create a semaphore; returns its id."""
        if value < 0:
            raise ValueError("semaphore value must be non-negative")
        sem_id = self._next_sem
        self._next_sem += 1
        self._sems[sem_id] = Semaphore(
            sem_id, value, WaitQueue(f"sem:{sem_id}"), binary=binary
        )
        return sem_id

    def _sem(self, sem_id: int) -> Semaphore:
        sem = self._sems.get(sem_id)
        if sem is None:
            raise GateError(f"unknown semaphore {sem_id}")
        return sem

    @export_blocking
    def sem_p(self, sem_id: int):
        """P / wait: decrement, blocking while the count is zero.

        Blocking crosses into the scheduler (``block_notify``) before
        parking — under compartmentalization this is a gate crossing
        per blocking P, the traffic the paper's Fig. 5 analysis points
        at.
        """
        sem = self._sem(sem_id)
        self.charge(self.machine.cost.sem_op_ns)
        while sem.count == 0:
            self._sched.call("block_notify", sem.waitq)
            yield Block(sem.waitq)
        sem.count -= 1

    @export_blocking
    def sem_p_timeout(self, sem_id: int, deadline_ns: float):
        """P with a deadline: returns True on acquire, False on timeout.

        A one-shot scheduler timer wakes the semaphore's wait queue at
        the deadline; a woken waiter that still finds no token past the
        deadline gives up (POSIX ``sem_timedwait`` semantics).
        """
        sem = self._sem(sem_id)
        self.charge(self.machine.cost.sem_op_ns)
        timer_armed = False
        while sem.count == 0:
            if self.machine.cpu.clock_ns >= deadline_ns:
                return False
            if not timer_armed:
                self._sched.call("timer_register", deadline_ns, sem.waitq)
                timer_armed = True
            self._sched.call("block_notify", sem.waitq)
            yield Block(sem.waitq)
        sem.count -= 1
        return True

    @export
    def sem_v(self, sem_id: int) -> None:
        """V / signal: increment and notify the scheduler.

        The wait queue lives with the scheduler, so every signal
        crosses into it — the "intensive use of wait queues through
        semaphores" traffic the paper's Fig. 5 analysis identifies.
        """
        sem = self._sem(sem_id)
        self.charge(self.machine.cost.sem_op_ns)
        if not (sem.binary and sem.count >= 1):
            sem.count += 1
        self._sched.call("wake_one", sem.waitq)

    @export
    def sem_value(self, sem_id: int) -> int:
        """Current count (diagnostics)."""
        return self._sem(sem_id).count

    @export
    def sem_waiters(self, sem_id: int) -> int:
        """Number of threads blocked on the semaphore (diagnostics)."""
        return len(self._sem(sem_id).waitq)
