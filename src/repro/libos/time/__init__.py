"""Time micro-library (uktime analogue)."""

from repro.libos.time.uktime import TimeLibrary

__all__ = ["TimeLibrary"]
