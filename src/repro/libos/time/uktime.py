"""The ``time`` micro-library: clock reads and sleeping.

A thin layer over the simulated monotonic clock and the scheduler's
one-shot timers.  Sleeping is tickless: when every thread is asleep,
the run loop advances the clock directly to the next deadline, so a
sleep costs no simulated busy-waiting.
"""

from __future__ import annotations

from typing import Generator

from repro.libos.library import MicroLibrary, export, export_blocking
from repro.libos.sched.base import Block, WaitQueue


class TimeLibrary(MicroLibrary):
    """Monotonic clock + sleep, backed by scheduler timers."""

    NAME = "time"
    SPEC = """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] sched::timer_register
    [API] now_ns(); sleep_ns(duration)
    [Requires] *(Read,Own), *(Write,Shared), *(Call, now_ns), \
*(Call, sleep_ns)
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": ["sched::timer_register"],
    }
    API_CONTRACTS = {
        "sleep_ns": [
            (lambda args: args[0] >= 0, "duration must be non-negative"),
        ],
    }

    #: Cost of one clock read (rdtsc-class).
    CLOCK_READ_NS = 2.0

    def __init__(self) -> None:
        super().__init__()
        self._sched = None
        self.sleeps = 0

    def on_boot(self) -> None:
        self._sched = self.stub("sched")

    @export
    def now_ns(self) -> float:
        """Current monotonic time in simulated nanoseconds."""
        self.charge(self.CLOCK_READ_NS)
        return self.machine.cpu.clock_ns

    @export_blocking
    def sleep_ns(self, duration: float) -> Generator:
        """Block the calling thread for at least ``duration`` ns."""
        if duration < 0:
            raise ValueError("sleep duration must be non-negative")
        self.charge(self.CLOCK_READ_NS)
        if duration == 0:
            return None
        waitq = WaitQueue(f"sleep:{self.sleeps}")
        self.sleeps += 1
        deadline = self.machine.cpu.clock_ns + duration
        self._sched.call("timer_register", deadline, waitq)
        yield Block(waitq)
        return None
