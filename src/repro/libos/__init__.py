"""The Unikraft-like micro-library OS substrate.

FlexOS extends a modular LibOS (Unikraft) whose fine-grained components
— scheduler, memory allocator, network stack, libc, message queue — are
*micro-libraries* with explicit APIs.  This package provides those
micro-libraries for the reproduction, plus the library/linker plumbing
that lets the builder replace cross-library calls with gates.
"""

from repro.libos.compartment import Compartment
from repro.libos.library import (
    Linker,
    MicroLibrary,
    Stub,
    export,
    export_blocking,
)

__all__ = [
    "Compartment",
    "Linker",
    "MicroLibrary",
    "Stub",
    "export",
    "export_blocking",
]
