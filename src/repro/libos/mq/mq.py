"""Bounded message queues built on LibC semaphores.

The paper names a message queue as one of Unikraft's micro-libraries
("a scheduler, a memory allocator or a message queue are all
micro-libs").  Messages are descriptors (address, length) pointing at
shared-heap data, so queues compose with any compartment layout: the
payload is reachable on both sides, and the blocking push/pop paths
exercise the same LibC→scheduler crossing chain as sockets do.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Generator

from repro.libos.library import MicroLibrary, export, export_blocking
from repro.machine.faults import GateError


@dataclasses.dataclass
class _Queue:
    """One bounded queue: descriptor ring plus its two semaphores."""

    qid: int
    capacity: int
    items: deque
    slots_sem: int  # counts free slots (producers wait on it)
    items_sem: int  # counts queued messages (consumers wait on it)


class MessageQueueLibrary(MicroLibrary):
    """Bounded multi-producer/multi-consumer message queues."""

    NAME = "mq"
    SPEC = """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] libc::sem_new, libc::sem_p, libc::sem_v
    [API] q_new(capacity); q_push(qid, addr, length); q_pop(qid); q_len(qid)
    [Requires] *(Read,Own), *(Write,Shared), *(Call, q_new), *(Call, q_push), \
*(Call, q_pop), *(Call, q_len)
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": ["libc::sem_new", "libc::sem_p", "libc::sem_v"],
    }

    API_CONTRACTS = {
        "q_new": [
            (lambda args: args[0] > 0, "capacity must be positive"),
        ],
        "q_push": [
            (lambda args: args[2] >= 0, "length must be non-negative"),
        ],
    }
    POINTER_PARAMS = {"q_push": (1,)}
    CAP_GRANTS = {"q_push": ((1, 2),)}

    def __init__(self) -> None:
        super().__init__()
        self._queues: dict[int, _Queue] = {}
        self._next_qid = 1
        self._libc = None

    def on_boot(self) -> None:
        self._libc = self.stub("libc")

    def _queue(self, qid: int) -> _Queue:
        queue = self._queues.get(qid)
        if queue is None:
            raise GateError(f"unknown queue {qid}")
        return queue

    @export
    def q_new(self, capacity: int) -> int:
        """Create a bounded queue; returns its id."""
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        qid = self._next_qid
        self._next_qid += 1
        self._queues[qid] = _Queue(
            qid=qid,
            capacity=capacity,
            items=deque(),
            slots_sem=self._libc.call("sem_new", capacity),
            items_sem=self._libc.call("sem_new", 0),
        )
        return qid

    @export_blocking
    def q_push(self, qid: int, addr: int, length: int) -> Generator:
        """Enqueue a message descriptor, blocking while the queue is full."""
        queue = self._queue(qid)
        yield from self._libc.call_gen("sem_p", queue.slots_sem)
        queue.items.append((addr, length))
        self._libc.call("sem_v", queue.items_sem)

    @export_blocking
    def q_pop(self, qid: int) -> Generator:
        """Dequeue a message descriptor, blocking while the queue is empty."""
        queue = self._queue(qid)
        yield from self._libc.call_gen("sem_p", queue.items_sem)
        addr, length = queue.items.popleft()
        self._libc.call("sem_v", queue.slots_sem)
        return (addr, length)

    @export
    def q_len(self, qid: int) -> int:
        """Current number of queued messages."""
        return len(self._queue(qid).items)
