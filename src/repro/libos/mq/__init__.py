"""Message-queue micro-library."""

from repro.libos.mq.mq import MessageQueueLibrary

__all__ = ["MessageQueueLibrary"]
