"""Wire format of the simulated transport (a TCP-lite header).

One fixed 16-byte header carries what the evaluation path needs: port
demultiplexing, sequencing, payload length, and flags.  Checksums are
assumed offloaded to the NIC (as on the paper's testbed), so the stack
only parses/builds headers and never touches payload bytes on the rx
path — payload copies happen in LibC's ``memcpy`` at ``recv`` time,
which is what concentrates per-byte SH cost in LibC (Table 1).
"""

from __future__ import annotations

import dataclasses
import struct

#: Header layout: src port, dst port, seq, ack, length, flags, pad.
HEADER_FMT = "!HHIIHBB"
#: Precompiled header codec: pack/unpack without re-parsing the format
#: string on every packet (this runs once per segment on the data path).
_HEADER_STRUCT = struct.Struct(HEADER_FMT)
HEADER_SIZE = _HEADER_STRUCT.size
assert HEADER_SIZE == 16

#: Maximum transmission unit (standard Ethernet).
MTU = 1500
#: Maximum segment size (payload bytes per packet).
MSS = MTU - HEADER_SIZE

FLAG_SYN = 0x01
FLAG_FIN = 0x02
FLAG_PSH = 0x04


@dataclasses.dataclass
class Header:
    """Parsed packet header."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    length: int
    flags: int = 0

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)


def pack_header(header: Header) -> bytes:
    """Serialise a header to its 16-byte wire form."""
    return _HEADER_STRUCT.pack(
        header.src_port,
        header.dst_port,
        header.seq & 0xFFFFFFFF,
        header.ack & 0xFFFFFFFF,
        header.length,
        header.flags,
        0,
    )


def unpack_header(raw: bytes) -> Header:
    """Parse the 16-byte wire form into a :class:`Header`."""
    if len(raw) < HEADER_SIZE:
        raise ValueError(f"short header: {len(raw)} bytes")
    src, dst, seq, ack, length, flags, _pad = _HEADER_STRUCT.unpack_from(raw)
    return Header(src, dst, seq, ack, length, flags)


def build_packet(
    dst_port: int,
    payload: bytes,
    src_port: int = 40000,
    seq: int = 0,
    flags: int = FLAG_PSH,
) -> bytes:
    """Assemble one packet (host-side helper for workload generators)."""
    if len(payload) > MSS:
        raise ValueError(f"payload exceeds MSS ({len(payload)} > {MSS})")
    header = Header(src_port, dst_port, seq, 0, len(payload), flags)
    return pack_header(header) + payload


def segment_payload(
    dst_port: int, payload: bytes, src_port: int = 40000, seq0: int = 0
) -> list[bytes]:
    """Split a byte stream into MSS-sized packets (workload helper)."""
    packets = []
    seq = seq0
    for offset in range(0, len(payload), MSS):
        chunk = payload[offset : offset + MSS]
        packets.append(build_packet(dst_port, chunk, src_port, seq))
        seq += len(chunk)
    return packets
