"""The network stack micro-library (lwip analogue) and simulated NIC."""

from repro.libos.net.nic import NIC
from repro.libos.net.packet import (
    FLAG_FIN,
    FLAG_PSH,
    FLAG_SYN,
    HEADER_SIZE,
    MSS,
    MTU,
    Header,
    pack_header,
    segment_payload,
    unpack_header,
)
from repro.libos.net.stack import Connection, NetstackLibrary

__all__ = [
    "Connection",
    "FLAG_FIN",
    "FLAG_PSH",
    "FLAG_SYN",
    "HEADER_SIZE",
    "Header",
    "MSS",
    "MTU",
    "NIC",
    "NetstackLibrary",
    "pack_header",
    "segment_payload",
    "unpack_header",
]
