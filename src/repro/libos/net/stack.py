"""The network stack micro-library (lwip analogue).

Structure mirrors what matters for the paper's evaluation:

- **zero-copy rx**: the NIC DMAs packets straight into shared-heap
  mbufs posted by the stack; the stack parses the 16-byte header (its
  own loads) and queues the mbuf on the destination socket — payload
  bytes are only touched by LibC's ``memcpy`` when the application
  calls ``recv``;
- **semaphore wakeups through LibC**: a blocked receiver is woken via
  ``libc.sem_v`` → ``sched.wake_one``, the netstack→LibC→scheduler
  crossing chain behind the paper's Fig. 5 observations;
- **pooled mbufs**: buffer-pool refills are batched
  (``malloc_shared_many``) so steady-state rx costs no allocator
  crossing per packet, like lwip's pbuf pools.

As network-facing unsafe C, its FlexOS spec is conservative
(``Read(*); Write(*); Call *``): the compatibility analysis isolates it
unless an SH-hardened variant is chosen — it is the paper's canonical
"untrusted network stack" compartment.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Generator

from repro.libos.library import MicroLibrary, export, export_blocking
from repro.libos.net.nic import NIC
from repro.libos.net.packet import HEADER_SIZE, MSS, Header, pack_header, unpack_header
from repro.libos.sched.base import YIELD, IdleUntil
from repro.machine.faults import GateError


class _Segment:
    """One received packet queued on a connection.

    Plain slotted object, recycled through the stack's segment pool:
    the rx path creates one per packet, so pooling them (like the mbufs
    they describe) keeps steady-state receive free of allocation churn.
    """

    __slots__ = ("addr", "offset", "remaining")

    def __init__(self, addr: int, offset: int, remaining: int) -> None:
        self.addr = addr
        self.offset = offset
        self.remaining = remaining


@dataclasses.dataclass
class Connection:
    """A listening endpoint with its receive queue."""

    sockfd: int
    port: int
    rx_sem: int
    #: Address of this connection's control block (netstack static
    #: memory, updated on every packet and socket call — the stack's
    #: own instrumentable memory traffic).
    tcb_addr: int = 0
    peer_port: int = 40000
    rx_chain: deque = dataclasses.field(default_factory=deque)
    bytes_buffered: int = 0
    seq_out: int = 0
    rx_segments: int = 0


class NetstackLibrary(MicroLibrary):
    """Sockets, demux, and the rx driver loop."""

    NAME = "netstack"
    SPEC = """
    [Memory access] Read(*); Write(*)
    [Call] *
    [API] listen(port); recv(fd, buf, size); recv_timeout(fd, buf, size, t); \
send(fd, buf, size); close(fd); rx_process(budget); stop(); net_stats()
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": [
            "libc::memcpy",
            "libc::sem_new",
            "libc::sem_p",
            "libc::sem_v",
            "alloc::malloc_shared_many",
            "alloc::free_shared_many",
        ],
    }

    API_CONTRACTS = {
        "listen": [
            (lambda args: 0 < args[0] < 65536, "port must be in 1..65535"),
        ],
        "recv": [
            (lambda args: args[2] > 0, "recv size must be positive"),
        ],
        "recv_timeout": [
            (lambda args: args[2] > 0, "recv size must be positive"),
            (lambda args: args[3] >= 0, "timeout must be non-negative"),
        ],
        "send": [
            (lambda args: args[2] >= 0, "send size must be non-negative"),
        ],
    }
    POINTER_PARAMS = {"recv": (1,), "recv_timeout": (1,), "send": (1,)}
    CAP_GRANTS = {
        "recv": ((1, 2),),
        "recv_timeout": ((1, 2),),
        "send": ((1, 2),),
    }

    #: Size of one packet buffer (covers header + MSS).
    MBUF_SIZE = 2048
    #: Rx descriptor ring depth.
    RX_RING = 64
    #: Mbufs fetched per allocator refill crossing.
    MBUF_BATCH = 32
    #: Packets processed per rx-thread scheduling quantum (NAPI-like
    #: polling budget).
    RX_BUDGET = 32

    def __init__(self) -> None:
        super().__init__()
        self.nic = NIC(machine=None)  # machine bound at install
        self._conns_by_fd: dict[int, Connection] = {}
        self._conns_by_port: dict[int, Connection] = {}
        self._next_fd = 3
        self._mbuf_cache: list[int] = []
        #: Recycled :class:`_Segment` descriptors (host-side objects —
        #: no simulated cost, just less per-packet allocation churn).
        self._segment_pool: list[_Segment] = []
        self._stopped = False
        self.rx_drops = 0
        self._alloc = None
        self._libc = None

    #: Bytes per connection control block (TCP PCB analogue).
    TCB_SIZE = 64

    def on_install(self) -> None:
        self.nic.machine = self.machine
        self.nic.attach(self.compartment.address_space)
        # Packets drained per rx quantum (NAPI batch effectiveness).
        self._rx_batch_hist = self.machine.cpu.metrics.histogram("net.rx_batch_pkts")
        # Static state: the connection control-block table and the
        # port-demux hash table consulted on every received packet.
        self._tcb_table = self.alloc_static(64 * self.TCB_SIZE)
        self._port_table = self.alloc_static(64 * 16)

    def _touch_tcb(self, conn: Connection, update: bool = True) -> None:
        """Read (and optionally update) a connection's control block.

        The rx path rewrites seq/ack/window state; the socket-call path
        only consults it.
        """
        state = self.machine.load(conn.tcb_addr, 16 if update else 8)
        if update:
            self.machine.store(conn.tcb_addr, state[:8] + bytes(8))

    def on_boot(self) -> None:
        self._alloc = self.stub("alloc")
        self._libc = self.stub("libc")
        for _ in range(self.RX_RING):
            self.nic.post_rx_buffer(self._mbuf_get())

    # --- mbuf pool -------------------------------------------------------------

    def _mbuf_get(self) -> int:
        if not self._mbuf_cache:
            self._mbuf_cache.extend(
                self._alloc.call("malloc_shared_many", self.MBUF_SIZE, self.MBUF_BATCH)
            )
        return self._mbuf_cache.pop()

    def _mbuf_put(self, addr: int) -> None:
        self._mbuf_cache.append(addr)

    # --- segment pool -----------------------------------------------------------

    #: Upper bound on pooled segment descriptors (≈ ring depth × conns).
    SEGMENT_POOL_MAX = 256

    def _segment_get(self, addr: int, offset: int, remaining: int) -> _Segment:
        if self._segment_pool:
            segment = self._segment_pool.pop()
            segment.addr = addr
            segment.offset = offset
            segment.remaining = remaining
            return segment
        return _Segment(addr, offset, remaining)

    def _segment_put(self, segment: _Segment) -> None:
        if len(self._segment_pool) < self.SEGMENT_POOL_MAX:
            self._segment_pool.append(segment)

    # --- socket API ----------------------------------------------------------------

    @export
    def listen(self, port: int) -> int:
        """Open a listening endpoint on ``port``; returns a socket fd."""
        if port in self._conns_by_port:
            raise GateError(f"port {port} already bound")
        sockfd = self._next_fd
        self._next_fd += 1
        conn = Connection(
            sockfd=sockfd,
            port=port,
            rx_sem=self._libc.call("sem_new", 0, True),
            tcb_addr=self._tcb_table + (sockfd % 64) * self.TCB_SIZE,
        )
        self._conns_by_fd[sockfd] = conn
        self._conns_by_port[port] = conn
        return sockfd

    def _conn(self, sockfd: int) -> Connection:
        conn = self._conns_by_fd.get(sockfd)
        if conn is None:
            raise GateError(f"bad socket fd {sockfd}")
        return conn

    @export_blocking
    def recv(self, sockfd: int, buf_addr: int, size: int) -> Generator:
        """Receive up to ``size`` bytes into the caller's buffer.

        Blocks while no data is queued; returns the number of bytes
        copied (0 on shutdown).  The caller's buffer must be reachable
        from the LibC compartment (i.e. shared, as per the paper's
        shared-data annotations).
        """
        if size <= 0:
            raise ValueError("recv size must be positive")
        conn = self._conn(sockfd)
        # Socket-state reads are folded into the flat sock_op cost.
        self.charge(self.machine.cost.sock_op_ns)
        while conn.bytes_buffered == 0:
            if self._stopped:
                return 0
            yield from self._libc.call_gen("sem_p", conn.rx_sem)
        copied = 0
        while copied < size and conn.rx_chain:
            segment = conn.rx_chain[0]
            take = min(size - copied, segment.remaining)
            self._libc.call(
                "memcpy", buf_addr + copied, segment.addr + segment.offset, take
            )
            segment.offset += take
            segment.remaining -= take
            copied += take
            if segment.remaining == 0:
                conn.rx_chain.popleft()
                self._mbuf_put(segment.addr)
                self._segment_put(segment)
        conn.bytes_buffered -= copied
        return copied

    @export_blocking
    def recv_timeout(
        self, sockfd: int, buf_addr: int, size: int, timeout_ns: float
    ) -> Generator:
        """recv with a deadline; returns -1 on timeout (EAGAIN-style)."""
        if size <= 0:
            raise ValueError("recv size must be positive")
        if timeout_ns < 0:
            raise ValueError("timeout must be non-negative")
        conn = self._conn(sockfd)
        self.charge(self.machine.cost.sock_op_ns)
        deadline = self.machine.cpu.clock_ns + timeout_ns
        while conn.bytes_buffered == 0:
            if self._stopped:
                return 0
            acquired = yield from self._libc.call_gen(
                "sem_p_timeout", conn.rx_sem, deadline
            )
            if not acquired and conn.bytes_buffered == 0:
                return -1
        result = yield from self.recv(sockfd, buf_addr, size)
        return result

    @export
    def send(self, sockfd: int, buf_addr: int, size: int) -> int:
        """Transmit ``size`` bytes from the caller's buffer."""
        if size < 0:
            raise ValueError("send size must be non-negative")
        if size == 0:
            return 0
        conn = self._conn(sockfd)
        cost = self.machine.cost
        start_ns = self.machine.cpu.clock_ns
        self.charge(cost.sock_op_ns)
        offset = 0
        if self._libc.supports_async:
            # Batched segmentation: queue every segment's payload copy
            # on the LibC channel (one doorbell crossing per batch
            # instead of one gate crossing per MSS), then hand the
            # fully-built segments to the NIC.  Segments reach the wire
            # only after their copies completed.
            segments = []
            seq_cursor = conn.seq_out
            while offset < size:
                chunk = min(MSS, size - offset)
                mbuf = self._mbuf_get()
                header = Header(
                    src_port=conn.port,
                    dst_port=conn.peer_port,
                    seq=seq_cursor,
                    ack=0,
                    length=chunk,
                    flags=0,
                )
                self.machine.store(mbuf, pack_header(header))
                if chunk:
                    self._libc.submit(
                        "memcpy", mbuf + HEADER_SIZE, buf_addr + offset, chunk
                    )
                segments.append((mbuf, chunk))
                seq_cursor += chunk
                offset += chunk
            self._libc.drain()
            for mbuf, chunk in segments:
                self.charge(cost.pkt_fixed_ns + chunk * cost.pkt_byte_ns)
                self.nic.tx(mbuf, HEADER_SIZE + chunk)
                self._mbuf_put(mbuf)
                conn.seq_out += chunk
        else:
            while offset < size:
                chunk = min(MSS, size - offset)
                mbuf = self._mbuf_get()
                header = Header(
                    src_port=conn.port,
                    dst_port=conn.peer_port,
                    seq=conn.seq_out,
                    ack=0,
                    length=chunk,
                    flags=0,
                )
                self.machine.store(mbuf, pack_header(header))
                if chunk:
                    self._libc.call(
                        "memcpy", mbuf + HEADER_SIZE, buf_addr + offset, chunk
                    )
                self.charge(cost.pkt_fixed_ns + chunk * cost.pkt_byte_ns)
                self.nic.tx(mbuf, HEADER_SIZE + chunk)
                self._mbuf_put(mbuf)
                conn.seq_out += chunk
                offset += chunk
        tracer = self.machine.obs.tracer
        if tracer.enabled:
            tracer.complete(
                "netstack.send", "net", start_ns, bytes=size, port=conn.port
            )
        return size

    # --- rx path -----------------------------------------------------------------

    @export
    def rx_process(self, budget: int = RX_BUDGET) -> int:
        """Drain up to ``budget`` packets from the NIC into sockets."""
        cost = self.machine.cost
        start_ns = self.machine.cpu.clock_ns
        processed = 0
        while processed < budget:
            descriptor = self.nic.rx_poll()
            if descriptor is None:
                break
            addr, length = descriptor
            raw = self.machine.load(addr, HEADER_SIZE)
            header = unpack_header(raw)
            # Port-demux hash-table lookup (netstack's own memory).
            self.machine.load(
                self._port_table + (header.dst_port % 64) * 16, 16
            )
            self.charge(cost.pkt_fixed_ns + header.length * cost.pkt_byte_ns)
            # Keep the ring full: replace the consumed buffer.
            self.nic.post_rx_buffer(self._mbuf_get())
            conn = self._conns_by_port.get(header.dst_port)
            if conn is None or header.length == 0:
                if conn is not None and header.is_syn:
                    conn.peer_port = header.src_port
                else:
                    self.rx_drops += conn is None
                self._mbuf_put(addr)
                processed += 1
                continue
            conn.peer_port = header.src_port
            conn.rx_chain.append(
                self._segment_get(addr, HEADER_SIZE, header.length)
            )
            self._touch_tcb(conn)
            conn.bytes_buffered += header.length
            conn.rx_segments += 1
            # Per-packet readiness signal through LibC's semaphore (the
            # wait-queue traffic Fig. 5 attributes the scheduler-
            # isolation cost to); the semaphore is binary, so repeated
            # signals cannot accumulate stale tokens.
            self._libc.call("sem_v", conn.rx_sem)
            processed += 1
        if processed:
            self._rx_batch_hist.observe(processed)
            tracer = self.machine.obs.tracer
            if tracer.enabled:
                tracer.complete(
                    "netstack.rx_process", "net", start_ns, packets=processed
                )
        return processed

    def make_rx_loop(self, budget: int | None = None):
        """Body factory for the driver thread (spawned by the image)."""
        quantum = budget if budget is not None else self.RX_BUDGET

        def body() -> Generator:
            while not self._stopped:
                processed = self.rx_process(quantum)
                if processed == 0:
                    # Nothing to do.  If the NIC knows exactly when the
                    # wire delivers the next packet, sleep until then —
                    # once everything else blocks too, the scheduler
                    # jumps the clock there instead of ticking empty
                    # polls.  Unknown arrival time (idle wire, closed
                    # client window) → keep yield-polling.
                    ready = self.nic.next_rx_ready_ns()
                    if ready is not None and ready > self.machine.cpu.clock_ns:
                        yield IdleUntil(ready)
                        continue
                yield YIELD

        return body

    # --- lifecycle / stats -----------------------------------------------------------

    @export
    def close(self, sockfd: int) -> None:
        """Close a socket: unbind the port, recycle queued buffers."""
        conn = self._conn(sockfd)
        self.charge(self.machine.cost.sock_op_ns)
        while conn.rx_chain:
            segment = conn.rx_chain.popleft()
            self._mbuf_put(segment.addr)
            self._segment_put(segment)
        conn.bytes_buffered = 0
        del self._conns_by_fd[sockfd]
        self._conns_by_port.pop(conn.port, None)

    @export
    def is_listening(self, port: int) -> bool:
        """True if a listener is bound to ``port``."""
        return port in self._conns_by_port

    @export
    def stop(self) -> None:
        """Shut the stack down; wakes blocked receivers with EOF."""
        self._stopped = True
        for conn in self._conns_by_fd.values():
            self._libc.call("sem_v", conn.rx_sem)

    @export
    def net_stats(self) -> dict[str, int]:
        """Counters for tests and benchmarks."""
        return {
            "rx_packets": self.nic.rx_packets,
            "tx_packets": self.nic.tx_packets,
            "rx_bytes": self.nic.rx_bytes,
            "tx_bytes": self.nic.tx_bytes,
            "rx_drops": self.rx_drops,
            "open_sockets": len(self._conns_by_fd),
        }
