"""The simulated NIC: DMA rings fed by a workload source.

The paper measures server-side throughput with an external client
(iperf client, redis-benchmark).  Here the "wire" is a pair of
callbacks installed by the workload harness:

- ``rx_source()`` returns the next packet's bytes (or ``None`` when the
  client currently has nothing to send) — pulled whenever the driver
  polls with posted buffers available, and DMA'd directly into
  stack-posted packet buffers (zero-copy rx, as with real descriptor
  rings);
- ``tx_sink(bytes)`` receives transmitted packets (the client side of
  the connection), enabling closed-loop workloads such as the Redis
  benchmark where each response triggers the next request.

DMA bypasses protection keys and charges no CPU time (the client's
machine is not the system under test); driver interactions
(descriptor/doorbell work) charge ``nic_op_ns``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.machine.faults import GateError

if TYPE_CHECKING:
    from repro.machine.address_space import AddressSpace
    from repro.machine.machine import Machine


class NIC:
    """Simulated network interface with rx/tx descriptor rings."""

    def __init__(self, machine: "Machine", name: str = "nic0") -> None:
        self.machine = machine
        self.name = name
        self.space: "AddressSpace | None" = None
        #: Client callbacks (installed by the workload harness).
        self.rx_source: Callable[[], bytes | None] | None = None
        self.tx_sink: Callable[[bytes], None] | None = None
        #: Posted (empty) rx buffers: addresses of stack-owned mbufs.
        self._rx_posted: deque[int] = deque()
        #: Filled rx descriptors: (mbuf address, packet length).
        self._rx_done: deque[tuple[int, int]] = deque()
        #: Simulated time at which the wire can deliver the next packet
        #: (line-rate pacing; see CostModel.wire_byte_ns).
        self._wire_ready_ns = 0.0
        #: True once the client source answered None (nothing in
        #: flight): ``_wire_ready_ns`` is then not a meaningful arrival
        #: time.  Cleared by :meth:`tx` — a transmitted response may
        #: open the client's window — and by the next successful pull.
        self._wire_idle = False
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.tx_bytes = 0

    def attach(self, space: "AddressSpace") -> None:
        """Bind the NIC's DMA engine to an address space."""
        self.space = space

    # --- receive path ---------------------------------------------------------

    def post_rx_buffer(self, addr: int) -> None:
        """Driver posts an empty buffer for incoming packets."""
        self._rx_posted.append(addr)

    def _pull_from_wire(self) -> None:
        """DMA client packets that the wire has finished delivering.

        The link serialises bytes at a finite rate: a packet becomes
        visible only once the simulated clock has passed its arrival
        time.  When the CPU outruns the wire, polls come back empty and
        the receiver ends up blocking — line rate becomes the
        bottleneck, exactly the large-buffer regime of Figure 3.
        """
        if self.rx_source is None or self.space is None:
            return
        cost = self.machine.cost
        now = self.machine.cpu.clock_ns
        # Packets keep arriving while the CPU is busy, so a backlog
        # accumulates and is delivered as a burst at the next poll —
        # bounded by a TCP-window's worth of in-flight data (and by the
        # posted-buffer ring).
        max_backlog_ns = 64 * (cost.wire_pkt_ns + 1500 * cost.wire_byte_ns)
        if self._wire_ready_ns < now - max_backlog_ns:
            self._wire_ready_ns = now - max_backlog_ns
        while self._rx_posted and now >= self._wire_ready_ns:
            packet = self.rx_source()
            if packet is None:
                # The wire went idle (client window empty): the next
                # transmission cannot start earlier than now.
                self._wire_idle = True
                if self._wire_ready_ns < now:
                    self._wire_ready_ns = now
                return
            self._wire_idle = False
            addr = self._rx_posted.popleft()
            self.machine.dma_write(self.space, addr, packet)
            self._rx_done.append((addr, len(packet)))
            self.rx_packets += 1
            self.rx_bytes += len(packet)
            self._wire_ready_ns += (
                cost.wire_pkt_ns + len(packet) * cost.wire_byte_ns
            )

    def rx_poll(self) -> tuple[int, int] | None:
        """Driver polls for a received packet: (mbuf addr, length).

        Charges one descriptor operation when a packet is returned; an
        empty poll is a cheap doorbell read.
        """
        if not self._rx_done:
            self._pull_from_wire()
        if not self._rx_done:
            self.machine.cpu.charge(self.machine.cost.nic_op_ns / 8)
            return None
        self.machine.cpu.charge(self.machine.cost.nic_op_ns)
        self.machine.cpu.bump("nic_rx")
        return self._rx_done.popleft()

    def next_rx_ready_ns(self) -> float | None:
        """When the wire will next have a packet ready, if known.

        Returns None when data is already waiting, when no client is
        attached, or when the wire is idle (the client's window is
        closed, so no arrival time exists) — callers must then keep
        polling.  Otherwise the next packet finishes arriving at
        exactly ``_wire_ready_ns``, so an rx thread that found nothing
        to do may sleep until then (:class:`IdleUntil`) instead of
        burning empty-poll quanta.
        """
        if self._rx_done or self.rx_source is None or self._wire_idle:
            return None
        return self._wire_ready_ns

    @property
    def rx_pending(self) -> int:
        """Packets DMA'd and waiting for the driver."""
        return len(self._rx_done)

    @property
    def rx_buffers_posted(self) -> int:
        """Empty buffers currently posted."""
        return len(self._rx_posted)

    # --- transmit path -----------------------------------------------------------

    def tx(self, addr: int, length: int) -> None:
        """Transmit ``length`` bytes from the mbuf at ``addr``."""
        if self.space is None:
            raise GateError(f"{self.name}: not attached")
        self.machine.cpu.charge(self.machine.cost.nic_op_ns)
        self.machine.cpu.bump("nic_tx")
        # A response may open the client's window: ask the source again.
        self._wire_idle = False
        data = self.machine.dma_read(self.space, addr, length)
        self.tx_packets += 1
        self.tx_bytes += length
        if self.tx_sink is not None:
            self.tx_sink(data)
