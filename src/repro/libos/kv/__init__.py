"""The ``kv`` micro-library: a bitcask-style log-structured store."""

from repro.libos.kv.store import (
    MAX_VALUE,
    KVStoreLibrary,
    RecordError,
)

__all__ = [
    "MAX_VALUE",
    "KVStoreLibrary",
    "RecordError",
]
