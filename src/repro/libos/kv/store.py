"""The ``kv`` micro-library: a bitcask-style log-structured KV store.

Layered on the ``blk`` micro-library, in the architecture Bitcask made
canonical (Sheehy & Smith, 2010):

- every put/delete *appends* a CRC-framed record to the active segment;
- an in-memory **keydir** maps each key to its latest record's location;
- sealed segments get **hint files** (compact keydir snapshots) so
  recovery can rebuild the keydir without scanning the data;
- a size-triggered **compaction/merge** rewrites live records into
  fresh segments and drops superseded ones.

Durability contract: a record is durable once a ``blk_flush`` barrier
completes after its append.  The flush policy (``every-write`` or
``batch:N``) decides when that happens; ``sync()`` forces it.  After a
crash, recovery replays the manifest's segments in order, discards any
torn record at first CRC mismatch (everything behind a torn record in
a log segment is unreachable, by construction), and rebuilds the
keydir — so *every* flushed-acknowledged write is readable again and
*no* torn record ever surfaces to a reader.

On-disk layout (sector-addressed through ``blk``)::

    sector 0,1          dual manifest (crc32 | gen | count | slot ids);
                        the valid manifest with the highest generation
                        wins, writes alternate between the two sectors
    per slot i          2 + i*(SEG_SECTORS+HINT_SECTORS) ... data
                        sectors, then HINT_SECTORS of hint records

Record framing: ``crc32(4) seq(8) klen(2) vlen(4) flags(1) key value``
with the CRC covering everything after itself.  ``flags`` bit 0 marks
a tombstone.  ``seq`` is a store-wide monotonic counter, so replay
order is well-defined even across merged segments.

The declared FlexOS metadata is conservative (like the filesystem's):
unhardened C storage engines cannot bound their behaviour.  The
``[Requires]`` clause protects the keydir the way the allocator
protects its heap headers: compartment neighbours may read but never
write kv memory, and control may only enter through the API.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib

from repro.libos.library import MicroLibrary, export
from repro.machine.faults import GateError, MachineError

from repro.libos.blk.blkdev import SECTOR_SIZE

#: Largest value accepted by :meth:`KVStoreLibrary.put` (one record
#: must fit comfortably inside a segment).
MAX_VALUE = 4096

#: Record header: crc32 | seq | klen | vlen | flags.
_HDR = struct.Struct(">IQHIB")
#: Hint entry header: seq | offset | rec_len | flags | klen.
_HINT_ENTRY = struct.Struct(">QIIBH")
#: Manifest header: crc32 | gen | count.
_MANIFEST = struct.Struct(">IQH")

_TOMBSTONE = 0x01
#: Padding record (fills a sector's tail at a flush barrier; never
#: enters the keydir).
_PAD = 0x02


class RecordError(MachineError):
    """A stored record failed its CRC or framing check on read."""


@dataclasses.dataclass(frozen=True)
class _KeyDirEntry:
    """Latest known location of one key."""

    slot: int
    offset: int
    rec_len: int
    seq: int
    flags: int

    @property
    def tombstone(self) -> bool:
        return bool(self.flags & _TOMBSTONE)


#: Record body header (the :data:`_HDR` layout minus the leading crc32)
#: and the crc32 prefix itself, precompiled — ``_encode_record`` runs
#: once per put/delete/pad on the data path.
_HDR_BODY = struct.Struct(">QHIB")
_CRC = struct.Struct(">I")


def _encode_record(key: bytes, value: bytes, seq: int, flags: int) -> bytes:
    body = _HDR_BODY.pack(seq, len(key), len(value), flags) + key + value
    return _CRC.pack(zlib.crc32(body)) + body


class KVStoreLibrary(MicroLibrary):
    """Bitcask-style store over the ``blk`` micro-library."""

    NAME = "kv"
    SPEC = """
    [Memory access] Read(*); Write(*)
    [Call] *
    [API] put(key, buf, n); get(key, buf); delete(key); sync(); \
compact(); recover(); set_flush_policy(policy); kv_keys(); kv_stats()
    [Requires] *(Read,Own), *(Write,Shared), *(Call, put), *(Call, get), \
*(Call, delete), *(Call, sync), *(Call, compact), *(Call, recover), \
*(Call, set_flush_policy), *(Call, kv_keys), *(Call, kv_stats)
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": [
            "alloc::malloc",
            "alloc::free",
            "alloc::malloc_shared",
            "alloc::free_shared",
            "blk::blk_info",
            "blk::blk_read",
            "blk::blk_write",
            "blk::blk_flush",
        ],
    }
    API_CONTRACTS = {
        "put": [
            (
                lambda args: 0 <= args[2] <= MAX_VALUE,
                f"value length must be in [0, {MAX_VALUE}]",
            ),
        ],
    }
    POINTER_PARAMS = {"put": (1,), "get": (1,)}
    CAP_GRANTS = {"put": ((1, 2),), "get": ((1, -MAX_VALUE),)}

    #: Segment slots on the medium (manifest lists the live subset).
    NUM_SLOTS = 8
    #: Data sectors per slot (segment capacity = SEG_SECTORS * 512).
    SEG_SECTORS = 32
    #: Hint sectors per slot; an oversized hint is simply not written
    #: (recovery falls back to a scan).
    HINT_SECTORS = 16
    #: Sealed-slot count that triggers an automatic merge on seal.
    COMPACT_THRESHOLD = 5
    #: Write staging buffers cycled by the append path.  Each in-flight
    #: ``blk_write`` submission holds one buffer until the channel
    #: flushes, so with a batched (queue) blk channel the ring lets a
    #: whole batch stay queued without any buffer being rewritten under
    #: a pending submission.
    STAGING_BUFS = 16

    def __init__(self) -> None:
        super().__init__()
        self._blk = None
        self._alloc = None
        self._staging = 0  # shared sector buffer for blk *reads*
        self._write_bufs: list[int] = []  # staging ring for blk writes
        self._write_seq = 0
        self._open = False
        self._keydir: dict[bytes, _KeyDirEntry] = {}
        #: Append-order record metadata per live slot (hint source):
        #: slot → list of (key, seq, offset, rec_len, flags).
        self._slot_records: dict[int, list] = {}
        self._slots: list[int] = [0]
        self._gen = 0
        self._seq = 0
        self._durable_seq = 0
        self._append_offset = 0
        self._tail = bytearray()  # active slot's partial sector (in-place)
        self._flush_policy = "every-write"
        self._batch = 1
        self._unflushed = 0
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.compactions = 0
        self.recoveries = 0
        self.torn_discarded = 0
        self.hint_hits = 0
        self.hint_misses = 0

    def on_boot(self) -> None:
        self._blk = self.stub("blk")
        self._alloc = self.stub("alloc")

    # --- geometry -----------------------------------------------------------

    @property
    def _seg_bytes(self) -> int:
        return self.SEG_SECTORS * SECTOR_SIZE

    def _slot_base(self, slot: int) -> int:
        return 2 + slot * (self.SEG_SECTORS + self.HINT_SECTORS)

    def _hint_base(self, slot: int) -> int:
        return self._slot_base(slot) + self.SEG_SECTORS

    @property
    def _active(self) -> int:
        return self._slots[-1]

    # --- sector plumbing (all data moves through the blk gate) -------------

    def _buf(self) -> int:
        if not self._staging:
            self._staging = self._alloc.call("malloc_shared", SECTOR_SIZE)
        return self._staging

    def _next_write_buf(self) -> int:
        index = self._write_seq % self.STAGING_BUFS
        self._write_seq += 1
        if index == len(self._write_bufs):
            self._write_bufs.append(
                self._alloc.call("malloc_shared", SECTOR_SIZE)
            )
        return self._write_bufs[index]

    def _drain_blk(self) -> None:
        """Flush queued writes and surface any deferred write error.

        On a synchronous blk channel submissions executed (and raised)
        immediately, so this just empties the completion list; on a
        queue channel it rings the doorbell and re-raises the first
        failed write — the error a sync ``blk_write`` call would have
        raised at append time.
        """
        self._blk.drain()

    def _blk_flush(self) -> None:
        """Drain queued writes, then issue the device flush barrier."""
        self._drain_blk()
        self._blk.call("blk_flush")

    def _write_sector(self, sector: int, payload: bytes) -> None:
        if len(payload) < SECTOR_SIZE:
            payload = payload + b"\x00" * (SECTOR_SIZE - len(payload))
        if self._blk.pending >= self.STAGING_BUFS:
            # Every staging buffer is referenced by an in-flight
            # submission; executing them releases the ring.
            self._drain_blk()
        buf = self._next_write_buf()
        self.machine.store(buf, payload)
        self._blk.submit("blk_write", sector, buf)

    def _read_sector(self, sector: int) -> bytes:
        buf = self._buf()
        self._blk.call("blk_read", sector, buf)
        return self.machine.load(buf, SECTOR_SIZE)

    def _read_span(self, base: int, start: int, length: int) -> bytes:
        """Read ``length`` bytes at byte ``start`` of a sector region."""
        first, first_off = divmod(start, SECTOR_SIZE)
        last = (start + length - 1) // SECTOR_SIZE
        data = b"".join(
            self._read_sector(base + index) for index in range(first, last + 1)
        )
        return data[first_off : first_off + length]

    # --- manifest -----------------------------------------------------------

    def _commit_manifest(self) -> None:
        """Write the next-generation manifest to the alternate sector."""
        self._gen += 1
        body = struct.pack(">QH", self._gen, len(self._slots)) + b"".join(
            struct.pack(">H", slot) for slot in self._slots
        )
        payload = struct.pack(">I", zlib.crc32(body)) + body
        self._write_sector(self._gen % 2, payload)

    def _load_manifest(self) -> tuple[int, list[int]] | None:
        best: tuple[int, list[int]] | None = None
        for sector in (0, 1):
            raw = self._read_sector(sector)
            crc, gen, count = _MANIFEST.unpack_from(raw, 0)
            if gen == 0 or count > self.NUM_SLOTS:
                continue
            body_len = _MANIFEST.size - 4 + count * 2
            body = raw[4 : 4 + body_len]
            if zlib.crc32(body) != crc:
                continue
            slots = [
                struct.unpack_from(">H", raw, _MANIFEST.size + 2 * i)[0]
                for i in range(count)
            ]
            if not slots or any(s >= self.NUM_SLOTS for s in slots):
                continue
            if best is None or gen > best[0]:
                best = (gen, slots)
        return best

    # --- recovery ------------------------------------------------------------

    def _ensure_open(self) -> None:
        if not self._open:
            self._recover_state()

    def _recover_state(self) -> dict:
        """Rebuild keydir + append state from the medium (boot path)."""
        cpu = self.machine.cpu
        started = cpu.clock_ns
        self._keydir.clear()
        self._slot_records.clear()
        self._seq = 0
        self._append_offset = 0
        self._tail = bytearray()
        torn = 0
        records = 0
        manifest = self._load_manifest()
        if manifest is None:
            self._gen, self._slots = 0, [0]
        else:
            self._gen, self._slots = manifest
        injector = self.machine.injector
        for index, slot in enumerate(self._slots):
            if injector is not None:
                injector.on_kv_phase(self, "recovery")
            is_active = index == len(self._slots) - 1
            entries = None
            if not is_active:
                entries = self._read_hint(slot)
                if entries is not None:
                    self.hint_hits += 1
                    cpu.bump("kv.hint_hits")
                else:
                    self.hint_misses += 1
                    cpu.bump("kv.hint_misses")
            end_offset = self._seg_bytes
            if entries is None:
                entries, slot_torn, end_offset = self._scan_slot(slot)
                torn += slot_torn
            self._slot_records[slot] = entries
            for key, seq, offset, rec_len, flags in entries:
                records += 1
                self._apply(
                    key, _KeyDirEntry(slot, offset, rec_len, seq, flags)
                )
                self._seq = max(self._seq, seq)
            if is_active:
                self._append_offset = end_offset
                partial = end_offset % SECTOR_SIZE
                if partial:
                    self._tail = bytearray(self._read_span(
                        self._slot_base(slot), end_offset - partial, partial
                    ))
        self._durable_seq = self._seq
        self._unflushed = 0
        self._open = True
        if self._append_offset % SECTOR_SIZE:
            # The recovered log ends mid-sector, so torn/unreachable
            # garbage follows the last good record.  Appending into
            # that sector would either rewrite acknowledged records
            # (torn-write hazard) or strand new records behind the
            # garbage, so the slot is sealed as-is — without rewriting
            # any data sector — and a fresh slot becomes active.
            self._seal_recovered_slot()
        self.torn_discarded += torn
        self.recoveries += 1
        elapsed = cpu.clock_ns - started
        cpu.bump("kv.recoveries")
        cpu.bump("kv.torn_records_discarded", torn)
        cpu.metrics.histogram("kv.recovery_ns").observe(elapsed)
        return {
            "slots": list(self._slots),
            "records": records,
            "live_keys": len(self.kv_keys()),
            "torn_discarded": torn,
            "recovery_ns": elapsed,
            "generation": self._gen,
        }

    def _scan_slot(self, slot: int) -> tuple[list, int, int]:
        """Full scan of one segment; stops at clean end or first tear.

        Understands the append path's sector framing: pad records (and
        sub-header zero gaps at sector tails) are skipped so a scan can
        walk across flush-barrier padding to the true end of the log.
        """
        data = b"".join(
            self._read_sector(self._slot_base(slot) + index)
            for index in range(self.SEG_SECTORS)
        )
        entries = []
        torn = 0
        offset = 0
        while offset + _HDR.size <= len(data):
            in_sector = offset % SECTOR_SIZE
            if SECTOR_SIZE - in_sector < _HDR.size:
                # Too little room for a header: barrier zero-fill.
                offset += SECTOR_SIZE - in_sector
                continue
            header = data[offset : offset + _HDR.size]
            if header == b"\x00" * _HDR.size:
                break  # clean end of log
            crc, seq, klen, vlen, flags = _HDR.unpack(header)
            rec_len = _HDR.size + klen + vlen
            if offset + rec_len > len(data):
                torn += 1
                break
            if zlib.crc32(data[offset + 4 : offset + rec_len]) != crc:
                torn += 1
                break  # everything behind a torn record is unreachable
            if not flags & _PAD:
                key = data[offset + _HDR.size : offset + _HDR.size + klen]
                entries.append((key, seq, offset, rec_len, flags))
            offset += rec_len
        return entries, torn, offset

    def _apply(self, key: bytes, entry: _KeyDirEntry) -> None:
        current = self._keydir.get(key)
        if current is None or entry.seq > current.seq:
            self._keydir[key] = entry

    # --- hints ---------------------------------------------------------------

    def _write_hint(self, slot: int, entries: list) -> bool:
        """Persist a hint for a sealed slot; False when it won't fit."""
        body = struct.pack(">I", len(entries))
        for key, seq, offset, rec_len, flags in entries:
            body += _HINT_ENTRY.pack(seq, offset, rec_len, flags, len(key))
            body += key
        payload = struct.pack(">I", zlib.crc32(body)) + body
        if len(payload) > self.HINT_SECTORS * SECTOR_SIZE:
            return False
        base = self._hint_base(slot)
        for index in range(0, len(payload), SECTOR_SIZE):
            self._write_sector(
                base + index // SECTOR_SIZE,
                payload[index : index + SECTOR_SIZE],
            )
        return True

    def _read_hint(self, slot: int) -> list | None:
        """Parse one slot's hint region; None when absent/corrupt.

        Sectors are read lazily as parsing needs them, so a small hint
        costs far fewer device reads than a full segment scan.
        """
        base = self._hint_base(slot)
        data = self._read_sector(base)
        crc, count = struct.unpack_from(">II", data, 0)
        sector = 1
        entries = []
        offset = 8
        for _ in range(count):
            while offset + _HINT_ENTRY.size > len(data):
                if sector >= self.HINT_SECTORS:
                    return None
                data += self._read_sector(base + sector)
                sector += 1
            seq, rec_offset, rec_len, flags, klen = _HINT_ENTRY.unpack_from(
                data, offset
            )
            offset += _HINT_ENTRY.size
            while offset + klen > len(data):
                if sector >= self.HINT_SECTORS:
                    return None
                data += self._read_sector(base + sector)
                sector += 1
            key = data[offset : offset + klen]
            offset += klen
            entries.append((key, seq, rec_offset, rec_len, flags))
        if zlib.crc32(data[4:offset]) != crc:
            return None
        if entries:
            # Epoch cross-check: slots are recycled by compaction, so a
            # crash can leave a *stale but internally-valid* hint from
            # the slot's previous life next to new data.  The hint is
            # only trusted if its first entry matches the data region.
            _, seq0, offset0, _, _ = entries[0]
            raw = self._read_span(self._slot_base(slot), offset0, _HDR.size)
            _, data_seq, _, _, _ = _HDR.unpack(raw)
            if data_seq != seq0:
                return None
        return entries

    # --- append path ----------------------------------------------------------

    def _append(self, key: bytes, value: bytes, flags: int) -> int:
        self._seq += 1
        seq = self._seq
        record = _encode_record(key, value, seq, flags)
        if self._append_offset + len(record) > self._seg_bytes:
            self._seal_active()
        offset = self._append_offset
        self._write_record_bytes(record)
        self._slot_records.setdefault(self._active, []).append(
            (key, seq, offset, len(record), flags)
        )
        self._apply(key, _KeyDirEntry(self._active, offset, len(record), seq, flags))
        self.machine.cpu.bump("kv.appends")
        return seq

    def _write_record_bytes(self, record: bytes) -> None:
        """Append raw record bytes at the active slot's tail.

        ``_tail`` is a persistent bytearray extended in place — the
        append path never rebuilds the whole partial-sector buffer per
        record the way a bytes concatenation would.
        """
        base = self._slot_base(self._active)
        tail = self._tail
        tail_start = self._append_offset - len(tail)
        tail += record
        sector = base + tail_start // SECTOR_SIZE
        index = 0
        while len(tail) - index >= SECTOR_SIZE:
            self._write_sector(sector, bytes(tail[index : index + SECTOR_SIZE]))
            sector += 1
            index += SECTOR_SIZE
        if index:
            del tail[:index]
        self._append_offset += len(record)

    def _flush_tail(self) -> None:
        """Write the partial tail sector (padded) so it can be flushed."""
        if not self._tail:
            return
        base = self._slot_base(self._active)
        tail_start = self._append_offset - len(self._tail)
        self._write_sector(base + tail_start // SECTOR_SIZE, bytes(self._tail))

    def _pad_to_sector(self) -> None:
        """Advance the append point to a sector boundary.

        Called at every flush barrier so that a flushed (acknowledged)
        record never shares a sector with a later unflushed append — a
        torn write of the shared sector would otherwise destroy
        already-acknowledged data, which is exactly the failure the
        durability contract forbids.  The wasted tail is the usual
        write-amplification cost of sector-aligned commits; compaction
        reclaims it.
        """
        if not self._tail:
            return
        remainder = SECTOR_SIZE - len(self._tail)
        if remainder >= _HDR.size:
            # A CRC-framed pad record fills the sector exactly.
            pad = _encode_record(
                b"", b"\x00" * (remainder - _HDR.size), 0, _PAD
            )
            self._write_record_bytes(pad)
        else:
            # No room for a pad header: zero-fill; the scanner skips
            # sub-header gaps at sector tails.
            self._flush_tail()
            self._append_offset += remainder
            self._tail = bytearray()

    def _barrier(self) -> None:
        """Flush barrier: everything appended so far becomes durable."""
        self._pad_to_sector()
        self._blk_flush()
        self._durable_seq = self._seq
        self._unflushed = 0

    def _after_write(self) -> None:
        self._unflushed += 1
        if self._unflushed >= self._batch:
            self._barrier()

    def _free_slot(self) -> int | None:
        used = set(self._slots)
        for slot in range(self.NUM_SLOTS):
            if slot not in used:
                return slot
        return None

    def _seal_recovered_slot(self) -> None:
        """Seal the crash-damaged active slot at recovery time.

        Writes only the hint and a new manifest — never a data sector,
        so a crash during this step cannot damage recovered records.
        """
        entries = self._slot_records.get(self._active, [])
        if not self._write_hint(self._active, entries):
            self.machine.cpu.bump("kv.hint_skipped")
        slot = self._free_slot()
        if slot is None:
            self._merge()  # reclaims superseded slots; leaves clean state
            return
        self._slots.append(slot)
        self._slot_records[slot] = []
        self._append_offset = 0
        self._tail = bytearray()
        self._commit_manifest()
        self._blk_flush()

    def _seal_slot_metadata(self) -> None:
        """Persist the active slot's tail and hint (pre-seal step)."""
        self._flush_tail()
        sealed_entries = self._slot_records.get(self._active, [])
        if not self._write_hint(self._active, sealed_entries):
            self.machine.cpu.bump("kv.hint_skipped")

    def _seal_active(self) -> None:
        """Seal the full active slot and open a fresh one."""
        self._seal_slot_metadata()
        if len(self._slots) >= self.COMPACT_THRESHOLD:
            self._merge()
            if self._append_offset + MAX_VALUE < self._seg_bytes:
                return  # merge left room in its active slot
            self._seal_slot_metadata()
        slot = self._free_slot()
        if slot is None:
            raise GateError("kv: out of segment slots (compaction cannot help)")
        self._slots.append(slot)
        self._slot_records[slot] = []
        self._append_offset = 0
        self._tail = bytearray()
        self._commit_manifest()
        self._blk_flush()
        self._durable_seq = self._seq
        self._unflushed = 0

    # --- record reads ---------------------------------------------------------

    def _read_record(self, entry: _KeyDirEntry) -> tuple[bytes, bytes]:
        raw = self._read_span(
            self._slot_base(entry.slot), entry.offset, entry.rec_len
        )
        if entry.slot == self._active and self._tail:
            # The record may extend into the in-memory tail (appended
            # but not yet written to the device) — overlay it.
            tail_start = self._append_offset - len(self._tail)
            lo = max(entry.offset, tail_start)
            hi = min(entry.offset + entry.rec_len, self._append_offset)
            if lo < hi:
                patched = bytearray(raw)
                patched[lo - entry.offset : hi - entry.offset] = self._tail[
                    lo - tail_start : hi - tail_start
                ]
                raw = bytes(patched)
        crc, seq, klen, vlen, flags = _HDR.unpack_from(raw, 0)
        if zlib.crc32(raw[4:]) != crc or seq != entry.seq:
            raise RecordError(
                f"kv: record at slot {entry.slot}+{entry.offset} corrupt"
            )
        key = raw[_HDR.size : _HDR.size + klen]
        value = raw[_HDR.size + klen : _HDR.size + klen + vlen]
        return key, value

    # --- compaction -----------------------------------------------------------

    def _merge(self) -> dict:
        """Merge live records into free slots; atomic manifest commit."""
        self._flush_tail()
        self._blk_flush()
        free = [
            slot
            for slot in range(self.NUM_SLOTS)
            if slot not in set(self._slots)
        ]
        if not free:
            raise GateError("kv: no free slots to compact into")
        live = sorted(
            (
                (entry.seq, key, entry)
                for key, entry in self._keydir.items()
                if not entry.tombstone
            ),
        )
        # Pack live records into fresh segment images, in seq order.
        images: list[tuple[int, bytearray, list]] = []
        for seq, key, entry in live:
            _, value = self._read_record(entry)
            record = _encode_record(key, value, seq, entry.flags)
            if not images or len(images[-1][1]) + len(record) > self._seg_bytes:
                if len(images) >= len(free):
                    raise GateError("kv: live data exceeds free slots")
                images.append((free[len(images)], bytearray(), []))
            slot, image, entries = images[-1]
            entries.append((key, seq, len(image), len(record), entry.flags))
            image.extend(record)
        if not images:
            images.append((free[0], bytearray(), []))
        # Write data (and hints for the sealed merge slots), then flush.
        new_records: dict[int, list] = {}
        for slot, image, entries in images:
            base = self._slot_base(slot)
            for start in range(0, len(image), SECTOR_SIZE):
                self._write_sector(
                    base + start // SECTOR_SIZE,
                    bytes(image[start : start + SECTOR_SIZE]),
                )
            new_records[slot] = entries
        for slot, image, entries in images[:-1]:
            self._write_hint(slot, entries)
        self._blk_flush()
        # The merged data is durable but unreferenced until the
        # manifest commit below — the armed crash-mid-compaction site
        # fires exactly here, and recovery must fall back to the old
        # (still intact) segment chain.  Nothing in self points at the
        # new slots yet, so a crash here loses no state.
        injector = self.machine.injector
        if injector is not None:
            injector.on_kv_phase(self, "compaction")
        old_slots = list(self._slots)
        self._slots = [slot for slot, _, _ in images]
        self._slot_records = new_records
        last_slot, last_image, _ = images[-1]
        self._append_offset = len(last_image)
        partial = self._append_offset % SECTOR_SIZE
        self._tail = bytearray(last_image[-partial:]) if partial else bytearray()
        # Align the merged log to a sector boundary so future appends
        # never rewrite a sector holding (flushed) merged records.
        self._pad_to_sector()
        self._commit_manifest()
        self._blk_flush()
        self._durable_seq = self._seq
        self._unflushed = 0
        # Rebuild the keydir against the merged locations.
        self._keydir = {}
        for slot, entries in new_records.items():
            for key, seq, offset, rec_len, flags in entries:
                self._apply(key, _KeyDirEntry(slot, offset, rec_len, seq, flags))
        self.compactions += 1
        self.machine.cpu.bump("kv.compactions")
        return {
            "live_records": len(live),
            "slots_before": len(old_slots),
            "slots_after": len(images),
        }

    # --- exports --------------------------------------------------------------

    @export
    def put(self, key: bytes, value_addr: int, value_len: int) -> int:
        """Append key=value; returns the record's sequence number.

        Durable per the flush policy: with ``every-write`` the call
        returns only after a flush barrier, so a returned seq IS the
        durability acknowledgement.
        """
        if not 0 <= value_len <= MAX_VALUE:
            raise GateError(f"kv: value length {value_len} out of range")
        if not key or len(key) > 1024:
            raise GateError("kv: key must be 1..1024 bytes")
        self._ensure_open()
        value = (
            self.machine.load(value_addr, value_len) if value_len else b""
        )
        seq = self._append(bytes(key), value, 0)
        self.puts += 1
        self._after_write()
        return seq

    @export
    def get(self, key: bytes, buf_addr: int) -> int:
        """Copy the latest value into the caller's buffer; -1 on miss."""
        self._ensure_open()
        self.gets += 1
        entry = self._keydir.get(bytes(key))
        if entry is None or entry.tombstone:
            return -1
        _, value = self._read_record(entry)
        if value:
            self.machine.store(buf_addr, value)
        return len(value)

    @export
    def delete(self, key: bytes) -> int:
        """Append a tombstone; returns 1 if the key existed."""
        self._ensure_open()
        key = bytes(key)
        entry = self._keydir.get(key)
        existed = int(entry is not None and not entry.tombstone)
        self._append(key, b"", _TOMBSTONE)
        self.deletes += 1
        self._after_write()
        return existed

    @export
    def sync(self) -> int:
        """Force a flush barrier; returns the durable sequence number."""
        self._ensure_open()
        self._barrier()
        return self._durable_seq

    @export
    def compact(self) -> dict:
        """Merge live records, dropping superseded ones and tombstones."""
        self._ensure_open()
        return self._merge()

    @export
    def recover(self) -> dict:
        """(Re)build state from the medium; returns a recovery report."""
        self._open = False
        return self._recover_state()

    @export
    def set_flush_policy(self, policy: str) -> str:
        """``every-write`` or ``batch:N`` (flush every N mutations)."""
        if policy == "every-write":
            self._batch = 1
        elif policy.startswith("batch:"):
            try:
                batch = int(policy.split(":", 1)[1])
            except ValueError:
                raise GateError(f"kv: bad flush policy {policy!r}") from None
            if batch < 1:
                raise GateError(f"kv: bad flush policy {policy!r}")
            self._batch = batch
        else:
            raise GateError(f"kv: unknown flush policy {policy!r}")
        self._flush_policy = policy
        return policy

    @export
    def kv_keys(self) -> list[bytes]:
        """All live (non-tombstoned) keys, sorted."""
        self._ensure_open()
        return sorted(
            key
            for key, entry in self._keydir.items()
            if not entry.tombstone
        )

    @export
    def kv_stats(self) -> dict:
        """Operation counters + store geometry."""
        return {
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "compactions": self.compactions,
            "recoveries": self.recoveries,
            "torn_records_discarded": self.torn_discarded,
            "hint_hits": self.hint_hits,
            "hint_misses": self.hint_misses,
            "live_keys": sum(
                1 for entry in self._keydir.values() if not entry.tombstone
            ),
            "keydir_size": len(self._keydir),
            "slots_used": len(self._slots),
            "seq": self._seq,
            "durable_seq": self._durable_seq,
            "flush_policy": self._flush_policy,
            "generation": self._gen,
        }
