"""Cooperative scheduling micro-libraries.

Two interchangeable schedulers, as in the paper:

- :class:`~repro.libos.sched.coop.CoopScheduler` — the baseline "C"
  cooperative scheduler (76.6 ns context switch);
- :class:`~repro.libos.sched.verified.VerifiedScheduler` — the
  formally-specified scheduler whose pre/post-conditions are re-checked
  at runtime at the trust boundary (218.6 ns context switch, ≈3×).
"""

from repro.libos.sched.base import (
    Block,
    Thread,
    ThreadState,
    WaitQueue,
    YIELD,
    Yield,
)
from repro.libos.sched.coop import CoopScheduler
from repro.libos.sched.verified import VerifiedScheduler

__all__ = [
    "Block",
    "CoopScheduler",
    "Thread",
    "ThreadState",
    "VerifiedScheduler",
    "WaitQueue",
    "YIELD",
    "Yield",
]
