"""Threads, wait queues, and scheduling directives.

Thread bodies are Python generators.  A body — and any blocking
micro-library call it makes via ``yield from stub.call_gen(...)`` —
suspends by yielding a *directive*:

- :data:`YIELD` — voluntarily give up the CPU, stay runnable;
- :class:`Block` — sleep on a wait queue until woken.

The run loop (in the scheduler micro-library) consumes directives.  A
suspended thread's whole protection-context stack is saved in its
control block, because it may be parked deep inside a chain of gate
crossings; this mirrors the paper's observation that the scheduler
"holds the value of the PKRU for threads that are not currently
running" and therefore must be trusted under MPK.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:
    from repro.machine.cpu import Context


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class Yield:
    """Directive: give up the CPU but remain runnable."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "YIELD"


#: The single Yield directive instance thread bodies should yield.
YIELD = Yield()


@dataclasses.dataclass
class Block:
    """Directive: park the current thread on ``waitq`` until woken."""

    waitq: "WaitQueue"


@dataclasses.dataclass
class WaitFlush:
    """Directive: park until ``channel`` delivers async completions.

    Yielded (via ``Channel.wait_completions``) by a thread awaiting
    queue-channel completions.  The scheduler parks the thread on the
    channel's completion wait queue and — when the channel has a
    max-delay flush policy — arms an internal timer at the flush
    deadline, reusing the :class:`IdleUntil` timer parking: once
    nothing else is runnable, the tickless-idle branch jumps the clock
    straight to the deadline, the timer fires, and the woken thread
    flushes the ring itself.  A flush performed by any other thread
    wakes the completion queue early.
    """

    channel: object


@dataclasses.dataclass
class IdleUntil:
    """Directive: sleep until the simulated clock reaches a deadline.

    Yielded by driver threads that know exactly when their device next
    has work (e.g. the netstack rx loop while the wire is serialising a
    backlog).  The scheduler parks the thread on its private idle queue
    and arms an internal timer; once every thread is blocked this way,
    the run loop's tickless-idle branch jumps the clock straight to the
    earliest deadline instead of burning empty polling quanta — the
    event-driven clock.  A deadline already in the past degrades to a
    plain :data:`YIELD`.
    """

    deadline_ns: float


class WaitQueue:
    """A FIFO of blocked threads (semaphores, socket readiness, ...)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._threads: deque["Thread"] = deque()

    def park(self, thread: "Thread") -> None:
        """Add a thread to the queue (run-loop use)."""
        self._threads.append(thread)

    def pop(self) -> "Thread | None":
        """Remove and return the longest-waiting thread, if any."""
        return self._threads.popleft() if self._threads else None

    def __len__(self) -> int:
        return len(self._threads)

    def __contains__(self, thread: "Thread") -> bool:
        return thread in self._threads

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WaitQueue({self.name!r}, waiting={len(self)})"


class Thread:
    """A simulated thread: generator body + saved protection contexts."""

    def __init__(
        self,
        tid: int,
        name: str,
        body: Generator,
        home_context: "Context",
        stack_base: int = 0,
        stack_size: int = 0,
        home_compartment: object | None = None,
    ) -> None:
        self.tid = tid
        self.name = name
        self.body = body
        self.state = ThreadState.READY
        #: Compartment the thread's entry code lives in (used to decide
        #: whether a context switch crosses a protection boundary).
        self.home_compartment = home_compartment
        #: Saved protection-context stack (PKRU + address space chain).
        self.ctx_stack: list["Context"] = [home_context]
        #: Wait queue the thread is currently parked on, if any.
        self.waitq: WaitQueue | None = None
        #: Private queue for :class:`IdleUntil` sleeps (timer wakeups).
        self.idle_waitq = WaitQueue(f"idle:{tid}")
        #: Home stack region (one per compartment under switched gates).
        self.stack_base = stack_base
        self.stack_size = stack_size
        #: Number of times this thread was scheduled in.
        self.switches = 0
        #: Threads blocked in thread_join on this thread.
        self.exit_waitq = WaitQueue(f"exit:{tid}")
        #: Set when the thread died of a contained compartment failure
        #: (the scheduler reaped it instead of crashing the image).
        self.failure: Exception | None = None

    @property
    def done(self) -> bool:
        """True once the body generator has finished."""
        return self.state is ThreadState.DONE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Thread({self.tid}, {self.name!r}, {self.state.value})"
