"""Threads, wait queues, and scheduling directives.

Thread bodies are Python generators.  A body — and any blocking
micro-library call it makes via ``yield from stub.call_gen(...)`` —
suspends by yielding a *directive*:

- :data:`YIELD` — voluntarily give up the CPU, stay runnable;
- :class:`Block` — sleep on a wait queue until woken.

The run loop (in the scheduler micro-library) consumes directives.  A
suspended thread's whole protection-context stack is saved in its
control block, because it may be parked deep inside a chain of gate
crossings; this mirrors the paper's observation that the scheduler
"holds the value of the PKRU for threads that are not currently
running" and therefore must be trusted under MPK.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:
    from repro.machine.cpu import Context


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class Yield:
    """Directive: give up the CPU but remain runnable."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "YIELD"


#: The single Yield directive instance thread bodies should yield.
YIELD = Yield()


@dataclasses.dataclass
class Block:
    """Directive: park the current thread on ``waitq`` until woken."""

    waitq: "WaitQueue"


@dataclasses.dataclass
class WaitFlush:
    """Directive: park until ``channel`` delivers async completions.

    Yielded (via ``Channel.wait_completions``) by a thread awaiting
    queue-channel completions.  The scheduler parks the thread on the
    channel's completion wait queue and — when the channel has a
    max-delay flush policy — arms an internal timer at the flush
    deadline, reusing the :class:`IdleUntil` timer parking: once
    nothing else is runnable, the tickless-idle branch jumps the clock
    straight to the deadline, the timer fires, and the woken thread
    flushes the ring itself.  A flush performed by any other thread
    wakes the completion queue early.
    """

    channel: object


@dataclasses.dataclass
class IdleUntil:
    """Directive: sleep until the simulated clock reaches a deadline.

    Yielded by driver threads that know exactly when their device next
    has work (e.g. the netstack rx loop while the wire is serialising a
    backlog).  The scheduler parks the thread on its private idle queue
    and arms an internal timer; once every thread is blocked this way,
    the run loop's tickless-idle branch jumps the clock straight to the
    earliest deadline instead of burning empty polling quanta — the
    event-driven clock.  A deadline already in the past degrades to a
    plain :data:`YIELD`.
    """

    deadline_ns: float


class WaitQueue:
    """A FIFO of blocked threads (semaphores, socket readiness, ...).

    Intrusive doubly-linked list threaded through the parked threads'
    ``_wq_next``/``_wq_prev`` fields: park, pop, targeted removal
    (``kill_thread``) and membership tests are all O(1) with no
    per-operation allocation.  A thread can be parked on at most one
    wait queue at a time — which the simulator already guarantees,
    since a blocked thread is suspended and cannot block again.
    """

    __slots__ = ("name", "_head", "_tail", "_size")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._head: "Thread | None" = None
        self._tail: "Thread | None" = None
        self._size = 0

    def park(self, thread: "Thread") -> None:
        """Add a thread to the queue (run-loop use)."""
        if thread._wq is not None:
            raise RuntimeError(
                f"{thread!r} is already parked on {thread._wq!r}"
            )
        thread._wq = self
        thread._wq_prev = self._tail
        thread._wq_next = None
        if self._tail is None:
            self._head = thread
        else:
            self._tail._wq_next = thread
        self._tail = thread
        self._size += 1

    def pop(self) -> "Thread | None":
        """Remove and return the longest-waiting thread, if any."""
        thread = self._head
        if thread is None:
            return None
        self._unlink(thread)
        return thread

    def remove(self, thread: "Thread") -> bool:
        """Remove a specific thread (kill path); True if it was parked here."""
        if thread._wq is not self:
            return False
        self._unlink(thread)
        return True

    def _unlink(self, thread: "Thread") -> None:
        prev, nxt = thread._wq_prev, thread._wq_next
        if prev is None:
            self._head = nxt
        else:
            prev._wq_next = nxt
        if nxt is None:
            self._tail = prev
        else:
            nxt._wq_prev = prev
        thread._wq = thread._wq_next = thread._wq_prev = None
        self._size -= 1

    def __len__(self) -> int:
        return self._size

    def __contains__(self, thread: "Thread") -> bool:
        return thread._wq is self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WaitQueue({self.name!r}, waiting={len(self)})"


class Thread:
    """A simulated thread: generator body + saved protection contexts."""

    def __init__(
        self,
        tid: int,
        name: str,
        body: Generator,
        home_context: "Context",
        stack_base: int = 0,
        stack_size: int = 0,
        home_compartment: object | None = None,
    ) -> None:
        self.tid = tid
        self.name = name
        self.body = body
        self.state = ThreadState.READY
        #: Compartment the thread's entry code lives in (used to decide
        #: whether a context switch crosses a protection boundary).
        self.home_compartment = home_compartment
        #: Saved protection-context stack (PKRU + address space chain).
        self.ctx_stack: list["Context"] = [home_context]
        #: Wait queue the thread is currently parked on, if any.
        self.waitq: WaitQueue | None = None
        #: Intrusive wait-queue links (owned by :class:`WaitQueue`).
        self._wq: WaitQueue | None = None
        self._wq_next: "Thread | None" = None
        self._wq_prev: "Thread | None" = None
        #: Private queue for :class:`IdleUntil` sleeps (timer wakeups).
        self.idle_waitq = WaitQueue(f"idle:{tid}")
        #: Home stack region (one per compartment under switched gates).
        self.stack_base = stack_base
        self.stack_size = stack_size
        #: Number of times this thread was scheduled in.
        self.switches = 0
        #: Threads blocked in thread_join on this thread.
        self.exit_waitq = WaitQueue(f"exit:{tid}")
        #: Set when the thread died of a contained compartment failure
        #: (the scheduler reaped it instead of crashing the image).
        self.failure: Exception | None = None

    @property
    def done(self) -> bool:
        """True once the body generator has finished."""
        return self.state is ThreadState.DONE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Thread({self.tid}, {self.name!r}, {self.state.value})"
