"""Runtime contract checking for verified components.

The paper's scheduler is written in Dafny: its safety is established by
pre/post-conditions proven statically.  When the generated code is
embedded alongside untrusted C code, those conditions can no longer be
assumed at the boundary, so FlexOS's glue code re-checks them at
runtime ("we add these checks manually in our scheduler code").  This
module is that glue: each :meth:`ContractKit.check` evaluates one
clause, charges ``contract_check_ns``, and raises
:class:`~repro.machine.faults.ContractViolation` on failure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.machine.faults import ContractViolation

if TYPE_CHECKING:
    from repro.machine.machine import Machine


class ContractKit:
    """Evaluates contract clauses for one verified component."""

    def __init__(self, machine: "Machine", component: str) -> None:
        self.machine = machine
        self.component = component
        self.checks_evaluated = 0
        self.violations = 0

    def check(self, condition: bool, description: str) -> None:
        """Evaluate one pre/post-condition clause."""
        self.machine.cpu.charge(self.machine.cost.contract_check_ns)
        self.machine.cpu.bump("contract_checks")
        self.checks_evaluated += 1
        if not condition:
            self.violations += 1
            raise ContractViolation(self.component, description)

    def check_all(self, clauses: list[tuple[bool, str]]) -> None:
        """Evaluate a list of clauses in order."""
        for condition, description in clauses:
            self.check(condition, description)

    def holds(self, condition: Callable[[], bool], description: str) -> None:
        """Evaluate a lazily-computed clause."""
        self.check(bool(condition()), description)
