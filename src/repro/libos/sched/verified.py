"""The verified cooperative scheduler (the paper's Dafny scheduler).

Functionally identical to :class:`CoopScheduler`, but every boundary
operation re-validates the statically-proven pre/post-conditions via
:class:`ContractKit`.  A context switch evaluates eight invariant
clauses, which with the calibrated per-clause cost reproduces the
paper's measurement: 218.6 ns per switch vs 76.6 ns for the C
scheduler (≈3×), while remaining <6% end-to-end for Redis (Fig. 4).
"""

from __future__ import annotations

from repro.libos.sched.base import Thread, ThreadState, WaitQueue
from repro.libos.sched.contracts import ContractKit
from repro.libos.sched.coop import CoopScheduler
from repro.libos.library import export


class VerifiedScheduler(CoopScheduler):
    """Contract-checked scheduler; drop-in replacement for ``sched``."""

    NAME = "sched"
    SPEC = CoopScheduler.SPEC  # same API surface, same trust requirements
    TRUE_BEHAVIOR = CoopScheduler.TRUE_BEHAVIOR
    VERIFIED = True

    def __init__(self) -> None:
        super().__init__()
        self._contracts: ContractKit | None = None

    def on_install(self) -> None:
        self._contracts = ContractKit(self.machine, "verified-scheduler")

    @property
    def contracts(self) -> ContractKit:
        """The contract kit (available after install)."""
        assert self._contracts is not None
        return self._contracts

    # --- contract-checked operations -----------------------------------------

    def _check_add(self, thread: Thread) -> None:
        # Pre-conditions of thread_add, straight from the paper's
        # worked example: "one of thread_add's preconditions is to not
        # add a thread that has already been added".
        kit = self.contracts
        kit.check(
            thread.tid not in self.threads,
            f"thread_add pre: thread {thread.tid} not already added",
        )
        kit.check(
            thread not in self.run_queue,
            "thread_add pre: thread not already runnable",
        )
        kit.check(
            thread.state in (ThreadState.READY, ThreadState.BLOCKED),
            "thread_add pre: thread in an addable state",
        )

    @export
    def wake_one(self, waitq: WaitQueue) -> bool:
        kit = self.contracts
        kit.check(isinstance(waitq, WaitQueue), "wake_one pre: valid wait queue")
        woken = super().wake_one(waitq)
        if woken:
            thread = self.run_queue[-1]
            kit.check(
                thread.state is ThreadState.READY,
                "wake_one post: woken thread is READY",
            )
            kit.check(thread.waitq is None, "wake_one post: thread unparked")
        return woken

    @export
    def block_notify(self, waitq: WaitQueue) -> None:
        self.contracts.check(
            isinstance(waitq, WaitQueue), "block pre: valid wait queue"
        )
        super().block_notify(waitq)

    # --- context switch ---------------------------------------------------------

    def _switch_cost(self, thread: Thread) -> None:
        # The verified switch re-establishes the scheduler invariants
        # before transferring control: eight clauses at
        # ``contract_check_ns`` each on top of the base switch, giving
        # the paper's 218.6 ns.
        kit = self.contracts
        kit.check(thread.state is ThreadState.READY, "switch pre: thread READY")
        kit.check(thread.waitq is None, "switch pre: thread not parked")
        kit.check(thread.tid in self.threads, "switch pre: thread registered")
        kit.check(
            thread not in self.run_queue,
            "switch pre: thread dequeued exactly once",
        )
        kit.check(thread.body is not None, "switch pre: live body")
        kit.check(
            all(t.state is ThreadState.READY for t in self.run_queue),
            "switch inv: run queue holds only READY threads",
        )
        kit.check(
            len(set(t.tid for t in self.run_queue)) == len(self.run_queue),
            "switch inv: run queue has no duplicates",
        )
        kit.check(
            all(t.tid in self.threads for t in self.run_queue),
            "switch inv: run queue threads are registered",
        )
        super()._switch_cost(thread)
