"""The baseline cooperative scheduler (the paper's "C scheduler").

Owns the run queue and the run loop.  Context switches charge the cost
model's ``ctx_switch_ns`` (76.6 ns, the paper's measured figure for the
C scheduler).  The scheduler's memory is as critical as the PKRU
register itself — its spec therefore *requires* co-resident libraries
to never write its memory, which is what forces untrusted C components
out of its compartment (or into SH-hardened variants).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator

from repro.libos.library import MicroLibrary, export, export_blocking
from repro.libos.sched.base import (
    Block,
    IdleUntil,
    Thread,
    ThreadState,
    WaitFlush,
    WaitQueue,
    Yield,
)
from repro.libos.sched.timerwheel import TimerWheel
from repro.machine.faults import (
    CONTAINABLE_FAULTS,
    CompartmentFailure,
    GateError,
)
from repro.obs.tracer import HOST_TRACK, SCHED_TRACK


class SchedulerIdle(Exception):
    """Internal: raised when the run queue empties during run()."""


class CoopScheduler(MicroLibrary):
    """Cooperative round-robin scheduler micro-library."""

    NAME = "sched"
    SPEC = """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] alloc::malloc, alloc::free
    [API] thread_add(thread); thread_rm(tid); yield_(); wake_one(waitq); \
wake_all(waitq); block_notify(waitq); timer_register(deadline, waitq); \
thread_join(tid)
    [Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add), \
*(Call, thread_rm), *(Call, yield_), *(Call, wake_one), *(Call, wake_all), \
*(Call, block_notify), *(Call, timer_register), *(Call, thread_join)
    """
    TRUE_BEHAVIOR = {"writes": ["Own", "Shared"], "reads": ["Own", "Shared"]}

    #: Default per-thread stack size (4 pages, Unikraft's default order).
    STACK_SIZE = 4 * 4096

    def __init__(self) -> None:
        super().__init__()
        self.run_queue: deque[Thread] = deque()
        self.threads: dict[int, Thread] = {}
        self._next_tid = 1
        self.total_switches = 0
        #: Pending timers, kept in a hierarchical timer wheel: O(1)
        #: arming, bounded sweeps on advance, exact heap fire order.
        self._timers = TimerWheel()
        self._timer_seq = 0
        #: Directive dispatch table: exact class -> handler, resolved
        #: in one dict lookup on the hot switch path (an isinstance
        #: walk remains as the fallback for directive subclasses).
        self._dispatch: dict[type, Callable] = {
            Yield: self._on_yield,
            Block: self._on_block,
            IdleUntil: self._on_idle_until,
            WaitFlush: self._on_wait_flush,
        }
        #: Threads reaped after a contained compartment failure:
        #: (thread name, CompartmentFailure) in death order.
        self.thread_failures: list[tuple[str, CompartmentFailure]] = []
        #: One-way cost of crossing into/out of the scheduler's
        #: protection domain on a context switch.  Set by the builder
        #: from the isolation backend: under MPK, every switch enters
        #: the scheduler compartment (it holds the PKRU of suspended
        #: threads) and exits into the next thread's domain — two
        #: crossings whenever the thread lives in another compartment.
        self.domain_crossing_ns: float = 0.0

    # --- thread management (host-side + exported) -------------------------------

    def spawn(
        self,
        name: str,
        body_factory: Callable[[], Generator],
        home_compartment,
    ) -> Thread:
        """Create a thread whose body runs in ``home_compartment``.

        Host-side API used by the image/boot code; the exported
        ``thread_add`` registers an already-built thread (the paper's
        scheduler API surface).
        """
        stack_base = home_compartment.alloc_stack(self.STACK_SIZE)
        context = home_compartment.make_context(label=f"thread:{name}")
        thread = Thread(
            tid=self._next_tid,
            name=name,
            body=body_factory(),
            home_context=context,
            stack_base=stack_base,
            stack_size=self.STACK_SIZE,
            home_compartment=home_compartment,
        )
        self._next_tid += 1
        self.thread_add(thread)
        return thread

    @export
    def thread_add(self, thread: Thread) -> int:
        """Register a thread and make it runnable; returns its tid."""
        self._check_add(thread)
        self.threads[thread.tid] = thread
        thread.state = ThreadState.READY
        self.run_queue.append(thread)
        return thread.tid

    def _check_add(self, thread: Thread) -> None:
        """Validation hook; the verified scheduler adds contracts here."""
        if thread.tid in self.threads:
            raise GateError(f"thread {thread.tid} already added")

    @export
    def thread_rm(self, tid: int) -> None:
        """Remove a thread from scheduling."""
        thread = self.threads.pop(tid, None)
        if thread is None:
            raise GateError(f"unknown thread {tid}")
        if thread in self.run_queue:
            self.run_queue.remove(thread)
        thread.state = ThreadState.DONE

    # --- wait-queue operations ---------------------------------------------------

    @export
    def wake_one(self, waitq: WaitQueue) -> bool:
        """Move the longest-waiting thread to the run queue."""
        self.charge(self.machine.cost.waitq_op_ns)
        thread = waitq.pop()
        if thread is None:
            return False
        thread.state = ThreadState.READY
        thread.waitq = None
        self.run_queue.append(thread)
        return True

    @export
    def wake_all(self, waitq: WaitQueue) -> int:
        """Wake every thread parked on ``waitq``; returns the count."""
        woken = 0
        while self.wake_one(waitq):
            woken += 1
        return woken

    @export
    def block_notify(self, waitq: WaitQueue) -> None:
        """Account for the current thread preparing to block.

        The actual parking happens when the run loop consumes the
        :class:`Block` directive; this call is the crossing into the
        scheduler that a real implementation performs (and where the
        verified scheduler re-checks its preconditions).
        """
        self.charge(self.machine.cost.waitq_op_ns)

    @export
    def yield_(self) -> None:
        """Accounting hook for an explicit yield crossing (no-op here)."""

    @export_blocking
    def thread_join(self, tid: int):
        """Block until the named thread finishes.

        Returns immediately when the thread is unknown (already
        finished and reaped) or already done.
        """
        thread = self.threads.get(tid)
        if thread is None:
            return True
        while not thread.done:
            self.charge(self.machine.cost.waitq_op_ns)
            yield Block(thread.exit_waitq)
        return True

    # --- timers -----------------------------------------------------------------

    @export
    def timer_register(self, deadline_ns: float, waitq: WaitQueue) -> None:
        """Arm a one-shot timer waking ``waitq`` at ``deadline_ns``."""
        self.charge(self.machine.cost.waitq_op_ns)
        self._timer_seq += 1
        self._timers.schedule(deadline_ns, self._timer_seq, waitq)

    def _fire_due_timers(self) -> int:
        """Wake every live timer whose deadline has passed.

        Timers whose wait queue emptied in the meantime (the sleeper
        was killed, or woken through another path) are dropped by the
        wheel without a spurious wake — previously they "fired" for
        nobody and still charged a wait-queue operation.
        """
        due = self._timers.collect(self.machine.cpu.clock_ns)
        for entry in due:
            self.wake_all(entry.waitq)
        return len(due)

    @property
    def pending_timers(self) -> int:
        """Number of armed timers somebody is still waiting on."""
        return self._timers.live_count()

    @property
    def timer_cascades(self) -> int:
        """Outer-level wheel re-files so far (host-side telemetry)."""
        return self._timers.cascades

    # --- run loop -------------------------------------------------------------

    def _switch_cost(self, thread: Thread) -> None:
        """Charge one context switch (overridden by the verified sched)."""
        self.charge(self.machine.cost.ctx_switch_ns)
        if (
            self.domain_crossing_ns
            and thread.home_compartment is not None
            and thread.home_compartment is not self.compartment
        ):
            self.charge(2 * self.domain_crossing_ns)
            self.machine.cpu.bump("sched_domain_crossings", 2)

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_switches: int | None = None,
    ) -> int:
        """Run threads until idle / ``until()`` / ``max_switches``.

        Must be called with the scheduler compartment's context active
        (the image's ``run`` does this).  Returns the number of context
        switches performed.  Threads left parked on wait queues when
        the loop stops remain BLOCKED — the caller decides whether that
        is a deadlock or a daemon thread.
        """
        cpu = self.machine.cpu
        tracer = self.machine.obs.tracer
        quantum_hist = cpu.metrics.histogram("sched.quantum_ns")
        switches = 0
        while self.run_queue or self._timers:
            if until is not None and until():
                break
            if max_switches is not None and switches >= max_switches:
                break
            self._fire_due_timers()
            if not self.run_queue:
                # Idle: nothing runnable until the next timer — advance
                # the clock to its deadline (the tickless-idle path).
                # Only *live* deadlines count: a timer whose waiters
                # are all gone must not pull the clock forward.
                deadline = self._timers.next_live_deadline()
                if deadline is None:
                    break
                if deadline > cpu.clock_ns:
                    cpu.charge(deadline - cpu.clock_ns)
                    if cpu.clock_ns < deadline:
                        raise GateError(
                            "cannot idle-advance the clock while CPU "
                            "charging is disabled"
                        )
                continue
            thread = self.run_queue.popleft()
            injector = self.machine.injector
            if injector is not None and injector.should_kill(thread):
                # Resilience harness: the thread dies before running
                # (site "sched-kill" — a scheduler-visible thread
                # death, e.g. a stack blowout detected on switch-in).
                self.kill_thread(thread)
                continue
            self._switch_cost(thread)
            switches += 1
            self.total_switches += 1
            thread.switches += 1
            thread.state = ThreadState.RUNNING
            cpu.bump("ctx_switches")
            quantum_start = cpu.clock_ns
            # Route trace events to the running thread's own track so
            # spans it leaves open across a suspension nest correctly.
            tracer.set_track(thread.tid, thread.name)
            saved = cpu.swap_context_stack(thread.ctx_stack)
            try:
                directive = next(thread.body)
            except StopIteration:
                directive = None
                thread.state = ThreadState.DONE
                self.threads.pop(thread.tid, None)
                self.wake_all(thread.exit_waitq)
            except CompartmentFailure as failure:
                # Already contained at a gate boundary: the thread dies,
                # the image keeps running (microkernel-style reaping).
                directive = None
                self._reap_failed(thread, failure)
            except CONTAINABLE_FAULTS as exc:
                # A fault escaped the thread body without crossing a
                # containment boundary — it crashed inside the thread's
                # own home compartment.  The scheduler is the outermost
                # boundary: apply the home compartment's policy.
                comp = thread.home_compartment
                if comp is None or comp.failure_policy == "propagate":
                    raise
                directive = None
                failure = CompartmentFailure(comp.name, cause=exc)
                comp.mark_failed(cpu.clock_ns, failure)
                cpu.bump("resilience.contained")
                self._reap_failed(thread, failure)
            finally:
                thread.ctx_stack = cpu.swap_context_stack(saved)
                tracer.set_track(HOST_TRACK)
            quantum_hist.observe(cpu.clock_ns - quantum_start)
            if tracer.enabled:
                tracer.complete(
                    thread.name,
                    "sched",
                    quantum_start,
                    track=SCHED_TRACK,
                    tid=thread.tid,
                    state=thread.state.name,
                )
            if thread.state is ThreadState.DONE:
                continue
            handler = self._dispatch.get(directive.__class__)
            if handler is None:
                for cls, fallback in self._dispatch.items():
                    if isinstance(directive, cls):
                        handler = fallback
                        break
                if handler is None:
                    raise GateError(
                        f"thread {thread.name} yielded invalid directive "
                        f"{directive!r}"
                    )
            handler(thread, directive, cpu)
        return switches

    # --- directive handlers ------------------------------------------------------

    def _on_yield(self, thread: Thread, directive, cpu) -> None:
        thread.state = ThreadState.READY
        self.run_queue.append(thread)

    def _on_block(self, thread: Thread, directive, cpu) -> None:
        thread.state = ThreadState.BLOCKED
        thread.waitq = directive.waitq
        directive.waitq.park(thread)

    def _on_idle_until(self, thread: Thread, directive, cpu) -> None:
        deadline = directive.deadline_ns
        if deadline <= cpu.clock_ns:
            # Already due: nothing to sleep for.
            thread.state = ThreadState.READY
            self.run_queue.append(thread)
        else:
            # Park on the thread's private idle queue and arm an
            # internal one-shot timer; the tickless-idle branch of the
            # run loop jumps the clock to this deadline once nothing
            # else is runnable (the event-driven clock).
            self.charge(self.machine.cost.waitq_op_ns)
            thread.state = ThreadState.BLOCKED
            thread.waitq = thread.idle_waitq
            thread.idle_waitq.park(thread)
            self._timer_seq += 1
            self._timers.schedule(deadline, self._timer_seq, thread.idle_waitq)

    def _on_wait_flush(self, thread: Thread, directive, cpu) -> None:
        channel = directive.channel
        # First wait binds the scheduler so flushes performed by
        # other threads can wake the completion queue early.
        channel.bind_scheduler(self)
        if channel.completions_ready or not channel.pending:
            # Nothing to sleep for (completions ready, or the
            # wait raced with a flush): stay runnable.
            thread.state = ThreadState.READY
            self.run_queue.append(thread)
        else:
            self.charge(self.machine.cost.waitq_op_ns)
            waitq = channel.completion_waitq
            thread.state = ThreadState.BLOCKED
            thread.waitq = waitq
            waitq.park(thread)
            deadline = channel.flush_deadline_ns()
            if deadline is not None:
                # IdleUntil-style timer parking at the flush
                # deadline; the woken thread flushes the ring.
                self._timer_seq += 1
                self._timers.schedule(
                    max(deadline, cpu.clock_ns), self._timer_seq, waitq
                )

    def _reap_failed(self, thread: Thread, failure: CompartmentFailure) -> None:
        """Retire a thread killed by a contained compartment failure."""
        thread.state = ThreadState.DONE
        thread.failure = failure
        self.threads.pop(thread.tid, None)
        self.thread_failures.append((thread.name, failure))
        self.machine.cpu.bump("resilience.thread_failures")
        tracer = self.machine.obs.tracer
        if tracer.enabled:
            tracer.instant(
                f"thread-failed:{thread.name}",
                "resilience",
                track=SCHED_TRACK,
                compartment=failure.compartment,
            )
        self.wake_all(thread.exit_waitq)

    # --- teardown ---------------------------------------------------------------

    def kill_thread(self, thread: Thread) -> None:
        """Destroy a thread, unwinding its body inside its own contexts.

        Closing the generator raises ``GeneratorExit`` at its suspension
        point; running that unwind with the thread's saved
        protection-context stack installed keeps teardown
        domain-correct (no gate pops against a foreign stack).
        """
        if thread.done:
            return
        cpu = self.machine.cpu
        saved = cpu.swap_context_stack(thread.ctx_stack)
        try:
            thread.body.close()
        finally:
            thread.ctx_stack = cpu.swap_context_stack(saved)
        if thread.waitq is not None:
            # O(1) intrusive unlink (no scan of the queue).
            thread.waitq.remove(thread)
        if thread in self.run_queue:
            self.run_queue.remove(thread)
        thread.state = ThreadState.DONE
        self.threads.pop(thread.tid, None)
        self.wake_all(thread.exit_waitq)

    def kill_all(self) -> int:
        """Destroy every remaining thread; returns how many."""
        killed = 0
        for thread in list(self.threads.values()):
            self.kill_thread(thread)
            killed += 1
        return killed

    # --- introspection ----------------------------------------------------------

    @property
    def runnable(self) -> int:
        """Number of threads currently in the run queue."""
        return len(self.run_queue)

    @property
    def blocked_threads(self) -> list[Thread]:
        """Threads currently parked on wait queues."""
        return [
            thread
            for thread in self.threads.values()
            if thread.state is ThreadState.BLOCKED
        ]
