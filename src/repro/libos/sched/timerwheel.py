"""Hierarchical timer wheel for the cooperative scheduler.

Replaces the heapq timer list: :meth:`TimerWheel.schedule` is O(1)
(bucket append, no sift), and :meth:`TimerWheel.collect` advances the
wheel by sweeping at most 64 slots per level regardless of how far the
tickless-idle clock jumped.  Four levels of 64 slots at 64 ns
resolution cover ~1.07 simulated seconds before the top level wraps;
entries further out sit in the top level and cascade down as the wheel
turns (``cascades`` counts those re-files — host-side telemetry only).

Semantics preserved from the heap implementation:

- due timers fire in exact ``(deadline_ns, seq)`` order (the collected
  batch is sorted before it is returned);
- deadlines are floats — an entry can share the current tick yet still
  lie microscopically in the future, so :meth:`collect` filters by the
  actual deadline, not the tick.

One deliberate behaviour change (the dead-timer bug fix): an entry
whose wait queue has emptied — its sleeper was killed or woken through
another path — is dropped when its slot is swept instead of "firing"
for nobody, and :meth:`live_count` / :meth:`next_live_deadline` prune
such entries so ``pending_timers`` never over-reports and tickless
idle never advances the clock to a deadline nobody is waiting for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.libos.sched.base import WaitQueue

#: log2 of the slots per level.
LEVEL_BITS = 6
#: Slots per level.
SLOTS = 1 << LEVEL_BITS
#: Number of levels (spans ~64**4 ticks before the top level wraps).
LEVELS = 4
#: Default tick width in simulated nanoseconds.
RESOLUTION_NS = 64.0


class TimerEntry:
    """One armed one-shot timer."""

    __slots__ = ("deadline_ns", "seq", "waitq", "tick")

    def __init__(self, deadline_ns: float, seq: int, waitq: "WaitQueue") -> None:
        self.deadline_ns = deadline_ns
        self.seq = seq
        self.waitq = waitq
        self.tick = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimerEntry({self.deadline_ns}, seq={self.seq}, {self.waitq!r})"


class TimerWheel:
    """Hashed hierarchical timer wheel over float nanosecond deadlines."""

    def __init__(self, resolution_ns: float = RESOLUTION_NS) -> None:
        self._resolution = resolution_ns
        self._slots: list[list[list[TimerEntry]]] = [
            [[] for _ in range(SLOTS)] for _ in range(LEVELS)
        ]
        #: Entries whose tick has been reached but whose (fractional)
        #: deadline may still lie within the current tick.
        self._due: list[TimerEntry] = []
        self._cur_tick = 0
        self._count = 0
        #: Entries re-filed from a higher level as the wheel turned.
        self.cascades = 0

    def __len__(self) -> int:
        """Raw armed-entry count (dead entries included until pruned)."""
        return self._count

    # --- placement ----------------------------------------------------------

    def _place(self, entry: TimerEntry) -> None:
        delta = entry.tick - self._cur_tick
        if delta <= 0:
            self._due.append(entry)
            return
        span = SLOTS
        for level in range(LEVELS):
            if delta < span or level == LEVELS - 1:
                slot = (entry.tick >> (LEVEL_BITS * level)) & (SLOTS - 1)
                self._slots[level][slot].append(entry)
                return
            span <<= LEVEL_BITS

    def schedule(self, deadline_ns: float, seq: int, waitq: "WaitQueue") -> None:
        """Arm a one-shot timer waking ``waitq`` at ``deadline_ns``."""
        entry = TimerEntry(deadline_ns, seq, waitq)
        entry.tick = int(deadline_ns / self._resolution)
        self._count += 1
        self._place(entry)

    # --- advancing ----------------------------------------------------------

    def _advance(self, target_tick: int) -> None:
        cur = self._cur_tick
        self._cur_tick = target_tick
        for level in range(LEVELS):
            shift = LEVEL_BITS * level
            cur_l = cur >> shift
            target_l = target_tick >> shift
            steps = target_l - cur_l
            if steps <= 0:
                continue
            slots = self._slots[level]
            if steps >= SLOTS:
                indices = range(SLOTS)
            else:
                mask = SLOTS - 1
                indices = [(cur_l + 1 + k) & mask for k in range(steps)]
            for index in indices:
                bucket = slots[index]
                if not bucket:
                    continue
                slots[index] = []
                for entry in bucket:
                    if entry.tick <= target_tick:
                        self._due.append(entry)
                    else:
                        # Still in the future: re-file relative to the
                        # new position (a cascade when it moves down).
                        if level:
                            self.cascades += 1
                        self._place(entry)

    def collect(self, now_ns: float) -> list[TimerEntry]:
        """Advance to ``now_ns``; return due *live* entries in fire order.

        Dead entries (empty wait queue) reaching their deadline are
        dropped here — the fix for ``pending_timers`` over-reporting —
        and never returned.  The returned batch is sorted by
        ``(deadline_ns, seq)``, the heap implementation's exact order.
        """
        target = int(now_ns / self._resolution)
        if target > self._cur_tick:
            self._advance(target)
        pending = self._due
        if not pending:
            return []
        due: list[TimerEntry] = []
        keep: list[TimerEntry] = []
        for entry in pending:
            if entry.deadline_ns <= now_ns:
                if len(entry.waitq):
                    due.append(entry)
                self._count -= 1
            else:
                keep.append(entry)
        self._due = keep
        if len(due) > 1:
            due.sort(key=lambda entry: (entry.deadline_ns, entry.seq))
        return due

    # --- introspection ------------------------------------------------------

    def _prune_and_scan(self) -> float | None:
        """Drop dead entries everywhere; return the earliest live deadline."""
        best: float | None = None
        keep: list[TimerEntry] = []
        for entry in self._due:
            if not len(entry.waitq):
                self._count -= 1
                continue
            keep.append(entry)
            if best is None or entry.deadline_ns < best:
                best = entry.deadline_ns
        self._due = keep
        for level in range(LEVELS):
            slots = self._slots[level]
            for index, bucket in enumerate(slots):
                if not bucket:
                    continue
                live = [entry for entry in bucket if len(entry.waitq)]
                if len(live) != len(bucket):
                    self._count -= len(bucket) - len(live)
                    slots[index] = live
                for entry in live:
                    if best is None or entry.deadline_ns < best:
                        best = entry.deadline_ns
        return best

    def next_live_deadline(self) -> float | None:
        """Earliest deadline somebody is actually waiting on, or None."""
        return self._prune_and_scan()

    def live_count(self) -> int:
        """Number of armed timers with at least one waiter."""
        self._prune_and_scan()
        return self._count
