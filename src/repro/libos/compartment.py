"""Runtime compartments: the protection domains of a built image.

A compartment groups micro-libraries that the compatibility analysis
allowed to share a trust domain.  At build time each compartment gets:

- under the **MPK backend**: a protection key in the single shared
  address space, and a PKRU value granting write access to its own key
  plus the shared-data key (and, with shared-stack gates, the stack
  key);
- under the **VM backend**: its own :class:`~repro.machine.ept.VMDomain`
  whose private pages no other VM maps;
- a :class:`~repro.machine.cpu.DomainProfile` carrying the software
  hardening instrumentation applied to it;
- optionally its own heap allocator (the paper's per-compartment
  allocator requirement for SH).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.machine.address_space import AddressSpace, Permissions
from repro.machine.cpu import Context, DomainProfile
from repro.machine.ept import VMDomain
from repro.machine.mpk import PKEY_DEFAULT, pkru_all_access

if TYPE_CHECKING:
    from repro.machine.machine import Machine


class Compartment:
    """One protection domain of a built FlexOS image."""

    def __init__(self, index: int, name: str, machine: "Machine") -> None:
        self.index = index
        self.name = name
        self.machine = machine
        #: Address space this compartment executes in.
        self.address_space: AddressSpace | None = None
        #: MPK protection key (MPK backend) — None under other backends.
        self.pkey: int | None = None
        #: PKRU register value loaded when entering this compartment.
        self.pkru_value: int = pkru_all_access()
        #: VM domain (EPT backend) — None under other backends.
        self.vm_domain: VMDomain | None = None
        #: Hardening/instrumentation profile of code in this domain.
        self.profile = DomainProfile(name=name)
        #: Libraries placed in this compartment.
        self.libraries: list[Any] = []
        #: Capability set (CHERI-style backend) — ``None`` otherwise.
        self.capabilities: Any = None
        #: Heap allocator serving this compartment's malloc calls.
        self.allocator: Any = None
        #: Allocator serving shared-data allocations (global).
        self.shared_allocator: Any = None
        #: (start, end) virtual ranges this compartment owns — written
        #: by alloc_region/alloc_stack; consulted by write-set checks
        #: (DFI) that must work even without protection keys.
        self.owned_ranges: list[tuple[int, int]] = []
        #: Protection key used for thread stacks homed here.  Equal to
        #: ``pkey`` under switched-stack gates (stacks are isolated,
        #: HODOR-style); equal to a global stack key under shared-stack
        #: gates (stacks live in a domain shared by all compartments,
        #: ERIM-style).  ``None`` means "use the compartment key".
        self.stack_pkey: int | None = None

    # --- memory ---------------------------------------------------------

    def alloc_region(
        self, size: int, perms: Permissions = Permissions.RW
    ) -> int:
        """Map a private region tagged with this compartment's key."""
        if self.address_space is None:
            raise RuntimeError(f"compartment {self.name} has no address space")
        pkey = self.pkey if self.pkey is not None else PKEY_DEFAULT
        addr = self.address_space.map_new(size, perms=perms, pkey=pkey)
        self.owned_ranges.append((addr, addr + size))
        return addr

    def owns_address(self, vaddr: int) -> bool:
        """True if ``vaddr`` lies in a region this compartment owns."""
        return any(start <= vaddr < end for start, end in self.owned_ranges)

    def alloc_stack(self, size: int) -> int:
        """Map a thread-stack region with the backend's stack policy."""
        if self.address_space is None:
            raise RuntimeError(f"compartment {self.name} has no address space")
        pkey = self.stack_pkey
        if pkey is None:
            pkey = self.pkey if self.pkey is not None else PKEY_DEFAULT
        addr = self.address_space.map_new(
            size, perms=Permissions.RW, pkey=pkey
        )
        self.owned_ranges.append((addr, addr + size))
        return addr

    # --- execution -------------------------------------------------------

    def make_context(self, label: str = "") -> Context:
        """Build an execution context entering this compartment."""
        if self.address_space is None:
            raise RuntimeError(f"compartment {self.name} has no address space")
        return Context(
            address_space=self.address_space,
            pkru=self.pkru_value,
            profile=self.profile,
            label=label or self.name,
            capabilities=self.capabilities,
        )

    def library_names(self) -> list[str]:
        """Names of the libraries placed here."""
        return [lib.NAME for lib in self.libraries]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        backend = (
            f"pkey={self.pkey}"
            if self.pkey is not None
            else (f"vm={self.vm_domain.name}" if self.vm_domain else "flat")
        )
        return f"Compartment({self.index}, {self.name!r}, {backend})"
