"""Runtime compartments: the protection domains of a built image.

A compartment groups micro-libraries that the compatibility analysis
allowed to share a trust domain.  At build time each compartment gets:

- under the **MPK backend**: a protection key in the single shared
  address space, and a PKRU value granting write access to its own key
  plus the shared-data key (and, with shared-stack gates, the stack
  key);
- under the **VM backend**: its own :class:`~repro.machine.ept.VMDomain`
  whose private pages no other VM maps;
- a :class:`~repro.machine.cpu.DomainProfile` carrying the software
  hardening instrumentation applied to it;
- optionally its own heap allocator (the paper's per-compartment
  allocator requirement for SH).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.machine.address_space import AddressSpace, Permissions
from repro.machine.cpu import Context, DomainProfile
from repro.machine.ept import VMDomain
from repro.machine.faults import CompartmentFailure
from repro.machine.mpk import PKEY_DEFAULT, pkru_all_access

if TYPE_CHECKING:
    from repro.machine.machine import Machine

#: What happens when a fault escapes this compartment (see
#: :mod:`repro.machine.faults` for the translation rules):
#: ``propagate`` — the raw fault propagates, whole-image crash
#: semantics (the default, and the paper's baseline behaviour);
#: ``isolate`` — the fault is translated to
#: :class:`~repro.machine.faults.CompartmentFailure`, the compartment
#: is marked failed, and later calls into it fail fast;
#: ``restart-with-backoff`` — like ``isolate``, but the compartment
#: becomes callable again once an exponentially growing backoff
#: deadline passes (gates restart it on the next crossing).
FAILURE_POLICIES = ("propagate", "isolate", "restart-with-backoff")

#: Base backoff before the first restart attempt (doubles per failure).
RESTART_BACKOFF_NS = 100_000.0


class Compartment:
    """One protection domain of a built FlexOS image."""

    def __init__(self, index: int, name: str, machine: "Machine") -> None:
        self.index = index
        self.name = name
        self.machine = machine
        #: Address space this compartment executes in.
        self.address_space: AddressSpace | None = None
        #: MPK protection key (MPK backend) — None under other backends.
        self.pkey: int | None = None
        #: PKRU register value loaded when entering this compartment.
        self.pkru_value: int = pkru_all_access()
        #: VM domain (EPT backend) — None under other backends.
        self.vm_domain: VMDomain | None = None
        #: Hardening/instrumentation profile of code in this domain.
        self.profile = DomainProfile(name=name)
        #: Libraries placed in this compartment.
        self.libraries: list[Any] = []
        #: Capability set (CHERI-style backend) — ``None`` otherwise.
        self.capabilities: Any = None
        #: Heap allocator serving this compartment's malloc calls.
        self.allocator: Any = None
        #: Allocator serving shared-data allocations (global).
        self.shared_allocator: Any = None
        #: (start, end) virtual ranges this compartment owns — written
        #: by alloc_region/alloc_stack; consulted by write-set checks
        #: (DFI) that must work even without protection keys.
        self.owned_ranges: list[tuple[int, int]] = []
        #: Protection key used for thread stacks homed here.  Equal to
        #: ``pkey`` under switched-stack gates (stacks are isolated,
        #: HODOR-style); equal to a global stack key under shared-stack
        #: gates (stacks live in a domain shared by all compartments,
        #: ERIM-style).  ``None`` means "use the compartment key".
        self.stack_pkey: int | None = None
        #: Containment policy applied when a fault escapes this
        #: compartment through a boundary (see FAILURE_POLICIES).
        self.failure_policy: str = "propagate"
        #: True while the compartment is considered crashed; boundary
        #: gates refuse (or restart) crossings into a failed compartment.
        self.failed: bool = False
        #: Lifetime failure / restart counts (resilience accounting).
        self.failures: int = 0
        self.restarts: int = 0
        #: Simulated deadline after which a restart may be attempted.
        self.restart_at_ns: float = 0.0
        #: Base backoff; doubles with every recorded failure.
        self.restart_backoff_ns: float = RESTART_BACKOFF_NS
        #: The most recent failure stopped at this compartment's boundary.
        self.last_failure: CompartmentFailure | None = None

    # --- failure containment ---------------------------------------------

    def mark_failed(self, now_ns: float, failure: CompartmentFailure) -> None:
        """Record a contained crash; arms the restart backoff deadline."""
        self.failures += 1
        self.failed = True
        self.last_failure = failure
        backoff = self.restart_backoff_ns * (2 ** (self.failures - 1))
        self.restart_at_ns = now_ns + backoff

    def restart_due(self, now_ns: float) -> bool:
        """True when the restart policy allows reviving the compartment."""
        return (
            self.failed
            and self.failure_policy == "restart-with-backoff"
            and now_ns >= self.restart_at_ns
        )

    def restart(self) -> None:
        """Bring a failed compartment back into service."""
        self.failed = False
        self.restarts += 1

    # --- memory ---------------------------------------------------------

    def alloc_region(
        self, size: int, perms: Permissions = Permissions.RW
    ) -> int:
        """Map a private region tagged with this compartment's key."""
        if self.address_space is None:
            raise RuntimeError(f"compartment {self.name} has no address space")
        pkey = self.pkey if self.pkey is not None else PKEY_DEFAULT
        addr = self.address_space.map_new(size, perms=perms, pkey=pkey)
        self.owned_ranges.append((addr, addr + size))
        return addr

    def owns_address(self, vaddr: int) -> bool:
        """True if ``vaddr`` lies in a region this compartment owns."""
        return any(start <= vaddr < end for start, end in self.owned_ranges)

    def alloc_stack(self, size: int) -> int:
        """Map a thread-stack region with the backend's stack policy."""
        if self.address_space is None:
            raise RuntimeError(f"compartment {self.name} has no address space")
        pkey = self.stack_pkey
        if pkey is None:
            pkey = self.pkey if self.pkey is not None else PKEY_DEFAULT
        addr = self.address_space.map_new(
            size, perms=Permissions.RW, pkey=pkey
        )
        self.owned_ranges.append((addr, addr + size))
        return addr

    # --- execution -------------------------------------------------------

    def make_context(self, label: str = "") -> Context:
        """Build an execution context entering this compartment."""
        if self.address_space is None:
            raise RuntimeError(f"compartment {self.name} has no address space")
        return Context(
            address_space=self.address_space,
            pkru=self.pkru_value,
            profile=self.profile,
            label=label or self.name,
            capabilities=self.capabilities,
        )

    def library_names(self) -> list[str]:
        """Names of the libraries placed here."""
        return [lib.NAME for lib in self.libraries]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        backend = (
            f"pkey={self.pkey}"
            if self.pkey is not None
            else (f"vm={self.vm_domain.name}" if self.vm_domain else "flat")
        )
        return f"Compartment({self.index}, {self.name!r}, {backend})"
