"""Micro-libraries, exports, and the link-time call plumbing.

A micro-library's public functions are declared with :func:`export`
(ordinary calls) or :func:`export_blocking` (generator-based calls that
may suspend the calling thread).  In the porting process the paper
describes, cross-micro-library function calls are replaced by gate
placeholders (``uk_gate_r(rc, listen, sockfd, 5)``); here the analogue
is resolving a :class:`Stub` through the :class:`Linker` and invoking
``stub.call("listen", sockfd, 5)``.  At build time the linker is wired
with either direct-call channels (same compartment) or isolation gates
(foreign compartment) — the caller's code is identical either way,
which is the whole point of FlexOS.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterator

from repro.machine.faults import GateError

if TYPE_CHECKING:
    from repro.gates.base import Channel
    from repro.libos.compartment import Compartment
    from repro.machine.machine import Machine

#: Attribute set on exported callables; value is "plain" or "blocking".
_EXPORT_ATTR = "_flexos_export"


def export(fn: Callable) -> Callable:
    """Mark a method as a plain (non-suspending) micro-library export."""
    setattr(fn, _EXPORT_ATTR, "plain")
    return fn


def export_blocking(fn: Callable) -> Callable:
    """Mark a generator method as a blocking micro-library export.

    Blocking exports must be invoked with ``yield from
    stub.call_gen(...)`` so scheduling directives propagate to the
    run loop.
    """
    setattr(fn, _EXPORT_ATTR, "blocking")
    return fn


class MicroLibrary:
    """Base class for every micro-library (and application).

    Subclasses set :attr:`NAME`, declare exports with the decorators
    above, and may override :meth:`on_install` (allocate static memory,
    resolve stubs) and :meth:`on_boot` (post-link initialisation,
    spawn threads).

    The optional :attr:`SPEC` string is the library's FlexOS metadata
    in the paper's DSL (section 2); :attr:`TRUE_BEHAVIOR` describes the
    behaviour a static analysis would find, which the SH
    transformations use to narrow a conservative SPEC.
    """

    NAME: str = ""
    #: FlexOS metadata in the paper's DSL; parsed by repro.core.
    SPEC: str = ""
    #: Ground-truth behaviour facts for SH transformations (see
    #: repro.core.hardening); mapping with optional keys "writes",
    #: "reads", "calls".
    TRUE_BEHAVIOR: dict[str, Any] = {}
    #: API metadata for trust-boundary wrappers (paper §5): export name
    #: → list of ``(predicate, description)`` pairs, where ``predicate``
    #: takes the call's args tuple and returns True when the
    #: precondition holds.  Checked only on cross-compartment calls.
    API_CONTRACTS: dict[str, list] = {}
    #: Export name → indices of pointer-valued arguments.  At a trust
    #: boundary, pointer arguments must reference shareable memory
    #: (the confused-deputy defence of §5).
    POINTER_PARAMS: dict[str, tuple] = {}
    #: Export name → ((pointer_index, size_index_or_negative_fixed),
    #: ...) capability-delegation descriptors for the CHERI backend
    #: (see repro.gates.cheri).
    CAP_GRANTS: dict[str, tuple] = {}

    def __init__(self) -> None:
        if not self.NAME:
            raise ValueError(f"{type(self).__name__} must define NAME")
        self.machine: "Machine | None" = None
        self.compartment: "Compartment | None" = None
        self.linker: "Linker | None" = None
        self.exports: dict[str, Callable] = {}
        self.blocking_exports: set[str] = set()
        for attr in dir(type(self)):
            raw = getattr(type(self), attr)
            kind = getattr(raw, _EXPORT_ATTR, None)
            if kind is None:
                continue
            bound = getattr(self, attr)
            self.exports[attr] = bound
            if kind == "blocking":
                self.blocking_exports.add(attr)

    # --- lifecycle ---------------------------------------------------------

    def install(
        self, machine: "Machine", compartment: "Compartment", linker: "Linker"
    ) -> None:
        """Attach the library to its compartment; called by the builder."""
        self.machine = machine
        self.compartment = compartment
        self.linker = linker
        compartment.libraries.append(self)
        self.on_install()

    def on_install(self) -> None:
        """Hook: allocate static memory, resolve nothing yet."""

    def on_boot(self) -> None:
        """Hook: runs once after all libraries are installed and linked."""

    # --- conveniences ---------------------------------------------------------

    def stub(self, callee: str) -> "Stub":
        """Resolve a stub for cross-library calls to ``callee``."""
        if self.linker is None:
            raise GateError(f"{self.NAME}: not linked yet")
        return self.linker.resolve(self, callee)

    def alloc_static(self, size: int) -> int:
        """Allocate a static (own-compartment) memory region."""
        if self.compartment is None:
            raise GateError(f"{self.NAME}: not installed yet")
        return self.compartment.alloc_region(size)

    def charge(self, ns: float) -> None:
        """Charge flat simulated time to the CPU."""
        assert self.machine is not None
        self.machine.cpu.charge(ns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = self.compartment.name if self.compartment else "uninstalled"
        return f"<{type(self).__name__} {self.NAME!r} in {where}>"


class Stub:
    """Caller-side handle for one (caller, callee) link.

    ``call`` runs a plain export synchronously; ``call_gen`` returns a
    generator for a blocking export and must be driven with ``yield
    from``.  The async surface (``submit``/``poll``/``flush``) passes
    through to the channel — on sync channels ``submit`` executes
    immediately, on a queue channel it batches, so caller code is
    identical either way.  The channel behind the stub decides what a
    call costs and which protection-domain switch it performs.
    """

    def __init__(self, channel: "Channel") -> None:
        self._channel = channel

    def call(self, fn: str, *args: Any) -> Any:
        """Invoke a plain export through the channel."""
        return self._channel.invoke(fn, args)

    def call_gen(self, fn: str, *args: Any) -> Generator:
        """Invoke a blocking export; drive with ``yield from``."""
        return self._channel.invoke_gen(fn, args)

    def submit(self, fn: str, *args: Any) -> int:
        """Enqueue a plain export; returns its completion ticket."""
        return self._channel.submit(fn, *args)

    def poll(self, max_items: int | None = None) -> list:
        """Drain ready completions from the channel."""
        return self._channel.poll(max_items)

    def flush(self) -> int:
        """Force pending submissions through (ring the doorbell)."""
        return self._channel.flush()

    def drain(self) -> list:
        """Flush + drain all completions, raising the first deferred error."""
        return self._channel.drain()

    def wait_completions(self, min_count: int = 1) -> Generator:
        """Blocking completion wait; drive with ``yield from``."""
        return self._channel.wait_completions(min_count)

    @property
    def pending(self) -> int:
        """Submissions not yet executed (0 on sync channels)."""
        return self._channel.pending

    @property
    def supports_async(self) -> bool:
        """True when the channel actually defers and batches."""
        return self._channel.supports_async

    @property
    def channel(self) -> "Channel":
        """The underlying channel (introspection/tests)."""
        return self._channel


class Linker:
    """Holds the channel for every (caller library, callee name) edge.

    The builder populates it after deciding the compartment layout; a
    library's :meth:`MicroLibrary.stub` lookups go through here.  Keys
    are per *caller library* so that replicated services (e.g. one
    allocator per compartment, as the VM backend requires) resolve to
    the caller-local replica.
    """

    def __init__(self) -> None:
        self._channels: dict[tuple[str, str], "Channel"] = {}

    def connect(
        self, caller: str, callee: str, channel: "Channel"
    ) -> None:
        """Register the channel used when ``caller`` calls ``callee``."""
        self._channels[(caller, callee)] = channel

    def resolve(self, caller: MicroLibrary, callee: str) -> Stub:
        """Return the stub ``caller`` must use to reach ``callee``."""
        channel = self._channels.get((caller.NAME, callee))
        if channel is None:
            raise GateError(f"no link from {caller.NAME!r} to {callee!r}")
        return Stub(channel)

    def has_link(self, caller: MicroLibrary, callee: str) -> bool:
        """True when ``caller`` was linked against ``callee``.

        Lets a library degrade gracefully when an optional service is
        absent from the image (e.g. redis runs volatile without ``kv``).
        """
        return (caller.NAME, callee) in self._channels

    def edges(self) -> Iterator[tuple[str, str]]:
        """Iterate over all (caller, callee) edges."""
        return iter(self._channels.keys())
