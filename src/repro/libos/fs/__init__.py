"""Filesystem micro-library (vfscore/ramfs analogue)."""

from repro.libos.fs.ramfs import FileSystemLibrary

__all__ = ["FileSystemLibrary"]
