"""The ``vfs`` micro-library: an in-memory filesystem (ramfs).

Unikraft ships a vfscore + ramfs pair as micro-libraries; FlexOS can
place them in their own compartment like any other component.  File
contents live in *simulated memory* — block-chained allocations from
the compartment's heap — so filesystem data is subject to the same
protection keys, hardening, and gate semantics as everything else.
Callers hand in *shared* staging buffers (the usual shared-data
annotation), and the filesystem performs the block-cache copies with
its own code: under MPK no other compartment — not even LibC — may
write the filesystem's private blocks, so delegating the copy would be
the confused-deputy pattern §5 of the paper warns about.

Like most big C filesystem code bases, its declared FlexOS metadata is
conservative (``Read(*); Write(*); Call *``): unhardened, it will not
be co-located with components that protect their memory.
"""

from __future__ import annotations

import dataclasses

from repro.libos.library import MicroLibrary, export
from repro.machine.faults import GateError

#: Flags accepted by :meth:`FileSystemLibrary.open`.
O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


@dataclasses.dataclass
class _Inode:
    """One file: block chain + size."""

    path: str
    blocks: list[int] = dataclasses.field(default_factory=list)
    size: int = 0
    nlink: int = 1


@dataclasses.dataclass
class _OpenFile:
    """One open descriptor."""

    fd: int
    inode: _Inode
    offset: int = 0
    writable: bool = False
    readable: bool = True


class FileSystemLibrary(MicroLibrary):
    """ramfs with a POSIX-flavoured export surface."""

    NAME = "vfs"
    SPEC = """
    [Memory access] Read(*); Write(*)
    [Call] *
    [API] open(path, flags); close(fd); read(fd, buf, n); \
write(fd, buf, n); lseek(fd, off, whence); unlink(path); fstat(fd); \
stat(path); listdir(); fs_stats()
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": [
            "alloc::malloc",
            "alloc::free",
        ],
    }
    API_CONTRACTS = {
        "read": [(lambda args: args[2] >= 0, "length must be non-negative")],
        "write": [(lambda args: args[2] >= 0, "length must be non-negative")],
        "open": [
            (
                lambda args: isinstance(args[0], str) and bool(args[0]),
                "path must be a non-empty string",
            ),
        ],
    }
    POINTER_PARAMS = {"read": (1,), "write": (1,)}
    CAP_GRANTS = {"read": ((1, 2),), "write": ((1, 2),)}

    #: Bytes per data block.
    BLOCK_SIZE = 4096

    def __init__(self) -> None:
        super().__init__()
        self._inodes: dict[str, _Inode] = {}
        self._open: dict[int, _OpenFile] = {}
        self._next_fd = 3
        self._alloc = None
        self.reads = 0
        self.writes = 0

    def on_boot(self) -> None:
        self._alloc = self.stub("alloc")

    # --- helpers ------------------------------------------------------------

    def _file(self, fd: int) -> _OpenFile:
        open_file = self._open.get(fd)
        if open_file is None:
            raise GateError(f"bad file descriptor {fd}")
        return open_file

    def _grow_to(self, inode: _Inode, size: int) -> None:
        while len(inode.blocks) * self.BLOCK_SIZE < size:
            block = self._alloc.call("malloc", self.BLOCK_SIZE)
            # Fresh blocks must read as zeros: a sparse write past EOF
            # (lseek + write) leaves a hole, and heap blocks recycle
            # whatever bytes a previous owner freed there.
            self.machine.fill(block, 0, self.BLOCK_SIZE)
            inode.blocks.append(block)

    def _release(self, inode: _Inode) -> None:
        for block in inode.blocks:
            self._alloc.call("free", block)
        inode.blocks.clear()
        inode.size = 0

    def _orphaned(self, inode: _Inode) -> bool:
        """Unlinked with no remaining open descriptor (POSIX orphan)."""
        return inode.nlink == 0 and not any(
            open_file.inode is inode for open_file in self._open.values()
        )

    # --- exports --------------------------------------------------------------

    @export
    def open(self, path: str, flags: int = O_RDONLY) -> int:
        """Open (optionally create/truncate) a file; returns an fd."""
        self.charge(self.machine.cost.fs_op_ns)
        inode = self._inodes.get(path)
        if inode is None:
            if not flags & O_CREAT:
                raise GateError(f"no such file: {path}")
            inode = _Inode(path=path)
            self._inodes[path] = inode
        accmode = flags & 0o3
        writable = accmode in (O_WRONLY, O_RDWR)
        if flags & O_TRUNC and writable:
            self._release(inode)
        fd = self._next_fd
        self._next_fd += 1
        self._open[fd] = _OpenFile(
            fd=fd,
            inode=inode,
            offset=inode.size if flags & O_APPEND else 0,
            writable=writable,
            readable=accmode in (O_RDONLY, O_RDWR),
        )
        return fd

    @export
    def close(self, fd: int) -> None:
        """Release a descriptor; frees an unlinked file on last close."""
        open_file = self._file(fd)
        del self._open[fd]
        if self._orphaned(open_file.inode):
            self._release(open_file.inode)

    @export
    def write(self, fd: int, buf_addr: int, length: int) -> int:
        """Write ``length`` bytes from the caller's buffer at the offset."""
        open_file = self._file(fd)
        if not open_file.writable:
            raise GateError(f"fd {fd} not open for writing")
        if length < 0:
            raise ValueError("write length must be non-negative")
        self.charge(self.machine.cost.fs_op_ns)
        inode = open_file.inode
        end = open_file.offset + length
        self._grow_to(inode, end)
        copied = 0
        while copied < length:
            offset = open_file.offset + copied
            block_index, block_offset = divmod(offset, self.BLOCK_SIZE)
            chunk = min(length - copied, self.BLOCK_SIZE - block_offset)
            self.machine.copy(
                inode.blocks[block_index] + block_offset,
                buf_addr + copied,
                chunk,
            )
            copied += chunk
        open_file.offset = end
        inode.size = max(inode.size, end)
        self.writes += 1
        return length

    @export
    def read(self, fd: int, buf_addr: int, length: int) -> int:
        """Read up to ``length`` bytes into the caller's buffer."""
        open_file = self._file(fd)
        if not open_file.readable:
            raise GateError(f"fd {fd} not open for reading")
        if length < 0:
            raise ValueError("read length must be non-negative")
        self.charge(self.machine.cost.fs_op_ns)
        inode = open_file.inode
        available = max(0, inode.size - open_file.offset)
        to_read = min(length, available)
        copied = 0
        while copied < to_read:
            offset = open_file.offset + copied
            block_index, block_offset = divmod(offset, self.BLOCK_SIZE)
            chunk = min(to_read - copied, self.BLOCK_SIZE - block_offset)
            self.machine.copy(
                buf_addr + copied,
                inode.blocks[block_index] + block_offset,
                chunk,
            )
            copied += chunk
        open_file.offset += to_read
        self.reads += 1
        return to_read

    @export
    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        """Reposition the descriptor; returns the new offset."""
        open_file = self._file(fd)
        if whence == SEEK_SET:
            new_offset = offset
        elif whence == SEEK_CUR:
            new_offset = open_file.offset + offset
        elif whence == SEEK_END:
            new_offset = open_file.inode.size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if new_offset < 0:
            raise ValueError("negative file offset")
        open_file.offset = new_offset
        return new_offset

    @export
    def unlink(self, path: str) -> None:
        """Delete a file; blocks are freed once no fd references it.

        POSIX semantics: open descriptors keep reading and writing the
        unlinked file (freeing the blocks under them would be a
        use-after-free on the simulated heap); the last ``close`` frees
        the storage.
        """
        self.charge(self.machine.cost.fs_op_ns)
        inode = self._inodes.pop(path, None)
        if inode is None:
            raise GateError(f"no such file: {path}")
        inode.nlink = 0
        if self._orphaned(inode):
            self._release(inode)

    @export
    def fstat(self, fd: int) -> dict:
        """Size/offset metadata for an open descriptor."""
        open_file = self._file(fd)
        return {
            "path": open_file.inode.path,
            "size": open_file.inode.size,
            "offset": open_file.offset,
            "blocks": len(open_file.inode.blocks),
        }

    @export
    def stat(self, path: str) -> dict:
        """Size metadata for a path."""
        self.charge(self.machine.cost.fs_op_ns)
        inode = self._inodes.get(path)
        if inode is None:
            raise GateError(f"no such file: {path}")
        return {
            "path": path,
            "size": inode.size,
            "blocks": len(inode.blocks),
        }

    @export
    def listdir(self) -> list[str]:
        """All file paths (flat namespace, like Unikraft's ramfs root)."""
        return sorted(self._inodes)

    @export
    def fs_stats(self) -> dict:
        """Operation counters."""
        return {
            "files": len(self._inodes),
            "open_fds": len(self._open),
            "reads": self.reads,
            "writes": self.writes,
        }
