"""Profile-guided re-compartmentalization: capture → recommend → diff.

The CLI closing the loop between ``repro.obs`` and the explorer
(the full-paper's "automated exploration" direction)::

    # 1. Run a workload under profiling; persist the measured artifact.
    python -m repro.tools.profile capture --workload redis \\
        --libs libc,netstack,redis --backend mpk-shared -o profile.json

    # 2. Feed the measured crossing frequencies back into the explorer:
    #    propose the coloring/backend assignment the workload wants.
    python -m repro.tools.profile recommend --profile profile.json \\
        --require no-wild-writes -o recommended_config.json

    # 3. Compare against the static-estimate pick, with measured costs.
    python -m repro.tools.profile diff --profile profile.json \\
        --require no-wild-writes

``capture`` brackets the run with
:func:`repro.obs.capture_profile` (host-side only: the profiled run is
bit-identical to an unprofiled one).  ``recommend`` ranks candidates
with :func:`repro.core.explorer.profiled_cost_fn` — measured crossing
counts weighted by the target backend's per-crossing cost — and emits a
ready-to-build :class:`~repro.core.config.BuildConfig` JSON.  ``diff``
picks with both estimators, then *re-measures both picks* in the
simulator (same workload, same parameters) and reports the measured
delta; with ``--check`` it exits non-zero unless the profile-guided
pick is at least as fast as the static one.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.core.builder import build_image, library_defs
from repro.core.config import BuildConfig
from repro.core.explorer import (
    Explorer,
    auto_tune_queue_edges,
    crossing_cost_fn,
    profiled_cost_fn,
    requirement_satisfied,
)
from repro.core.hardening import Deployment
from repro.obs.profile import ProfileError, WorkloadProfile, capture_profile


def _parse_params(entries: list[str]) -> dict:
    """``key=value`` overrides with int coercion (workload params)."""
    params: dict = {}
    for entry in entries:
        key, sep, value = entry.partition("=")
        if not sep:
            raise ValueError(f"--param needs key=value, got {entry!r}")
        try:
            params[key] = int(value)
        except ValueError:
            params[key] = value
    return params


def _config_for_capture(args) -> BuildConfig:
    if args.config:
        data = json.loads(pathlib.Path(args.config).read_text())
        return BuildConfig.from_dict(data)
    libraries = [name for name in args.libs.split(",") if name]
    return BuildConfig(libraries=libraries, backend=args.backend)


def cmd_capture(args) -> int:
    """Build, run under profiling, persist the profile artifact."""
    from repro.apps import run_named_workload, workload_params

    config = _config_for_capture(args)
    params = workload_params(args.workload, _parse_params(args.param))
    image = build_image(config)
    with capture_profile(
        image, args.workload, params, seed=args.seed
    ) as capture:
        summary, _ = run_named_workload(image, args.workload, params)
    profile = capture.profile
    path = profile.save(args.output)
    print(summary)
    print(profile.describe())
    print(f"profile written to {path}")
    return 0


def _explorer_for(profile: WorkloadProfile, args) -> tuple[Explorer, list]:
    config = BuildConfig(libraries=profile.libraries)
    defs = library_defs(config)
    explorer = Explorer(
        defs,
        alternatives=args.alternatives,
        isolate=tuple(args.isolate),
    )
    return explorer, defs


def _deployment_payload(
    deployment: Deployment,
    backend: str,
    profile: WorkloadProfile,
    queue_edges: dict[str, str] | None = None,
) -> dict:
    """A pick as JSON: describable and directly buildable."""
    groups = deployment.compartments
    config = BuildConfig(
        libraries=profile.libraries,
        compartments=groups,
        backend=backend if len(groups) > 1 else "none",
        hardening={
            lib: techniques
            for lib, techniques in deployment.choices.items()
            if techniques
        },
        queue_edges=dict(queue_edges or {}),
    )
    return {
        "describe": deployment.describe(),
        "num_compartments": deployment.num_compartments,
        "config": config.to_dict(),
    }


def _tuned_queue_edges(
    profile: WorkloadProfile, backend: str, deployment: Deployment
) -> dict[str, str]:
    """Auto-tuned queue policies for the pick's actual boundary edges.

    :func:`auto_tune_queue_edges` works from the measured profile alone;
    here its proposals are filtered down to edges that cross a
    compartment boundary *in the recommended coloring* (same-compartment
    edges cannot be queued, and a single-compartment pick gets none).
    """
    coloring = deployment.coloring
    tuned = auto_tune_queue_edges(profile, backend=backend)
    kept = {}
    for edge, policy in tuned.items():
        caller, _, callee = edge.partition("->")
        caller_color = coloring.get(caller)
        callee_color = coloring.get(callee)
        if (
            caller_color is not None
            and callee_color is not None
            and caller_color != callee_color
        ):
            kept[edge] = policy
    return kept


def cmd_recommend(args) -> int:
    """Profile → the deployment the measured workload actually wants."""
    profile = WorkloadProfile.load(args.profile)
    backend = args.backend or profile.backend
    explorer, defs = _explorer_for(profile, args)
    perf_fn = profiled_cost_fn(profile, backend=backend)
    pick = explorer.best_performance_meeting(
        list(args.require), perf_fn=perf_fn
    )
    if pick is None:
        print("no deployment satisfies the requirements", file=sys.stderr)
        return 1
    queue_edges = _tuned_queue_edges(profile, backend, pick)
    payload = {
        "profile": str(args.profile),
        "profile_hash": profile.profile_hash(),
        "estimator": perf_fn.estimator,
        "workload": profile.workload,
        "backend": backend,
        "requirements": list(args.require),
        "estimated_cost_ns": perf_fn(pick),
        "queue_edges": queue_edges,
        "recommendation": _deployment_payload(
            pick, backend, profile, queue_edges=queue_edges
        ),
    }
    if args.check:
        # Artifact round-trip: load(save(x)) is identity.
        reloaded = WorkloadProfile.from_dict(
            json.loads(json.dumps(profile.to_dict()))
        )
        if reloaded != profile or (
            reloaded.profile_hash() != profile.profile_hash()
        ):
            print("profile artifact does not round-trip", file=sys.stderr)
            return 1
        for requirement in args.require:
            if not requirement_satisfied(pick, requirement, defs):
                print(
                    f"recommended deployment violates {requirement!r}",
                    file=sys.stderr,
                )
                return 1
        payload["checked"] = True
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n")
        print(f"recommendation written to {args.output}")
    print(text)
    return 0


def _measure_pick(
    deployment: Deployment, profile: WorkloadProfile, backend: str, args
) -> dict:
    """Re-run the profiled workload on a pick; measured numbers.

    The re-run happens **under repro.obs** (same capture machinery as
    the original profile), so the measured cost is the same quantity
    the profile recorded — simulated elapsed ns for the workload's
    measured phase — not an estimate.
    """
    from repro.apps import run_named_workload

    groups = deployment.compartments
    config = BuildConfig(
        libraries=profile.libraries,
        compartments=groups,
        backend=backend if len(groups) > 1 else "none",
        hardening={
            lib: techniques
            for lib, techniques in deployment.choices.items()
            if techniques
        },
    )
    image = build_image(config)
    with capture_profile(
        image, profile.workload, profile.params, seed=profile.seed
    ) as capture:
        _, numbers = run_named_workload(
            image, profile.workload, profile.params
        )
    measured = capture.profile
    return {
        "elapsed_ns": measured.elapsed_ns,
        "gate_crossings": measured.counters.get("gate_crossings", 0.0),
        "workload_numbers": numbers,
        "profile_hash": measured.profile_hash(),
    }


def cmd_diff(args) -> int:
    """Static-estimate pick vs profile-guided pick, measured."""
    profile = WorkloadProfile.load(args.profile)
    backend = args.backend or profile.backend
    explorer, defs = _explorer_for(profile, args)
    requirements = list(args.require)

    static_fn = crossing_cost_fn(defs, backend=backend)
    profiled_fn = profiled_cost_fn(profile, backend=backend)
    static_pick = explorer.best_performance_meeting(
        requirements, perf_fn=static_fn
    )
    profiled_pick = explorer.best_performance_meeting(
        requirements, perf_fn=profiled_fn
    )
    if static_pick is None or profiled_pick is None:
        print("no deployment satisfies the requirements", file=sys.stderr)
        return 1

    static_measured = _measure_pick(static_pick, profile, backend, args)
    if profiled_pick.key() == static_pick.key():
        profiled_measured = dict(static_measured)
    else:
        profiled_measured = _measure_pick(
            profiled_pick, profile, backend, args
        )
    delta_ns = (
        static_measured["elapsed_ns"] - profiled_measured["elapsed_ns"]
    )
    payload = {
        "profile": str(args.profile),
        "profile_hash": profile.profile_hash(),
        "workload": profile.workload,
        "backend": backend,
        "requirements": requirements,
        "same_pick": profiled_pick.key() == static_pick.key(),
        "static": {
            **_deployment_payload(static_pick, backend, profile),
            "estimated_cost": static_fn(static_pick),
            "measured": static_measured,
        },
        "profiled": {
            **_deployment_payload(profiled_pick, backend, profile),
            "estimated_cost_ns": profiled_fn(profiled_pick),
            "measured": profiled_measured,
        },
        "measured_delta_ns": delta_ns,
        "measured_speedup": (
            static_measured["elapsed_ns"] / profiled_measured["elapsed_ns"]
            if profiled_measured["elapsed_ns"]
            else 1.0
        ),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n")
    print(text)
    if args.check and delta_ns < 0:
        print(
            "profile-guided pick measured slower than the static pick "
            f"({-delta_ns:.0f} ns)",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_explore_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="REQ",
        help="safety requirement (repeatable): no-wild-writes, "
        "isolated:<lib>, write-protected:<lib>, cfi:<lib>",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="target isolation backend (default: the profile's)",
    )
    parser.add_argument(
        "--isolate",
        action="append",
        default=[],
        metavar="LIB",
        help="force LIB into its own compartment (repeatable)",
    )
    parser.add_argument(
        "--alternatives",
        action="store_true",
        help="enumerate both ASAN- and DFI-flavoured hardening variants",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Workload profiling pipeline: capture a measured "
        "profile, feed it back into the explorer, compare against the "
        "static estimate"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    capture = sub.add_parser(
        "capture", help="run a workload under profiling, emit profile.json"
    )
    capture.add_argument("--workload", default="redis")
    capture.add_argument("--config", help="JSON BuildConfig file")
    capture.add_argument(
        "--libs", default="libc,netstack,redis", help="comma-separated"
    )
    capture.add_argument("--backend", default="mpk-shared")
    capture.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="workload parameter override (repeatable)",
    )
    capture.add_argument("--seed", type=int, default=None)
    capture.add_argument("-o", "--output", required=True, metavar="FILE")
    capture.set_defaults(func=cmd_capture)

    recommend = sub.add_parser(
        "recommend",
        help="profile → proposed coloring/backend assignment (BuildConfig)",
    )
    recommend.add_argument("--profile", required=True, metavar="FILE")
    _add_explore_args(recommend)
    recommend.add_argument("-o", "--output", metavar="FILE")
    recommend.add_argument(
        "--check",
        action="store_true",
        help="verify the artifact round-trips and the pick satisfies "
        "every requirement (non-zero exit otherwise)",
    )
    recommend.set_defaults(func=cmd_recommend)

    diff = sub.add_parser(
        "diff",
        help="static-estimate pick vs profile-guided pick, with the "
        "measured-cost delta",
    )
    diff.add_argument("--profile", required=True, metavar="FILE")
    _add_explore_args(diff)
    diff.add_argument("-o", "--output", metavar="FILE")
    diff.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if the profile-guided pick measures slower "
        "than the static pick",
    )
    diff.set_defaults(func=cmd_diff)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ProfileError as exc:
        print(f"profile error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
