"""Run a configuration and report where its time and memory go.

Usage::

    python -m repro.tools.report --config build.json --workload redis
    python -m repro.tools.report --libs libc,netstack,iperf \\
        --backend mpk-shared --workload iperf

Prints the compartment layout, the per-edge gate-crossing counts (the
Fig. 5 diagnosis view), the per-compartment simulated-time attribution,
and the memory report.
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.core.builder import build_image
from repro.core.config import BuildConfig


def run_workload(image, workload: str) -> str:
    """Drive the named workload; returns a one-line summary."""
    if workload == "iperf":
        from repro.apps import run_iperf

        result = run_iperf(image, 1024, 1 << 18)
        return f"iperf: {result.throughput_mbps:.0f} Mb/s simulated"
    if workload == "redis":
        from repro.apps import (
            make_get_payloads,
            make_set_payloads,
            run_redis_phase,
            start_redis,
        )

        start_redis(image)
        run_redis_phase(
            image,
            make_set_payloads(64, 50, keyspace=32),
            window=8,
            expect_prefix=b"+OK",
        )
        result = run_redis_phase(
            image, make_get_payloads(300, 32), window=8, expect_prefix=b"$"
        )
        return (
            f"redis: {result.mreq_s:.3f} Mreq/s, p50 "
            f"{result.latency_percentile(0.5):.0f} ns, p99 "
            f"{result.latency_percentile(0.99):.0f} ns"
        )
    raise ValueError(f"unknown workload {workload!r}")


def report(config: BuildConfig, workload: str) -> str:
    """Build, run, and render the full report."""
    image = build_image(config)
    image.machine.cpu.attribute_time = True
    summary = run_workload(image, workload)
    lines = ["== Layout ==", image.layout(), "", f"== Workload ==", summary]

    lines += ["", "== Gate crossings (busiest first) =="]
    for caller, callee, kind, crossings in image.crossing_report()[:12]:
        lines.append(f"  {caller:10s} -> {callee:10s} [{kind:12s}] {crossings:8d}")

    lines += ["", "== Simulated time by compartment =="]
    total = sum(image.machine.cpu.domain_time_ns.values()) or 1.0
    for name, ns in sorted(
        image.machine.cpu.domain_time_ns.items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"  {name:28s} {ns / 1e6:9.3f} ms  ({ns / total:5.1%})")

    lines += ["", "== Memory =="]
    for row in image.memory_report():
        lines.append(
            f"  {row['compartment']:28s} owned {row['owned_bytes']:>10d} B, "
            f"heap in use {row['heap_in_use']:>8d} B "
            f"({row['heap_live_blocks']} blocks)"
        )
    return "\n".join(lines)


def config_from_args(args) -> BuildConfig:
    if args.config:
        data = json.loads(pathlib.Path(args.config).read_text())
        return BuildConfig.from_dict(data)
    libraries = [name for name in args.libs.split(",") if name]
    hardening = {}
    for entry in args.harden:
        lib, _, techs = entry.partition("=")
        hardening[lib] = tuple(techs.split("+")) if techs else ()
    return BuildConfig(
        libraries=libraries, backend=args.backend, hardening=hardening
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Build a FlexOS config, run a workload, report costs"
    )
    parser.add_argument("--config", help="JSON BuildConfig file")
    parser.add_argument(
        "--libs", default="libc,netstack,iperf", help="comma-separated libraries"
    )
    parser.add_argument("--backend", default="mpk-shared")
    parser.add_argument(
        "--harden", action="append", default=[], metavar="LIB=tech1+tech2"
    )
    parser.add_argument(
        "--workload", default="iperf", choices=("iperf", "redis")
    )
    args = parser.parse_args(argv)
    print(report(config_from_args(args), args.workload))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
