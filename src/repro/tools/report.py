"""Run a configuration and report where its time and memory go.

Usage::

    python -m repro.tools.report --config build.json --workload redis
    python -m repro.tools.report --libs libc,netstack,iperf \\
        --backend mpk-shared --workload iperf
    python -m repro.tools.report --workload redis --trace trace.json --json

Prints the compartment layout, the per-edge gate-crossing counts (the
Fig. 5 diagnosis view), the per-compartment simulated-time attribution,
and the memory report.  ``--trace FILE`` records a Chrome trace-event
JSON of the run (open it in ``chrome://tracing`` or Perfetto);
``--json`` emits the whole report machine-readable — including the
caller→callee crossing matrix and the full metrics snapshot — so
benchmarks and CI can diff reports instead of scraping text.
``--resilience`` additionally runs a seeded fault-injection campaign
across all isolation backends and prints the site × backend
containment matrix (see :mod:`repro.resilience`); ``--recovery`` does
the same for the storage power-failure sites and prints the recovery
verdict matrix (does a durable redis deployment lose acknowledged
writes after crash + reboot?).
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.core.builder import build_image
from repro.core.config import BuildConfig
from repro.obs import exploration_metrics, write_chrome_trace


def run_workload(image, workload: str) -> tuple[str, dict]:
    """Drive the named workload; returns (one-line summary, raw numbers)."""
    if workload == "iperf":
        from repro.apps import run_iperf

        result = run_iperf(image, 1024, 1 << 18)
        return (
            f"iperf: {result.throughput_mbps:.0f} Mb/s simulated",
            {
                "name": "iperf",
                "throughput_mbps": result.throughput_mbps,
                "payload_bytes": result.payload_bytes,
                "elapsed_ns": result.elapsed_ns,
            },
        )
    if workload == "redis":
        from repro.apps import (
            make_get_payloads,
            make_set_payloads,
            run_redis_phase,
            start_redis,
        )

        start_redis(image)
        run_redis_phase(
            image,
            make_set_payloads(64, 50, keyspace=32),
            window=8,
            expect_prefix=b"+OK",
        )
        result = run_redis_phase(
            image, make_get_payloads(300, 32), window=8, expect_prefix=b"$"
        )
        p50 = result.latency_percentile(0.5)
        p99 = result.latency_percentile(0.99)
        return (
            f"redis: {result.mreq_s:.3f} Mreq/s, p50 {p50:.0f} ns, "
            f"p99 {p99:.0f} ns",
            {
                "name": "redis",
                "mreq_s": result.mreq_s,
                "requests": result.requests,
                "elapsed_ns": result.elapsed_ns,
                "p50_ns": p50,
                "p99_ns": p99,
            },
        )
    raise ValueError(f"unknown workload {workload!r}")


def collect(
    config: BuildConfig, workload: str, trace_path: str | None = None
) -> dict:
    """Build, run, and gather the full report as structured data."""
    image = build_image(config)
    image.machine.cpu.attribute_time = True
    if trace_path:
        image.enable_tracing()
    summary, numbers = run_workload(image, workload)
    if trace_path:
        write_chrome_trace(image.machine.obs.tracer, trace_path)
    return {
        "layout": image.layout(),
        "workload": {"summary": summary, **numbers},
        "crossings": [
            {"caller": caller, "callee": callee, "kind": kind, "crossings": count}
            for caller, callee, kind, count in image.crossing_report()
        ],
        "crossing_matrix": image.crossing_matrix(),
        "time_by_compartment_ns": dict(image.machine.cpu.domain_time_ns),
        "memory": image.memory_report(),
        "metrics": image.metrics_snapshot(),
        # Host-side exploration-pipeline statistics (perf-cache and
        # coloring-memo hit rates, image-build counts, query timings).
        # All zeros unless this process also ran the explorer, but the
        # key is always present so CI can diff report shapes.
        "exploration": exploration_metrics().snapshot(),
        "trace_file": str(trace_path) if trace_path else None,
    }


def collect_resilience(seed: int = 0, schedules: int = 1) -> dict:
    """Run a default containment campaign; summary for the report."""
    from repro.resilience import run_campaign

    result = run_campaign(schedules=schedules, seed=seed)
    backends = sorted({cell["backend"] for cell in result.cells})
    return {
        "seed": result.seed,
        "policy": result.policy,
        "schedules": result.schedules,
        "matrix": result.matrix(),
        "containment_rate": {
            backend: result.containment_rate(backend) for backend in backends
        },
        "recovery_ns": {
            backend: result.recovery_latencies(backend) for backend in backends
        },
    }


def collect_recovery(seed: int = 0, schedules: int = 1) -> dict:
    """Run a storage recovery campaign; summary for the report."""
    from repro.resilience import run_recovery_campaign

    result = run_recovery_campaign(schedules=schedules, seed=seed)
    return {
        "seed": result.seed,
        "schedules": result.schedules,
        "matrix": result.matrix(),
        "cells": [
            {
                "site": cell["site"],
                "backend": cell["backend"],
                "verdict": cell["verdict"],
                "acked": cell["acked"],
                "restored": cell["restored"],
                "torn_records_discarded": cell["torn_records_discarded"],
            }
            for cell in result.cells
        ],
    }


def render_text(data: dict) -> str:
    """The human-readable report (the original format)."""
    lines = [
        "== Layout ==",
        data["layout"],
        "",
        "== Workload ==",
        data["workload"]["summary"],
    ]

    lines += ["", "== Gate crossings (busiest first) =="]
    for row in data["crossings"][:12]:
        lines.append(
            f"  {row['caller']:10s} -> {row['callee']:10s} "
            f"[{row['kind']:12s}] {row['crossings']:8d}"
        )

    lines += ["", "== Simulated time by compartment =="]
    attribution = data["time_by_compartment_ns"]
    total = sum(attribution.values()) or 1.0
    for name, ns in sorted(attribution.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:28s} {ns / 1e6:9.3f} ms  ({ns / total:5.1%})")

    lines += ["", "== Memory =="]
    for row in data["memory"]:
        lines.append(
            f"  {row['compartment']:28s} owned {row['owned_bytes']:>10d} B, "
            f"heap in use {row['heap_in_use']:>8d} B "
            f"({row['heap_live_blocks']} blocks)"
        )
    resilience = data.get("resilience")
    if resilience:
        lines += ["", "== Containment matrix (site x backend) =="]
        backends = sorted(resilience["containment_rate"])
        lines.append("  " + " " * 18 + "".join(f"{b:>14s}" for b in backends))
        for site, row in sorted(resilience["matrix"].items()):
            cells = "".join(f"{row.get(b, '-'):>14s}" for b in backends)
            lines.append(f"  {site:18s}{cells}")
        rates = "  ".join(
            f"{backend}={rate:.0%}"
            for backend, rate in resilience["containment_rate"].items()
        )
        lines.append(f"  containment rate: {rates}")

    recovery = data.get("recovery")
    if recovery:
        lines += ["", "== Recovery verdicts (site x backend) =="]
        backends = sorted(
            {backend for row in recovery["matrix"].values() for backend in row}
        )
        lines.append("  " + " " * 22 + "".join(f"{b:>16s}" for b in backends))
        for site, row in sorted(recovery["matrix"].items()):
            cells = "".join(f"{row.get(b, '-'):>16s}" for b in backends)
            lines.append(f"  {site:22s}{cells}")

    if data.get("trace_file"):
        lines += ["", f"trace written to {data['trace_file']}"]
    return "\n".join(lines)


def report(
    config: BuildConfig, workload: str, trace_path: str | None = None
) -> str:
    """Build, run, and render the full text report."""
    return render_text(collect(config, workload, trace_path))


def config_from_args(args) -> BuildConfig:
    if args.config:
        data = json.loads(pathlib.Path(args.config).read_text())
        return BuildConfig.from_dict(data)
    libraries = [name for name in args.libs.split(",") if name]
    hardening = {}
    for entry in args.harden:
        lib, _, techs = entry.partition("=")
        hardening[lib] = tuple(techs.split("+")) if techs else ()
    return BuildConfig(
        libraries=libraries, backend=args.backend, hardening=hardening
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Build a FlexOS config, run a workload, report costs"
    )
    parser.add_argument("--config", help="JSON BuildConfig file")
    parser.add_argument(
        "--libs", default="libc,netstack,iperf", help="comma-separated libraries"
    )
    parser.add_argument("--backend", default="mpk-shared")
    parser.add_argument(
        "--harden", action="append", default=[], metavar="LIB=tech1+tech2"
    )
    parser.add_argument(
        "--workload", default="iperf", choices=("iperf", "redis")
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a Chrome trace-event JSON of the run to FILE",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as machine-readable JSON instead of text",
    )
    parser.add_argument(
        "--resilience",
        action="store_true",
        help="also run a seeded fault-injection campaign and report the "
        "site x backend containment matrix",
    )
    parser.add_argument(
        "--resilience-seed", type=int, default=0, metavar="N"
    )
    parser.add_argument(
        "--resilience-schedules", type=int, default=1, metavar="K"
    )
    parser.add_argument(
        "--recovery",
        action="store_true",
        help="also run a storage recovery campaign (power failures at "
        "the blk/kv sites) and report the recovery verdict matrix",
    )
    args = parser.parse_args(argv)
    if args.trace and not pathlib.Path(args.trace).resolve().parent.is_dir():
        # Fail before the run, not after: the simulation can take a
        # while and the trace would be lost.
        parser.error(f"--trace: directory of {args.trace!r} does not exist")
    data = collect(config_from_args(args), args.workload, args.trace)
    if args.resilience:
        data["resilience"] = collect_resilience(
            seed=args.resilience_seed, schedules=args.resilience_schedules
        )
    if args.recovery:
        data["recovery"] = collect_recovery(
            seed=args.resilience_seed, schedules=args.resilience_schedules
        )
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(render_text(data))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
