"""Run a configuration and report where its time and memory go.

Usage::

    python -m repro.tools.report --config build.json --workload redis
    python -m repro.tools.report --libs libc,netstack,iperf \\
        --backend mpk-shared --workload iperf
    python -m repro.tools.report --workload redis --trace trace.json --json

Prints the compartment layout, the per-edge gate-crossing counts (the
Fig. 5 diagnosis view), the per-compartment simulated-time attribution,
and the memory report.  ``--trace FILE`` records a Chrome trace-event
JSON of the run (open it in ``chrome://tracing`` or Perfetto);
``--json`` emits the whole report machine-readable — including the
caller→callee crossing matrix and the full metrics snapshot — so
benchmarks and CI can diff reports instead of scraping text.
``--profile FILE`` captures a schema-versioned
:class:`repro.obs.WorkloadProfile` of the run — the measured artifact
``tools/profile.py recommend`` feeds back into the explorer.
``--resilience`` additionally runs a seeded fault-injection campaign
across all isolation backends and prints the site × backend
containment matrix (see :mod:`repro.resilience`); ``--recovery`` does
the same for the storage power-failure sites and prints the recovery
verdict matrix (does a durable redis deployment lose acknowledged
writes after crash + reboot?).  ``--cluster`` runs a small sharded,
replicated redis cluster plus its failure campaign and reports slot
balance, replication lag, and the cluster verdict matrix (see
:mod:`repro.cluster`).  ``--queue`` summarizes queue-channel
activity — submissions, doorbells per op, batch-size and ring-depth
distributions — for configs with ``queue_edges``.
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.core.builder import build_image
from repro.core.config import BuildConfig
from repro.obs import exploration_metrics, write_chrome_trace


def machine_telemetry(images) -> dict:
    """Aggregate host-side fast-path telemetry across N machines.

    A cluster run has one :class:`~repro.machine.machine.Machine` per
    shard (plus followers); summing a single ``fastpath_stats()`` would
    silently drop every machine but one.  Counters are summed,
    ``enabled`` flags are AND-ed (one disabled machine disables the
    claim), and the machine count is reported so readers can tell a
    cluster report from a single-machine one.
    """
    total = {
        "machines": 0,
        "enabled": True,
        "tlb_hits": 0,
        "tlb_misses": 0,
        "tlb_invalidations": 0,
        "gateplan": {
            "enabled": True,
            "plans": 0,
            "plan_hits": 0,
            "plan_refreshes": 0,
        },
        "wheel_cascades": 0,
    }
    delivery = {"wakes": 0.0, "polls": 0.0, "wait_parks": 0.0}
    for image in images:
        stats = image.machine.fastpath_stats()
        total["machines"] += 1
        total["enabled"] = total["enabled"] and stats["enabled"]
        for key in ("tlb_hits", "tlb_misses", "tlb_invalidations"):
            total[key] += stats[key]
        gateplan = stats.get("gateplan") or {}
        total["gateplan"]["enabled"] = (
            total["gateplan"]["enabled"] and gateplan.get("enabled", True)
        )
        for key in ("plans", "plan_hits", "plan_refreshes"):
            total["gateplan"][key] += gateplan.get(key, 0)
        total["wheel_cascades"] += getattr(
            image.scheduler, "timer_cascades", 0
        )
        counters = image.machine.cpu.metrics.counters
        delivery["wakes"] += counters.get("queue.wakes", 0.0)
        delivery["polls"] += counters.get("queue.polls", 0.0)
        delivery["wait_parks"] += counters.get("queue.wait_parks", 0.0)
    lookups = total["tlb_hits"] + total["tlb_misses"]
    total["tlb_hit_rate"] = total["tlb_hits"] / lookups if lookups else 0.0
    delivery["wake_poll_ratio"] = (
        delivery["wakes"] / delivery["polls"] if delivery["polls"] else 0.0
    )
    total["completion_delivery"] = delivery
    return total


def run_workload(image, workload: str) -> tuple[str, dict]:
    """Drive the named workload; returns (one-line summary, raw numbers).

    Thin wrapper over :func:`repro.apps.run_named_workload` (the single
    workload registry shared with ``tools/profile.py``).
    """
    from repro.apps import run_named_workload

    return run_named_workload(image, workload)


def collect(
    config: BuildConfig,
    workload: str,
    trace_path: str | None = None,
    profile_path: str | None = None,
) -> dict:
    """Build, run, and gather the full report as structured data.

    ``profile_path`` additionally captures a
    :class:`repro.obs.WorkloadProfile` of the run (crossing deltas,
    gate latencies, cpu/alloc shares) and persists it there — the
    artifact ``tools/profile.py recommend`` feeds back into the
    explorer.
    """
    image = build_image(config)
    image.machine.cpu.attribute_time = True
    if trace_path:
        image.enable_tracing()
    if profile_path:
        from repro.obs import capture_profile

        with capture_profile(image, workload) as capture:
            summary, numbers = run_workload(image, workload)
        profile = capture.profile
        profile.save(profile_path)
    else:
        profile = None
        summary, numbers = run_workload(image, workload)
    if trace_path:
        write_chrome_trace(image.machine.obs.tracer, trace_path)
    fastpath = machine_telemetry([image])
    return {
        "layout": image.layout(),
        "workload": {"summary": summary, **numbers},
        "crossings": [
            {"caller": caller, "callee": callee, "kind": kind, "crossings": count}
            for caller, callee, kind, count in image.crossing_report()
        ],
        "crossing_matrix": image.crossing_matrix(),
        "time_by_compartment_ns": dict(image.machine.cpu.domain_time_ns),
        "memory": image.memory_report(),
        "metrics": image.metrics_snapshot(),
        # Host-side exploration-pipeline statistics (perf-cache and
        # coloring-memo hit rates, image-build counts, query timings).
        # All zeros unless this process also ran the explorer, but the
        # key is always present so CI can diff report shapes.
        "exploration": exploration_metrics().snapshot(),
        # Simulation fast-path telemetry (host-side software TLB).
        # Always collected; the text renderer shows it under --machine.
        "machine": fastpath,
        "trace_file": str(trace_path) if trace_path else None,
        "profile_file": str(profile_path) if profile_path else None,
        "profile_hash": profile.profile_hash() if profile else None,
    }


def collect_resilience(seed: int = 0, schedules: int = 1) -> dict:
    """Run a default containment campaign; summary for the report."""
    from repro.resilience import run_campaign

    result = run_campaign(schedules=schedules, seed=seed)
    backends = sorted({cell["backend"] for cell in result.cells})
    return {
        "seed": result.seed,
        "policy": result.policy,
        "schedules": result.schedules,
        "matrix": result.matrix(),
        "containment_rate": {
            backend: result.containment_rate(backend) for backend in backends
        },
        "recovery_ns": {
            backend: result.recovery_latencies(backend) for backend in backends
        },
    }


def collect_recovery(seed: int = 0, schedules: int = 1) -> dict:
    """Run a storage recovery campaign; summary for the report."""
    from repro.resilience import run_recovery_campaign

    result = run_recovery_campaign(schedules=schedules, seed=seed)
    return {
        "seed": result.seed,
        "schedules": result.schedules,
        "matrix": result.matrix(),
        "cells": [
            {
                "site": cell["site"],
                "backend": cell["backend"],
                "verdict": cell["verdict"],
                "acked": cell["acked"],
                "restored": cell["restored"],
                "torn_records_discarded": cell["torn_records_discarded"],
            }
            for cell in result.cells
        ],
    }


def collect_cluster(seed: int = 0, sets: int = 18) -> dict:
    """Run a small replicated cluster + failure campaign; summary.

    Two parts: a live three-shard snapshot (slot balance, replication
    lag, per-machine fast-path telemetry aggregated with
    :func:`machine_telemetry`) and the cluster campaign's
    site × backend verdict matrix.
    """
    from repro.cluster.campaign import run_cluster_campaign
    from repro.cluster.client import ClusterClient
    from repro.cluster.cluster import RedisCluster

    cluster = RedisCluster(shards=("s0", "s1", "s2"), replicate=True)
    client = ClusterClient(cluster)
    for index in range(sets):
        client.set(b"key:%03d" % index, b"v%03d" % index * 4)
    client.drive()
    snapshot = {
        "slots": cluster.map.counts(),
        "epoch": cluster.map.epoch,
        "shards": cluster.shard_report(),
        "client": client.stats(),
        "replication_lag": cluster.replication_lag(),
        "machine": machine_telemetry(cluster.images()),
    }
    campaign = run_cluster_campaign(seed=seed, sets=sets)
    return {
        "seed": seed,
        "snapshot": snapshot,
        "matrix": campaign.matrix(),
    }


def render_text(
    data: dict, show_machine: bool = False, show_queue: bool = False
) -> str:
    """The human-readable report (the original format)."""
    lines = [
        "== Layout ==",
        data["layout"],
        "",
        "== Workload ==",
        data["workload"]["summary"],
    ]

    lines += ["", "== Gate crossings (busiest first) =="]
    for row in data["crossings"][:12]:
        lines.append(
            f"  {row['caller']:10s} -> {row['callee']:10s} "
            f"[{row['kind']:12s}] {row['crossings']:8d}"
        )

    lines += ["", "== Simulated time by compartment =="]
    attribution = data["time_by_compartment_ns"]
    total = sum(attribution.values()) or 1.0
    for name, ns in sorted(attribution.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:28s} {ns / 1e6:9.3f} ms  ({ns / total:5.1%})")

    lines += ["", "== Memory =="]
    for row in data["memory"]:
        lines.append(
            f"  {row['compartment']:28s} owned {row['owned_bytes']:>10d} B, "
            f"heap in use {row['heap_in_use']:>8d} B "
            f"({row['heap_live_blocks']} blocks)"
        )
    resilience = data.get("resilience")
    if resilience:
        lines += ["", "== Containment matrix (site x backend) =="]
        backends = sorted(resilience["containment_rate"])
        lines.append("  " + " " * 18 + "".join(f"{b:>14s}" for b in backends))
        for site, row in sorted(resilience["matrix"].items()):
            cells = "".join(f"{row.get(b, '-'):>14s}" for b in backends)
            lines.append(f"  {site:18s}{cells}")
        rates = "  ".join(
            f"{backend}={rate:.0%}"
            for backend, rate in resilience["containment_rate"].items()
        )
        lines.append(f"  containment rate: {rates}")

    recovery = data.get("recovery")
    if recovery:
        lines += ["", "== Recovery verdicts (site x backend) =="]
        backends = sorted(
            {backend for row in recovery["matrix"].values() for backend in row}
        )
        lines.append("  " + " " * 22 + "".join(f"{b:>16s}" for b in backends))
        for site, row in sorted(recovery["matrix"].items()):
            cells = "".join(f"{row.get(b, '-'):>16s}" for b in backends)
            lines.append(f"  {site:22s}{cells}")

    cluster = data.get("cluster")
    if cluster:
        snapshot = cluster["snapshot"]
        lines += ["", "== Cluster (sharded, replicated redis) =="]
        slots = "  ".join(
            f"{shard}={count}"
            for shard, count in sorted(snapshot["slots"].items())
        )
        lines.append(f"  slot balance: {slots} (epoch {snapshot['epoch']})")
        for row in snapshot["shards"]:
            repl = row.get("replication") or {}
            lines.append(
                f"  {row['shard']}: serving {row['serving']}, "
                f"{row['keys']} keys, {row['responses']} responses, "
                f"repl applied {repl.get('applied', 0)} "
                f"(retries {repl.get('retries', 0)})"
            )
        lag = snapshot["replication_lag"]
        if lag["samples"]:
            lines.append(
                f"  replication lag: mean {lag['mean_ns'] / 1e3:.1f} us, "
                f"max {lag['max_ns'] / 1e3:.1f} us "
                f"({lag['samples']} samples)"
            )
        lines += ["", "== Cluster verdicts (site x backend) =="]
        backends = sorted(
            {backend for row in cluster["matrix"].values() for backend in row}
        )
        lines.append("  " + " " * 20 + "".join(f"{b:>20s}" for b in backends))
        for site, row in sorted(cluster["matrix"].items()):
            cells = "".join(f"{row.get(b, '-'):>20s}" for b in backends)
            lines.append(f"  {site:20s}{cells}")

    if show_queue:
        metrics = data.get("metrics", {})
        counters = metrics.get("counters", {})
        histograms = metrics.get("histograms", {})
        submitted = counters.get("queue.submitted", 0)
        doorbells = counters.get("queue.doorbells", 0)
        completions = counters.get("queue.completions", 0)
        lines += ["", "== Queue channels =="]
        if not submitted:
            lines.append(
                "  no queue-channel traffic (config has no queue_edges?)"
            )
        else:
            lines.append(
                f"  submitted {submitted}, doorbells {doorbells}, "
                f"completions {completions}"
            )
            if doorbells:
                lines.append(
                    f"  doorbells per op: {doorbells / submitted:.3f} "
                    f"(amortisation x{submitted / doorbells:.1f})"
                )
            batch = histograms.get("queue.batch_size", {})
            depth = histograms.get("queue.ring_depth", {})
            if batch.get("count"):
                lines.append(
                    f"  batch size: mean {batch['mean']:.1f}, "
                    f"p50 {batch['p50']:.0f}, max {batch['max']:.0f}"
                )
            if depth.get("count"):
                lines.append(
                    f"  ring depth at submit: mean {depth['mean']:.1f}, "
                    f"p90 {depth['p90']:.0f}, max {depth['max']:.0f}"
                )
            for row in data.get("crossings", []):
                if row["kind"].startswith("queue:"):
                    lines.append(
                        f"  edge {row['caller']} -> {row['callee']} "
                        f"[{row['kind']}]: {row['crossings']} crossings "
                        f"(doorbells + sync calls)"
                    )

    machine = data.get("machine")
    if machine and show_machine:
        lines += ["", "== Simulation fast path (host-side) =="]
        if machine.get("machines", 1) > 1:
            lines.append(
                f"  aggregated across {machine['machines']} machines"
            )
        lines.append(
            f"  software TLB: {machine['tlb_hits']} hits, "
            f"{machine['tlb_misses']} misses "
            f"({machine['tlb_hit_rate']:.1%} hit rate), "
            f"{machine['tlb_invalidations']} shootdowns"
        )
        if not machine["enabled"]:
            lines.append("  fast path DISABLED (REPRO_FASTPATH=0)")
        gateplan = machine.get("gateplan")
        if gateplan:
            lines.append(
                f"  crossing plans: {gateplan['plans']} compiled, "
                f"{gateplan['plan_hits']} hits, "
                f"{gateplan['plan_refreshes']} refreshes"
            )
            if not gateplan["enabled"]:
                lines.append(
                    "  crossing plans DISABLED (REPRO_GATEPLAN=0)"
                )
        if "wheel_cascades" in machine:
            lines.append(
                f"  timer wheel: {machine['wheel_cascades']} cascades"
            )
        delivery = machine.get("completion_delivery")
        if delivery and (delivery["wakes"] or delivery["polls"]):
            lines.append(
                f"  completion delivery: {delivery['wakes']:.0f} wakes / "
                f"{delivery['polls']:.0f} polls "
                f"(ratio {delivery['wake_poll_ratio']:.2f}), "
                f"{delivery['wait_parks']:.0f} parks"
            )

    if data.get("trace_file"):
        lines += ["", f"trace written to {data['trace_file']}"]
    if data.get("profile_file"):
        lines += [
            "",
            f"profile {data['profile_hash']} written to "
            f"{data['profile_file']}",
        ]
    return "\n".join(lines)


def report(
    config: BuildConfig, workload: str, trace_path: str | None = None
) -> str:
    """Build, run, and render the full text report."""
    return render_text(collect(config, workload, trace_path))


def _check_output_dir(parser, flag: str, path: str | None) -> None:
    """Fail before the run, not after: the simulation can take a while
    and the artifact would be lost."""
    if path and not pathlib.Path(path).resolve().parent.is_dir():
        parser.error(f"{flag}: directory of {path!r} does not exist")


def config_from_args(args) -> BuildConfig:
    if args.config:
        data = json.loads(pathlib.Path(args.config).read_text())
        return BuildConfig.from_dict(data)
    libraries = [name for name in args.libs.split(",") if name]
    hardening = {}
    for entry in args.harden:
        lib, _, techs = entry.partition("=")
        hardening[lib] = tuple(techs.split("+")) if techs else ()
    return BuildConfig(
        libraries=libraries, backend=args.backend, hardening=hardening
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Build a FlexOS config, run a workload, report costs"
    )
    parser.add_argument("--config", help="JSON BuildConfig file")
    parser.add_argument(
        "--libs", default="libc,netstack,iperf", help="comma-separated libraries"
    )
    parser.add_argument("--backend", default="mpk-shared")
    parser.add_argument(
        "--harden", action="append", default=[], metavar="LIB=tech1+tech2"
    )
    parser.add_argument(
        "--workload", default="iperf", choices=("iperf", "redis")
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a Chrome trace-event JSON of the run to FILE",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        help="capture a WorkloadProfile of the run (measured crossing "
        "counts, gate latencies, cpu/alloc shares) to FILE — the "
        "artifact tools/profile.py feeds back into the explorer",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as machine-readable JSON instead of text",
    )
    parser.add_argument(
        "--resilience",
        action="store_true",
        help="also run a seeded fault-injection campaign and report the "
        "site x backend containment matrix",
    )
    parser.add_argument(
        "--resilience-seed", type=int, default=0, metavar="N"
    )
    parser.add_argument(
        "--resilience-schedules", type=int, default=1, metavar="K"
    )
    parser.add_argument(
        "--recovery",
        action="store_true",
        help="also run a storage recovery campaign (power failures at "
        "the blk/kv sites) and report the recovery verdict matrix",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="also run a small sharded/replicated cluster plus its "
        "failure campaign and report slot balance, replication lag, "
        "and the site x backend verdict matrix",
    )
    parser.add_argument(
        "--queue",
        action="store_true",
        help="also summarize queue-channel activity (submissions, "
        "doorbells per op, batch-size and ring-depth distributions)",
    )
    parser.add_argument(
        "--machine",
        action="store_true",
        help="also summarize the simulation fast path (software-TLB "
        "hit/miss/shootdown counts, crossing-plan cache hits, timer-"
        "wheel cascades, wake-vs-poll completion delivery — host-side "
        "telemetry, never part of the simulated metrics)",
    )
    args = parser.parse_args(argv)
    _check_output_dir(parser, "--trace", args.trace)
    _check_output_dir(parser, "--profile", args.profile)
    data = collect(
        config_from_args(args), args.workload, args.trace, args.profile
    )
    if args.resilience:
        data["resilience"] = collect_resilience(
            seed=args.resilience_seed, schedules=args.resilience_schedules
        )
    if args.recovery:
        data["recovery"] = collect_recovery(
            seed=args.resilience_seed, schedules=args.resilience_schedules
        )
    if args.cluster:
        data["cluster"] = collect_cluster(seed=args.resilience_seed)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(render_text(data, show_machine=args.machine, show_queue=args.queue))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
