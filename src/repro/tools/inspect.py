"""Inspection tool: metadata, conflict graph, layouts, deployments.

Usage::

    python -m repro.tools.inspect netstack libc iperf
"""

from __future__ import annotations

import argparse

from repro.core.builder import library_defs
from repro.core.compatibility import conflict_graph, explain_conflict
from repro.core.config import BuildConfig
from repro.core.explorer import Explorer, estimate_crossing_cost, security_score
from repro.core.hardening import transform_spec


def format_specs(config: BuildConfig) -> str:
    """Render every selected library's metadata in the paper's DSL."""
    blocks = []
    for libdef in library_defs(config):
        blocks.append(f"--- {libdef.name} ---\n{libdef.spec.describe()}")
    return "\n\n".join(blocks)


def format_conflicts(config: BuildConfig) -> str:
    """Render the conflict graph with per-edge explanations."""
    defs = library_defs(config)
    specs = {d.name: d.spec for d in defs}
    nodes, edges = conflict_graph(list(specs.values()))
    if not edges:
        return "no conflicts: everything may share one compartment"
    lines = [f"{len(edges)} conflict(s) among {len(nodes)} libraries:"]
    for edge in sorted(edges, key=sorted):
        a, b = sorted(edge)
        lines.append(f"  {a} <-> {b}")
        for violation in explain_conflict(specs[a], specs[b]):
            lines.append(f"      {violation}")
    return "\n".join(lines)


def describe_config(config: BuildConfig) -> str:
    """Full report: specs, conflicts, auto layout, SH deployments."""
    defs = library_defs(config)
    explorer = Explorer(defs)
    sections = [
        "== Library metadata ==",
        format_specs(config),
        "",
        "== Conflict graph ==",
        format_conflicts(config),
        "",
        "== Enumerated deployments (SH variants x coloring) ==",
    ]
    for deployment in explorer.deployments:
        cost = estimate_crossing_cost(deployment, defs)
        sections.append(
            f"  [{deployment.num_compartments} compartment(s), "
            f"analytic cost {cost:.1f}, security "
            f"{security_score(deployment):.1f}] {deployment.describe()}"
        )
    if config.hardening:
        sections += [
            "",
            "== Effective specs with configured hardening ==",
        ]
        for libdef in defs:
            techniques = tuple(config.hardening.get(libdef.name, ()))
            if techniques:
                narrowed = transform_spec(libdef, techniques)
                sections.append(
                    f"--- {libdef.name} [{'+'.join(techniques)}] ---\n"
                    f"{narrowed.describe()}"
                )
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Inspect FlexOS library metadata and design space"
    )
    parser.add_argument("libraries", nargs="+", help="library names")
    parser.add_argument(
        "--harden",
        action="append",
        default=[],
        metavar="LIB=tech1+tech2",
        help="apply SH techniques to a library",
    )
    args = parser.parse_args(argv)
    hardening = {}
    for entry in args.harden:
        lib, _, techs = entry.partition("=")
        hardening[lib] = tuple(techs.split("+")) if techs else ()
    config = BuildConfig(libraries=args.libraries, hardening=hardening)
    print(describe_config(config))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
