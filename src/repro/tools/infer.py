"""Trace-based metadata inference tool (paper §5).

Runs the selected libraries in a profiling image under a representative
workload (an iperf transfer when the netstack is present, otherwise a
message-queue exercise), then prints the inferred metadata next to a
declared-vs-observed validation report.

Usage::

    python -m repro.tools.infer netstack libc iperf
"""

from __future__ import annotations

import argparse

from repro.core.inference import MetadataRecorder, profiling_image
from repro.libos.sched.base import YIELD


def _exercise(image) -> None:
    """Drive a small representative workload through the image."""
    if image.has_lib("iperf") and image.has_lib("netstack"):
        from repro.apps import run_iperf

        run_iperf(image, 1024, 1 << 17)
        return
    if image.has_lib("redis") and image.has_lib("netstack"):
        from repro.apps import (
            make_get_payloads,
            make_set_payloads,
            run_redis_phase,
            start_redis,
        )

        start_redis(image)
        run_redis_phase(
            image, make_set_payloads(16, 32, keyspace=16), expect_prefix=b"+OK"
        )
        run_redis_phase(image, make_get_payloads(32, 16), expect_prefix=b"$")
        return
    if image.has_lib("mq"):
        qid = image.call("mq", "q_new", 4)
        mq = image.lib("mq")

        def producer():
            for index in range(8):
                yield from mq.q_push(qid, 0x1000 + index, index)

        def consumer():
            for _ in range(8):
                yield from mq.q_pop(qid)

        image.spawn("producer", producer, mq)
        image.spawn("consumer", consumer, mq)
        image.run(max_switches=1000)
        return
    # Fall back to a semaphore ping-pong through libc.
    if image.has_lib("libc"):
        libc = image.lib("libc")
        sem = image.call("libc", "sem_new", 0)

        def waiter():
            yield from libc.sem_p(sem)

        def poster():
            yield YIELD
            libc.sem_v(sem)

        image.spawn("waiter", waiter, libc)
        image.spawn("poster", poster, libc)
        image.run(max_switches=100)


def report(libraries: list[str]) -> str:
    """Build, exercise, and report on the selected libraries."""
    image, recorder = profiling_image(libraries)
    _exercise(image)
    sections = []
    for name in libraries:
        observation = recorder.observed(name)
        sections.append(f"== {name} (observed over {observation.access_count} accesses) ==")
        sections.append(observation.spec().describe())
        findings = recorder.validate_declared(name)
        if findings:
            sections.append("validation against declared metadata:")
            sections.extend(f"  {finding}" for finding in findings)
        else:
            sections.append("declared metadata consistent with the trace")
        sections.append("")
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Infer FlexOS metadata from an execution trace"
    )
    parser.add_argument("libraries", nargs="+", help="library names")
    args = parser.parse_args(argv)
    print(report(args.libraries))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
