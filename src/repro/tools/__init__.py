"""Command-line tooling around the FlexOS core.

- ``python -m repro.tools.inspect LIB [LIB...]`` — print each selected
  library's metadata, the conflict graph, the automatic compartment
  layout, and the enumerated SH deployments.
- ``python -m repro.tools.infer LIB [LIB...]`` — run a profiling
  workload, print trace-inferred metadata and a declared-vs-observed
  validation report (paper §5).
- ``python -m repro.tools.report [--config cfg.json] --workload redis``
  — build an image, drive a workload, and report gate crossings,
  per-compartment time, and memory usage.
"""

from repro.tools.inspect import describe_config, format_conflicts, format_specs
from repro.tools.report import report as run_report

__all__ = ["describe_config", "format_conflicts", "format_specs", "run_report"]
