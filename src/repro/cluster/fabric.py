"""The inter-machine fabric: links between the NICs of separate machines.

Each shard of a cluster is a whole :class:`~repro.core.image.Image`
with its own :class:`~repro.machine.machine.Machine` and its own
simulated clock.  The fabric connects them:

- a :class:`Link` models one direction of a point-to-point connection,
  reusing the NIC wire-pacing cost model (per-packet framing cost +
  per-byte serialisation, :class:`~repro.machine.cycles.CostModel`'s
  ``wire_pkt_ns``/``wire_byte_ns``) plus a propagation latency, and
  serialises back-to-back messages the way a real wire does
  (``_busy_until_ns``);
- a :class:`Node` wraps one image, installing the fabric as the
  image's NIC client: inbound messages become packets the NIC's
  ``rx_source`` delivers once their arrival time has passed on the
  *receiver's* clock, and transmitted packets flow to the node's
  client sink (the cluster smart client);
- the :class:`Fabric` advances the whole cluster **conservatively**:
  it always runs the alive node with the smallest clock for a bounded
  slice, so no node ever consumes a message from the future — the
  multi-machine equivalent of a conservative parallel discrete-event
  simulation, and fully deterministic (ties broken by node name).

Liveness needs no special casing: when a node's inbox has only
future-dated messages its ``rx_source`` answers ``None``, the NIC
marks the wire idle, and the rx loop's empty polls keep that node's
clock advancing until the arrival time is reached.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable

from repro.libos.net.packet import build_packet

if TYPE_CHECKING:
    from repro.core.image import Image


class Link:
    """One direction of an inter-machine connection."""

    def __init__(
        self,
        latency_ns: float = 5_000.0,
        byte_ns: float | None = None,
        pkt_ns: float | None = None,
        cost=None,
    ) -> None:
        #: Propagation delay (a few µs: same-rack RTT ~10 µs).
        self.latency_ns = latency_ns
        self.byte_ns = byte_ns if byte_ns is not None else (
            cost.wire_byte_ns if cost is not None else 0.78
        )
        self.pkt_ns = pkt_ns if pkt_ns is not None else (
            cost.wire_pkt_ns if cost is not None else 20.0
        )
        #: The wire serialises: a message cannot start transmitting
        #: before the previous one finished.
        self._busy_until_ns = 0.0
        self.messages = 0
        self.bytes = 0

    def delay(self, now_ns: float, nbytes: int) -> float:
        """Schedule one message; returns its arrival time."""
        start = max(now_ns, self._busy_until_ns)
        done = start + self.pkt_ns + nbytes * self.byte_ns
        self._busy_until_ns = done
        self.messages += 1
        self.bytes += nbytes
        return done + self.latency_ns


class Node:
    """One machine on the fabric (an image plus its NIC wiring)."""

    def __init__(
        self, fabric: "Fabric", name: str, image: "Image", port: int
    ) -> None:
        self.fabric = fabric
        self.name = name
        self.image = image
        self.port = port
        self.alive = True
        #: Inbound heap of (arrival_ns, seq, payload) — payloads become
        #: packets once the *receiver's* clock reaches the arrival time.
        self._inbox: list[tuple[float, int, bytes]] = []
        self._inbox_seq = 0
        self._tx_seq = 0
        #: Fabric links, one per direction (client → node, node → client).
        self.downlink = Link(
            latency_ns=fabric.latency_ns, cost=image.machine.cost
        )
        self.uplink = Link(
            latency_ns=fabric.latency_ns, cost=image.machine.cost
        )
        #: Receives transmitted payloads (the smart client's reply path).
        self.client_sink: Callable[[str, bytes], None] | None = None
        netstack = image.lib("netstack")
        netstack.nic.rx_source = self._rx_source
        netstack.nic.tx_sink = self._tx_sink

    @property
    def clock_ns(self) -> float:
        return self.image.machine.cpu.clock_ns

    # --- fabric side ------------------------------------------------------

    def deliver(self, payload: bytes, sent_at_ns: float | None = None) -> float:
        """Schedule ``payload`` for delivery to this node.

        ``sent_at_ns`` defaults to this node's own clock (an external
        client reacting to this node's replies).  Returns the arrival
        time on the node's clock.
        """
        now = sent_at_ns if sent_at_ns is not None else self.clock_ns
        arrival = self.downlink.delay(now, len(payload))
        heapq.heappush(self._inbox, (arrival, self._inbox_seq, payload))
        self._inbox_seq += 1
        return arrival

    @property
    def inbox_depth(self) -> int:
        return len(self._inbox)

    def next_arrival_ns(self) -> float | None:
        """Earliest scheduled arrival, if any."""
        return self._inbox[0][0] if self._inbox else None

    # --- NIC callbacks ----------------------------------------------------

    def _rx_source(self) -> bytes | None:
        if not self._inbox:
            return None
        arrival, _, payload = self._inbox[0]
        if arrival > self.clock_ns:
            # Still in flight: the NIC marks the wire idle and the rx
            # loop's empty polls advance this node's clock to meet it.
            return None
        heapq.heappop(self._inbox)
        packet = build_packet(self.port, payload, seq=self._tx_seq)
        self._tx_seq += len(payload)
        return packet

    def _tx_sink(self, frame: bytes) -> None:
        from repro.libos.net.packet import unpack_header

        header = unpack_header(frame)
        payload = frame[16 : 16 + header.length]
        # Replies ride the uplink: pace and count them, then hand the
        # payload to the client (whose machine is not under test).
        self.uplink.delay(self.clock_ns, len(payload))
        if self.client_sink is not None:
            self.client_sink(self.name, payload)


class Fabric:
    """A set of nodes advanced on one conservative simulated timeline."""

    def __init__(self, latency_ns: float = 5_000.0) -> None:
        self.latency_ns = latency_ns
        self.nodes: dict[str, Node] = {}
        #: The node currently executing (PowerFailure attribution).
        self.current: Node | None = None

    def add_node(self, name: str, image: "Image", port: int) -> Node:
        if name in self.nodes:
            raise ValueError(f"fabric already has a node {name!r}")
        node = Node(self, name, image, port)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def kill(self, name: str) -> Node:
        """Power off a node (it stops being scheduled; inbox freezes)."""
        node = self.nodes[name]
        node.alive = False
        return node

    def alive_nodes(self) -> list[Node]:
        return [node for node in self.nodes.values() if node.alive]

    @property
    def clock_ns(self) -> float:
        """Cluster time: the max clock across alive nodes."""
        clocks = [node.clock_ns for node in self.alive_nodes()]
        return max(clocks) if clocks else 0.0

    def run(
        self,
        until: Callable[[], bool],
        max_rounds: int = 200_000,
        slice_switches: int = 400,
    ) -> None:
        """Advance nodes until ``until()`` holds.

        Conservative stepping: each round runs the alive node with the
        smallest clock for at most ``slice_switches`` context switches
        (ties broken by name), so no node processes a message before
        its sender's clock reached the send time.  Raises if the
        condition is still false after ``max_rounds`` rounds (a wedged
        cluster fails fast instead of spinning forever).

        A :class:`~repro.machine.faults.PowerFailure` escaping a node
        propagates to the caller with :attr:`current` still naming the
        node that died — campaign harnesses use that for attribution.
        """
        for _ in range(max_rounds):
            if until():
                return
            candidates = self.alive_nodes()
            if not candidates:
                raise RuntimeError("no alive nodes on the fabric")
            node = min(candidates, key=lambda n: (n.clock_ns, n.name))
            # Left pointing at the raiser when an exception (e.g. a
            # PowerFailure) escapes — campaign attribution depends on it.
            self.current = node
            node.image.run(until=until, max_switches=slice_switches)
        raise RuntimeError(
            f"fabric.run: condition not reached after {max_rounds} rounds"
        )
