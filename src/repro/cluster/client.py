"""The cluster-aware smart client: routing, MOVED chasing, ground truth.

:class:`ClusterClient` is the closed-loop load source for a
:class:`~repro.cluster.cluster.RedisCluster`.  It speaks RESP, routes
each request to the shard owning the key (per its view of the shard
map), keeps a bounded window of outstanding requests per node, and —
crucially for the campaigns — maintains **ground truth**: the exact
set of key→value pairs the cluster has *acked*.  Verdicts like
``no-acked-write-lost`` are judged against this set.

Redirect handling mirrors a real redis cluster client: a ``-MOVED
<slot> <owner>`` reply re-enqueues the request toward the named owner
and counts the redirect.  Failover handling mirrors an at-least-once
retry policy: when a node dies, its outstanding requests are aborted
back onto the pending queue (``SET`` is idempotent per key, so replays
are safe; an acked value is never rolled back).
"""

from __future__ import annotations

import collections
import dataclasses

from repro.apps import resp
from repro.cluster.shardmap import slot_of

#: Per-node window of outstanding (unanswered) requests.
DEFAULT_WINDOW = 4


@dataclasses.dataclass
class Request:
    """One in-flight client command."""

    op: str  # "set" | "get" | "del"
    key: bytes
    value: bytes | None
    payload: bytes
    attempts: int = 0
    #: Owner override from a MOVED redirect (chased before the map).
    forced_shard: str | None = None


class ClusterClient:
    """Closed-loop RESP client driving a :class:`RedisCluster`."""

    def __init__(self, cluster, window: int = DEFAULT_WINDOW) -> None:
        self.cluster = cluster
        self.window = window
        self.pending: collections.deque[Request] = collections.deque()
        #: FIFO of outstanding requests per node name (RESP replies come
        #: back in request order on a connection).
        self.outstanding: dict[str, collections.deque[Request]] = {}
        #: Incremental RESP reply parser per node connection.
        self._parsers: dict[str, resp.ReplyParser] = {}
        #: Ground truth: key → value for every *acked* SET (deletes
        #: remove the key).  Campaign verdicts compare against this.
        self.acked: dict[bytes, bytes] = {}
        self.issued = 0
        self.completed = 0
        self.moved = 0
        self.retried = 0
        self.errors = 0
        #: GETs whose reply disagreed with the acked ground truth.
        self.stale_reads = 0
        #: Stale replies by key (campaign reporting).
        self.stale_keys: list[bytes] = []
        cluster.attach_client(self)

    # --- enqueue ----------------------------------------------------------

    def set(self, key: bytes, value: bytes) -> None:
        self.issued += 1
        self.pending.append(
            Request("set", key, value, resp.encode_command(b"SET", key, value))
        )

    def get(self, key: bytes) -> None:
        self.issued += 1
        self.pending.append(
            Request("get", key, None, resp.encode_command(b"GET", key))
        )

    def delete(self, key: bytes) -> None:
        self.issued += 1
        self.pending.append(
            Request("del", key, None, resp.encode_command(b"DEL", key))
        )

    # --- pumping ----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.completed >= self.issued

    def _node_for(self, request: Request):
        shard = request.forced_shard or self.cluster.map.owner(request.key)
        if shard not in self.cluster.shards:
            return None
        node = self.cluster.serving_node(shard)
        return node if node.alive else None

    def pump(self) -> int:
        """Dispatch pending requests into open windows; returns count."""
        dispatched = 0
        blocked: list[Request] = []
        while self.pending:
            request = self.pending.popleft()
            node = self._node_for(request)
            if node is None:
                # Owner dead or missing (mid-failover): park it.
                blocked.append(request)
                continue
            queue = self.outstanding.setdefault(node.name, collections.deque())
            if len(queue) >= self.window:
                blocked.append(request)
                continue
            request.attempts += 1
            queue.append(request)
            node.deliver(request.payload)
            dispatched += 1
        self.pending.extend(blocked)
        return dispatched

    def drive(self, max_rounds: int = 200_000) -> None:
        """Pump until every issued request completed."""

        def advanced() -> bool:
            self.pump()
            return self.done

        self.cluster.fabric.run(until=advanced, max_rounds=max_rounds)

    def rebind(self) -> None:
        """Topology changed (failover/rebalance): re-register sinks."""
        for shard in self.cluster.shards.values():
            if shard.serving.alive:
                shard.serving.client_sink = self.on_reply

    # --- reply path -------------------------------------------------------

    def on_reply(self, node_name: str, payload: bytes) -> None:
        parser = self._parsers.setdefault(node_name, resp.ReplyParser())
        for reply in parser.feed(payload):
            queue = self.outstanding.get(node_name)
            if not queue:
                # Reply for a request we already aborted elsewhere
                # (duplicate ack after a retry) — drop it.
                continue
            request = queue.popleft()
            self._complete(request, reply)

    def _complete(self, request: Request, reply) -> None:
        if isinstance(reply, resp.ErrorReply):
            text = reply.message
            if text.startswith(b"MOVED "):
                # -MOVED <slot> <owner>: chase the redirect.
                parts = text.split()
                self.moved += 1
                request.forced_shard = (
                    parts[2].decode() if len(parts) >= 3 else None
                )
                self.pending.appendleft(request)
                return
            self.errors += 1
            self.completed += 1
            return
        if request.op == "set":
            if reply == b"OK":
                self.acked[request.key] = request.value
            else:
                self.errors += 1
        elif request.op == "del":
            self.acked.pop(request.key, None)
        elif request.op == "get":
            expected = self.acked.get(request.key)
            if expected is not None and reply != expected:
                self.stale_reads += 1
                self.stale_keys.append(request.key)
        self.completed += 1

    # --- failure handling -------------------------------------------------

    def abort_node(self, node_name: str) -> int:
        """A node died: retry its outstanding requests elsewhere.

        At-least-once semantics — a request the dead node processed but
        never answered is replayed against the new owner.  ``SET`` and
        ``DEL`` are idempotent per key so replays converge; an already
        recorded ack is never rolled back.
        """
        queue = self.outstanding.pop(node_name, None)
        self._parsers.pop(node_name, None)
        if not queue:
            return 0
        for request in queue:
            request.forced_shard = None  # re-route via the new map
            self.retried += 1
            self.pending.appendleft(request)
        return len(queue)

    # --- reporting --------------------------------------------------------

    def stats(self) -> dict:
        return {
            "issued": self.issued,
            "completed": self.completed,
            "acked": len(self.acked),
            "moved": self.moved,
            "retried": self.retried,
            "errors": self.errors,
            "stale_reads": self.stale_reads,
        }


def verify_acked(cluster, client: ClusterClient) -> dict:
    """Read back every acked key through the cluster; returns the audit.

    Drives real GET traffic (following MOVED redirects) and compares
    each reply against the client's acked ground truth.  Any mismatch
    or miss is an acked-write violation.
    """
    probe = ClusterClient(cluster, window=client.window)
    probe.acked = dict(client.acked)
    lost: list[str] = []
    wrong: list[str] = []
    for key in sorted(client.acked):
        probe.get(key)
    probe.drive()
    # probe.stale_reads counts mismatches; distinguish miss vs corrupt
    # by re-reading values host-side from the owning shard.
    for key in sorted(client.acked):
        owner = cluster.map.owner(key)
        node = cluster.serving_node(owner)
        value = node.image.lib("redis").value_of(key)
        if value is None:
            lost.append(key.decode(errors="replace"))
        elif value != client.acked[key]:
            wrong.append(key.decode(errors="replace"))
    return {
        "checked": len(client.acked),
        "lost": lost,
        "wrong": wrong,
        "wire_mismatches": probe.stale_reads,
        "moved_followed": probe.moved,
        "ok": not lost and not wrong and probe.stale_reads == 0,
    }
