"""Primary→follower replication of the journal-before-ack write stream.

The rediserver journals every write into its kv compartment before
acking (:mod:`repro.apps.rediserver`).  In a cluster, the same record
is also pushed to a follower shard on another machine *before* the ack
— so an acked write exists on two media, and failover can promote the
follower without losing it.

The channel is modelled on the vm-rpc gate's notification discipline
(:mod:`repro.gates.vm_rpc`), because that is what it is: a doorbell
into a storage compartment that happens to live on a remote machine.

- the **doorbell** charges the primary ``vm_notify_ns`` plus per-byte
  marshalling, and asks the fault injector for a delivery verdict
  (site ``repl-drop``); a dropped doorbell is retried after an
  exponentially backed-off ``vm_rpc_timeout_ns`` charge, and a
  :class:`ReplicationTimeout` surfaces once the retry budget is spent;
- the record then rides a fabric :class:`~repro.cluster.fabric.Link`
  (wire pacing + propagation latency) to the follower, whose clock is
  advanced to the arrival time; the follower pays dispatch plus a
  staging copy and applies the record through its **own** kv gate
  (``kv.put`` / ``kv.delete``), journaling it with the follower's
  flush policy;
- site ``repl-crash-primary`` fires *between* the follower's apply and
  the reply — the power-cut-between-doorbell-and-reply crash point:
  the follower holds a record the primary never acked;
- the reply rides the link back; the primary's clock advances to its
  arrival, and the whole round-trip is observed into the
  ``repl.lag_ns`` histogram (the replication-lag metric
  ``tools/report.py --cluster`` renders).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.machine.faults import GateError

if TYPE_CHECKING:
    from repro.cluster.fabric import Link, Node

#: Doorbell retry budget (mirrors GateOptions.rpc_max_retries).
MAX_RETRIES = 4
#: Exponential backoff factor between retries.
BACKOFF = 2.0
#: Fixed reply size (ack header) riding the link back.
REPLY_BYTES = 32


class ReplicationTimeout(GateError):
    """Replication doorbell lost more times than the retry budget."""


class ReplicaChannel:
    """Host-side replication pipe from a primary node to its follower."""

    def __init__(self, primary: "Node", follower: "Node", link: "Link") -> None:
        self.primary = primary
        self.follower = follower
        self.link = link
        #: Records applied on the follower (its replication offset).
        self.applied = 0
        self.doorbells = 0
        self.retries = 0
        #: Shared staging buffer on the follower for incoming values.
        self._staging: int | None = None

    # --- rediserver's replicator interface --------------------------------

    def put(self, key: bytes, data: bytes) -> None:
        self._replicate("put", key, data)

    def delete(self, key: bytes) -> None:
        self._replicate("delete", key, b"")

    # --- mechanics --------------------------------------------------------

    def _staging_buf(self, size: int) -> int:
        if self._staging is None:
            self._staging = self.follower.image.call(
                "alloc", "malloc_shared", 4096
            )
        return self._staging

    def _replicate(self, op: str, key: bytes, data: bytes) -> None:
        primary_cpu = self.primary.image.machine.cpu
        cost = self.primary.image.machine.cost
        injector = self.primary.image.machine.injector
        payload_bytes = 16 + len(key) + len(data)

        # Doorbell with vm-rpc retry discipline, charged to the primary
        # (this runs inside the primary's journal-before-ack path).
        attempts = 0
        while True:
            attempts += 1
            primary_cpu.charge(
                cost.vm_notify_ns + payload_bytes * cost.vm_copy_byte_ns
            )
            primary_cpu.bump("repl.doorbells")
            self.doorbells += 1
            verdict = "delivered"
            if injector is not None:
                verdict = injector.on_repl_op(
                    self.primary.name, self.follower.name
                )
            if verdict == "delivered":
                break
            if attempts > MAX_RETRIES:
                raise ReplicationTimeout(
                    f"replication {self.primary.name}->{self.follower.name}: "
                    f"doorbell lost {attempts} times"
                )
            self.retries += 1
            primary_cpu.bump("repl.retries")
            primary_cpu.charge(cost.vm_rpc_timeout_ns * BACKOFF ** (attempts - 1))

        sent_ns = primary_cpu.clock_ns
        arrival = self.link.delay(sent_ns, payload_bytes)

        # The follower cannot apply before the record arrives.
        follower_cpu = self.follower.image.machine.cpu
        if arrival > follower_cpu.clock_ns:
            follower_cpu.charge(arrival - follower_cpu.clock_ns)
        follower_cpu.charge(cost.vm_notify_ns)  # dispatch on the follower
        follower_cpu.bump("repl.applied")

        if op == "put":
            staging = self._staging_buf(len(data))
            if data:
                machine = self.follower.image.machine
                kv_space = self.follower.image.compartment_of(
                    "kv"
                ).address_space
                machine.dma_write(kv_space, staging, data)
                follower_cpu.charge(len(data) * cost.vm_copy_byte_ns)
            self.follower.image.call("kv", "put", key, staging, len(data))
        else:
            self.follower.image.call("kv", "delete", key)
        self.applied += 1

        # Crash point: primary power cut after the follower durably
        # applied but before the reply (and therefore before the
        # client's ack) — raises PowerFailure out of the serving path.
        if injector is not None:
            injector.on_repl_commit(self.primary.name, self.follower.name)

        # Ack rides back; the primary blocks until it lands (the write
        # is not acked to the client before the follower confirmed).
        reply_arrival = self.link.delay(follower_cpu.clock_ns, REPLY_BYTES)
        if reply_arrival > primary_cpu.clock_ns:
            primary_cpu.charge(reply_arrival - primary_cpu.clock_ns)
        lag = primary_cpu.clock_ns - sent_ns
        metrics = self.primary.image.machine.obs.metrics
        metrics.histogram("repl.lag_ns").observe(lag)

    def stats(self) -> dict:
        return {
            "primary": self.primary.name,
            "follower": self.follower.name,
            "applied": self.applied,
            "doorbells": self.doorbells,
            "retries": self.retries,
        }
