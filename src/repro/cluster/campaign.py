"""Cluster failure campaigns: seeded crashes with cluster-level verdicts.

The single-machine recovery campaign (:mod:`repro.resilience.campaign`)
asks "did the journal survive the power cut?".  The cluster campaign
asks the distributed version: **does an acked write survive losing the
machine that acked it?**  Each cell drives seeded RESP load through
the smart client (which records the acked ground truth), injects one
cluster-level failure, lets the cluster fail over / rebalance, and
audits every acked key through real wire reads plus host-side store
inspection.

Sites
    ``primary-kill``
        Harness powers off one shard's primary mid-load (seeded kill
        point); the follower is promoted with journal replay.
    ``repl-crash-primary``
        The fault injector cuts the primary's power *between* the
        replication doorbell and its reply — the follower holds a
        record the client never saw acked.  Failover must neither
        lose an acked write nor miscount the unacked one.
    ``repl-drop``
        The injector drops replication doorbells in flight; the
        channel's vm-rpc-style retry discipline must absorb them with
        no acked loss.
    ``stale-read``
        The follower is promoted *without* journal replay, the client
        observes the stale-read window, then replay closes it.
    ``shard-join``
        A shard joins mid-life; moved slots migrate over the wire and
        a deliberately stale client must converge via MOVED chasing.

Verdicts (worst kept per site × backend across schedules)
    ``not-triggered`` < ``rebalance-converged`` =
    ``no-acked-write-lost`` < ``stale-read-window`` <
    ``acked-write-lost``.

Every cell is a pure function of (backend, site, seed): same inputs,
bit-identical verdicts.

CLI::

    python -m repro.cluster.campaign --backends none,mpk-shared \
        --sites primary-kill --schedules 1 --seed 9 --sets 24 \
        --check primary-kill --json -
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import random
import sys

from repro.cluster.client import ClusterClient, verify_acked
from repro.cluster.cluster import RedisCluster
from repro.machine.faults import PowerFailure
from repro.resilience.injector import arm
from repro.resilience.plan import InjectionPlan

DEFAULT_BACKENDS = ("none", "mpk-shared")
DEFAULT_SITES = (
    "primary-kill",
    "repl-crash-primary",
    "repl-drop",
    "stale-read",
    "shard-join",
)
DEFAULT_SHARDS = ("s0", "s1", "s2")

#: Worst-case ordering for the site × backend matrix.
SEVERITY = {
    "not-triggered": 0,
    "rebalance-converged": 1,
    "no-acked-write-lost": 1,
    "stale-read-window": 2,
    "acked-write-lost": 3,
}

#: The verdict each site must earn for a CI ``--check`` to pass.
EXPECTED = {
    "primary-kill": "no-acked-write-lost",
    "repl-crash-primary": "no-acked-write-lost",
    "repl-drop": "no-acked-write-lost",
    "stale-read": "stale-read-window",
    "shard-join": "rebalance-converged",
}


def _seeded_load(client: ClusterClient, seed: int, sets: int) -> None:
    """Issue ``sets`` seeded SETs (keys spread across all shards)."""
    rng = random.Random(seed)
    for index in range(sets):
        key = b"key:%03d" % index
        value = b"v%03d-%08x" % (index, rng.getrandbits(32))
        client.set(key, value)


def _victim_shard(cluster: RedisCluster, seed: int) -> str:
    shards = sorted(cluster.shards)
    return shards[seed % len(shards)]


def _audit_verdict(cluster, client, triggered: bool) -> tuple[str, dict]:
    if not triggered:
        return "not-triggered", {"checked": 0, "ok": True}
    audit = verify_acked(cluster, client)
    return (
        "no-acked-write-lost" if audit["ok"] else "acked-write-lost"
    ), audit


def run_cluster_cell(
    backend: str,
    site: str,
    seed: int,
    sets: int = 24,
    shards=DEFAULT_SHARDS,
) -> dict:
    """One (backend × site × seed) cluster failure cell."""
    cluster = RedisCluster(shards=shards, backend=backend, replicate=True)
    client = ClusterClient(cluster)
    _seeded_load(client, seed, sets)
    victim = _victim_shard(cluster, seed)
    primary = cluster.shards[victim].primary
    injector = None
    extra: dict = {}

    if site == "primary-kill":
        threshold = max(1, sets // 3 + seed % 5)

        def until_kill_point() -> bool:
            client.pump()
            return len(client.acked) >= threshold or client.done

        cluster.fabric.run(until=until_kill_point)
        cluster.kill_primary(victim)
        extra["recover_report"] = cluster.promote(victim, recover=True)
        client.drive()
        verdict, audit = _audit_verdict(cluster, client, triggered=True)

    elif site == "repl-crash-primary":
        nth = 1 + seed % max(1, sets // len(shards) // 2)
        plan = InjectionPlan(seed).crash_repl_primary(nth=nth)
        injector = arm(primary.image, plan)
        try:
            client.drive()
            triggered = False
        except PowerFailure:
            triggered = True
            died = cluster.fabric.current
            assert died is not None and died.name == primary.name
            cluster.kill_primary(victim)
            extra["recover_report"] = cluster.promote(victim, recover=True)
            client.drive()
        verdict, audit = _audit_verdict(cluster, client, triggered)

    elif site == "repl-drop":
        # count stays within the channel's retry budget: the doorbell
        # is lost, backed off, and redelivered — never surfaced.
        plan = InjectionPlan(seed).drop_repl_op(nth=1 + seed % 3, count=2)
        injector = arm(primary.image, plan)
        client.drive()
        triggered = injector.fired > 0
        verdict, audit = _audit_verdict(cluster, client, triggered)
        extra["repl_retries"] = cluster.shards[victim].channel.retries

    elif site == "stale-read":
        client.drive()
        owned = [
            key for key in sorted(client.acked)
            if cluster.map.owner(key) == victim
        ]
        cluster.kill_primary(victim)
        # Promote WITHOUT replay: the stale-read window is open.
        cluster.promote(victim, recover=False)
        for key in owned:
            client.get(key)
        client.drive()
        window = client.stale_reads
        extra["stale_window_reads"] = window
        extra["recover_report"] = cluster.recover_follower(victim)
        # Reload the serving store from the replayed journal and
        # audit: the window must be closed.
        verdict, audit = _audit_verdict(
            cluster, client, triggered=bool(owned)
        )
        if verdict == "no-acked-write-lost":
            verdict = "stale-read-window" if window else "not-triggered"

    elif site == "shard-join":
        client.drive()
        before_map = {
            key: cluster.map.owner(key) for key in client.acked
        }
        report = cluster.add_shard("s%d" % len(shards))
        extra["rebalance"] = report
        # A deliberately stale client: aim moved keys at their OLD
        # owner and require MOVED chasing to converge.
        moved_keys = [
            key for key, old in sorted(before_map.items())
            if cluster.map.owner(key) != old
        ]
        for key in moved_keys:
            client.get(key)
            client.pending[-1].forced_shard = before_map[key]
        client.drive()
        extra["moved_followed"] = client.moved
        verdict, audit = _audit_verdict(cluster, client, triggered=True)
        if verdict == "no-acked-write-lost":
            converged = not moved_keys or client.moved > 0
            verdict = "rebalance-converged" if converged else "acked-write-lost"

    else:
        raise ValueError(f"unknown cluster site {site!r}")

    cell = {
        "backend": backend,
        "site": site,
        "seed": seed,
        "verdict": verdict,
        "acked": len(client.acked),
        "client": client.stats(),
        "audit": audit,
        "shards": cluster.shard_report(),
        "replication_lag": cluster.replication_lag(),
        "victim": victim,
        "injected": injector.fired if injector is not None else 0,
    }
    if injector is not None:
        cell["events"] = [
            dataclasses.asdict(event) for event in injector.events
        ]
        injector.detach()
    cell.update(extra)
    for shard in cluster.shards.values():
        shard.primary.image.shutdown()
        if shard.follower is not None:
            shard.follower.image.shutdown()
    return cell


@dataclasses.dataclass
class ClusterCampaignResult:
    """Everything one cluster campaign produced."""

    seed: int
    schedules: int
    cells: list[dict]

    def matrix(self) -> dict[str, dict[str, str]]:
        """site → backend → worst verdict across schedules."""
        table: dict[str, dict[str, str]] = {}
        for cell in self.cells:
            row = table.setdefault(cell["site"], {})
            previous = row.get(cell["backend"])
            if previous is None or SEVERITY[cell["verdict"]] > SEVERITY[previous]:
                row[cell["backend"]] = cell["verdict"]
        return table

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "schedules": self.schedules,
            "matrix": self.matrix(),
            "cells": self.cells,
        }


def run_cluster_campaign(
    backends=DEFAULT_BACKENDS,
    sites=DEFAULT_SITES,
    schedules: int = 1,
    seed: int = 0,
    sets: int = 24,
    shards=DEFAULT_SHARDS,
) -> ClusterCampaignResult:
    """K seeded schedules per (cluster site × backend)."""
    cells = []
    for site in sites:
        for schedule in range(schedules):
            cell_seed = seed + 7919 * schedule
            for backend in backends:
                cells.append(
                    run_cluster_cell(
                        backend, site, cell_seed, sets=sets, shards=shards
                    )
                )
    return ClusterCampaignResult(seed=seed, schedules=schedules, cells=cells)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run a seeded cluster failure campaign"
    )
    parser.add_argument(
        "--backends",
        default=",".join(DEFAULT_BACKENDS),
        help="comma-separated isolation backends",
    )
    parser.add_argument(
        "--sites",
        default=",".join(DEFAULT_SITES),
        help="comma-separated cluster fault sites",
    )
    parser.add_argument("--schedules", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sets", type=int, default=24, metavar="N",
        help="seeded SETs per cell",
    )
    parser.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="shards in the initial cluster",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the result JSON ('-' = stdout)"
    )
    parser.add_argument(
        "--check",
        action="append",
        default=[],
        metavar="SITE",
        help="exit non-zero unless every selected backend earns SITE's "
        "expected verdict (CI assertion)",
    )
    args = parser.parse_args(argv)
    backends = tuple(b for b in args.backends.split(",") if b)
    sites = tuple(s for s in args.sites.split(",") if s)
    shards = tuple("s%d" % i for i in range(args.shards))
    result = run_cluster_campaign(
        backends=backends,
        sites=sites,
        schedules=args.schedules,
        seed=args.seed,
        sets=args.sets,
        shards=shards,
    )
    matrix = result.matrix()
    for site, row in matrix.items():
        for backend, verdict in row.items():
            print(f"{site:20s} x {backend:13s} -> {verdict}")
    if args.json:
        payload = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    failed = False
    if not result.cells:
        print("ERROR: campaign produced no cells", file=sys.stderr)
        failed = True
    for site in args.check:
        expected = EXPECTED.get(site)
        row = matrix.get(site, {})
        for backend in backends:
            verdict = row.get(backend)
            if verdict != expected:
                print(
                    f"ERROR: {backend} at {site}: verdict {verdict!r}, "
                    f"expected {expected!r}",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
