"""The cluster control plane: N durable redis shards behind one front end.

:class:`RedisCluster` builds one :class:`~repro.core.image.Image` per
shard (each a whole machine on the :class:`~repro.cluster.fabric.Fabric`),
wires consistent-hash routing into every shard's rediserver, and —
when ``replicate=True`` — pairs each primary with a follower machine
receiving the journal-before-ack write stream over a
:class:`~repro.cluster.replication.ReplicaChannel`.

Routing and fencing
    Each shard's rediserver gets a host-side router closure reading
    the *live* cluster state: a keyed command for a slot the shard
    does not own (per the current :class:`~repro.cluster.shardmap.ShardMap`)
    — or any command on a **fenced** node (an ex-primary demoted by
    failover) — answers ``-MOVED <slot> <owner>`` instead of
    executing.  Fencing is the split-brain guard: a revived old
    primary can never serve or ack a write for a shard that has moved
    on, because its router checks the cluster epoch on every command.

Failover
    :meth:`kill_primary` powers a node off mid-load;
    :meth:`promote` recovers the follower's journal into its store,
    starts serving on the follower machine, fences the dead primary,
    and bumps the cluster epoch.  Failover time (kill → follower
    serving) is measured on the follower's clock and recorded.

Rebalancing
    :meth:`add_shard` commits the new ring (only ~1/N of slots move),
    then migrates the moved keys by driving real RESP ``SET`` traffic
    over the fabric to the new owner.  Stale source copies become
    unreachable behind ``MOVED`` redirects and are dropped lazily.

Per-shard isolation profiles
    :func:`select_shard_profile` asks the existing explorer for the
    cheapest compartmentalisation meeting a requirement list, so a
    cluster can mix profiles — e.g. hardened shards for hot keys,
    flat shards for cold ones (``profile_requirements=...``).
"""

from __future__ import annotations

import dataclasses

from repro.apps import resp
from repro.cluster.fabric import Fabric, Link, Node
from repro.cluster.replication import ReplicaChannel
from repro.cluster.shardmap import ShardMap, slot_of
from repro.core.builder import build_image, library_defs
from repro.core.config import BuildConfig

#: The durable shard image (same layout as the recovery campaigns).
CLUSTER_LIBRARIES = ["libc", "netstack", "blk", "kv", "redis"]
CLUSTER_COMPARTMENTS = [
    ["netstack"],
    ["blk", "kv"],
    ["sched", "alloc", "libc", "redis"],
]
#: Volatile variant (throughput benchmarking without a journal).
VOLATILE_LIBRARIES = ["libc", "netstack", "redis"]
VOLATILE_COMPARTMENTS = [["netstack"], ["sched", "alloc", "libc", "redis"]]

PORT = 6379


def select_shard_profile(
    requirements: list[str],
    backend: str,
    libraries: list[str] | None = None,
) -> tuple[list[list[str]], str]:
    """Explorer-chosen compartment layout for one shard.

    Returns ``(compartments, effective_backend)`` — the cheapest
    deployment meeting ``requirements`` (backend downgraded to "none"
    when the pick is a single compartment, as elsewhere in the repo).
    """
    from repro.core.explorer import Explorer

    libs = list(libraries or CLUSTER_LIBRARIES)
    defs = library_defs(BuildConfig(libraries=libs))
    # ``isolated:<lib>`` requirements double as enumeration hints, or
    # the explorer would never visit a partition that satisfies them.
    isolate = tuple(
        req.split(":", 1)[1]
        for req in requirements
        if req.startswith("isolated:")
    )
    explorer = Explorer(defs, isolate=isolate)
    pick = explorer.best_performance_meeting(list(requirements))
    if pick is None:
        raise ValueError(
            f"no shard deployment satisfies requirements {requirements}"
        )
    groups = pick.compartments
    return groups, backend if len(groups) > 1 else "none"


@dataclasses.dataclass
class Shard:
    """One shard's machines and replication state."""

    name: str
    primary: Node
    follower: Node | None = None
    channel: ReplicaChannel | None = None
    #: The node currently serving client traffic for this shard.
    serving: Node = None  # type: ignore[assignment]
    #: Fenced node names (demoted ex-primaries; MOVED everything).
    fenced: set = dataclasses.field(default_factory=set)
    killed_at_ns: float | None = None
    failover_ns: float | None = None


class RedisCluster:
    """N durable redis shards on one fabric, with optional replication."""

    def __init__(
        self,
        shards: tuple[str, ...] | list[str] = ("s0", "s1", "s2"),
        backend: str = "none",
        durable: bool = True,
        replicate: bool = False,
        latency_ns: float = 5_000.0,
        flush_policy: str | None = "every-write",
        profile_requirements: list[str] | None = None,
        queue_edges: dict[str, str] | None = None,
    ) -> None:
        if replicate and not durable:
            raise ValueError("replication requires durable shards")
        self.backend = backend
        self.durable = durable
        self.replicate = replicate
        self.flush_policy = flush_policy
        self.queue_edges = dict(queue_edges or {})
        if profile_requirements is not None:
            self.compartments, self.backend = select_shard_profile(
                profile_requirements, backend
            )
        else:
            self.compartments = (
                CLUSTER_COMPARTMENTS if durable else VOLATILE_COMPARTMENTS
            )
        self.fabric = Fabric(latency_ns=latency_ns)
        self.map = ShardMap()
        #: Bumped on every topology change (failover, rebalance) —
        #: what a fenced node's router consults.
        self.epoch = 0
        self.shards: dict[str, Shard] = {}
        #: The attached smart client, if any (rebound on failover).
        self._client = None
        for name in shards:
            self.map.add(name)
            self._build_shard(name)
        self.epoch = self.map.epoch

    # --- construction -----------------------------------------------------

    def _build_image(self, label: str):
        from repro.apps.workload import start_redis
        from repro.libos.blk.blkdev import DiskMedium

        libraries = CLUSTER_LIBRARIES if self.durable else VOLATILE_LIBRARIES
        config = BuildConfig(
            libraries=list(libraries),
            compartments=[list(group) for group in self.compartments],
            backend=self.backend,
            name=label,
            queue_edges=dict(self.queue_edges),
        )
        image = build_image(config)
        medium = None
        if self.durable:
            medium = DiskMedium()
            image.lib("blk").attach_medium(medium)
            if self.flush_policy:
                image.call("kv", "set_flush_policy", self.flush_policy)
        return image, medium, start_redis

    def _build_shard(self, name: str) -> Shard:
        image, medium, start_redis = self._build_image(f"cluster:{name}:a")
        primary = self.fabric.add_node(f"{name}-a", image, PORT)
        primary.medium = medium
        start_redis(image, PORT)
        shard = Shard(name=name, primary=primary, serving=primary)
        self.shards[name] = shard
        image.lib("redis").set_cluster_router(self._router_for(name, primary))
        if self.replicate:
            follower_image, follower_medium, _ = self._build_image(
                f"cluster:{name}:b"
            )
            # The follower is not client-facing until promoted: it is
            # kept off the fabric's scheduling set, and its clock
            # advances with the replication stream.
            follower = Node(self.fabric, f"{name}-b", follower_image, PORT)
            follower.medium = follower_medium
            shard.follower = follower
            shard.channel = ReplicaChannel(
                primary,
                follower,
                Link(latency_ns=self.fabric.latency_ns, cost=image.machine.cost),
            )
            image.lib("redis").replicator = shard.channel
        return shard

    def _router_for(self, shard_name: str, node: Node):
        def router(key: bytes):
            shard = self.shards[shard_name]
            if node.name in shard.fenced:
                # Demoted ex-primary: everything redirects (the fence).
                return (slot_of(key), self.map.owner(key))
            owner = self.map.owner(key)
            if owner != shard_name:
                return (slot_of(key), owner)
            return None

        return router

    # --- lookup -----------------------------------------------------------

    def serving_node(self, shard_name: str) -> Node:
        return self.shards[shard_name].serving

    def attach_client(self, client) -> None:
        """Register the smart client's reply sink on every serving node."""
        self._client = client
        for shard in self.shards.values():
            shard.serving.client_sink = client.on_reply

    # --- failover ---------------------------------------------------------

    def kill_primary(self, shard_name: str) -> Node:
        """Power off the shard's serving node mid-load."""
        shard = self.shards[shard_name]
        node = shard.serving
        if node.name in self.fabric.nodes:
            self.fabric.kill(node.name)
        node.alive = False
        shard.fenced.add(node.name)
        shard.killed_at_ns = node.clock_ns
        self.epoch += 1
        if self._client is not None:
            self._client.abort_node(node.name)
        return node

    def promote(self, shard_name: str, recover: bool = True) -> dict:
        """Fail over to the follower; returns the recovery report.

        ``recover=False`` starts serving *without* replaying the
        journal — the stale-read window the campaign's ``stale-read``
        site measures; call :meth:`recover_follower` afterwards.
        """
        from repro.apps.workload import start_redis

        shard = self.shards[shard_name]
        if shard.follower is None:
            raise ValueError(f"shard {shard_name} has no follower")
        follower = shard.follower
        start_ns = follower.clock_ns
        report = {"durable": False, "restored": 0}
        if recover:
            report = follower.image.call("redis", "recover")
        start_redis(follower.image, PORT)
        follower.image.lib("redis").set_cluster_router(
            self._router_for(shard_name, follower)
        )
        follower.alive = True
        if follower.name not in self.fabric.nodes:
            self.fabric.nodes[follower.name] = follower
        shard.serving = follower
        self.epoch += 1
        shard.failover_ns = follower.clock_ns - start_ns
        if shard.killed_at_ns is not None:
            # Cluster-level failover time: from the kill on the old
            # primary's clock to serving-ready on the follower's.
            shard.failover_ns = max(
                shard.failover_ns, follower.clock_ns - shard.killed_at_ns
            )
        if self._client is not None:
            follower.client_sink = self._client.on_reply
            self._client.rebind()
        return report

    def recover_follower(self, shard_name: str) -> dict:
        """Replay the journal on an already-promoted follower."""
        shard = self.shards[shard_name]
        assert shard.follower is not None
        return shard.follower.image.call("redis", "recover")

    # --- rebalancing ------------------------------------------------------

    def add_shard(self, name: str) -> dict:
        """Join a new shard and migrate the slots it now owns.

        Returns the rebalance report: moved slots, migrated keys and
        bytes, and the simulated time the migration traffic took.
        """
        moved = self.map.add(name)
        shard = self._build_shard(name)
        self.epoch = self.map.epoch
        moved_slots = set(moved)
        # Collect the keys to move (control-plane scan: DMA reads, the
        # data plane below is real RESP traffic over the fabric).
        to_move: list[tuple[bytes, bytes]] = []
        for other_name, other in self.shards.items():
            if other_name == name:
                continue
            app = other.serving.image.lib("redis")
            for key in list(app._store):
                if slot_of(key) in moved_slots and self.map.owner(key) == name:
                    to_move.append((key, app.value_of(key)))
        started_ns = shard.serving.clock_ns
        migrated_bytes = 0
        if to_move:
            target_app = shard.serving.image.lib("redis")
            before = target_app.sets
            saved_sink = shard.serving.client_sink
            shard.serving.client_sink = None
            for key, value in to_move:
                payload = resp.encode_command(b"SET", key, value)
                migrated_bytes += len(payload)
                shard.serving.deliver(payload)
            self.fabric.run(
                until=lambda: target_app.sets >= before + len(to_move)
            )
            shard.serving.client_sink = saved_sink
        if self._client is not None:
            self._client.rebind()
        return {
            "shard": name,
            "moved_slots": sorted(moved_slots),
            "migrated_keys": len(to_move),
            "migrated_bytes": migrated_bytes,
            "migration_ns": shard.serving.clock_ns - started_ns,
            "epoch": self.epoch,
        }

    # --- reporting --------------------------------------------------------

    def shard_report(self) -> list[dict]:
        rows = []
        for name, shard in sorted(self.shards.items()):
            app = shard.serving.image.lib("redis")
            stats = app.redis_stats()
            row = {
                "shard": name,
                "serving": shard.serving.name,
                "alive": shard.serving.alive,
                "slots": len(self.map.slots_of(name)),
                "keys": shard.serving.image.call("redis", "dbsize"),
                "responses": stats["responses"],
                "redirects": stats["redirects"],
                "failover_ns": shard.failover_ns,
            }
            if shard.channel is not None:
                row["replication"] = shard.channel.stats()
            rows.append(row)
        return rows

    def replication_lag(self) -> dict:
        """Aggregated ``repl.lag_ns`` histogram stats across primaries."""
        count = 0
        total = 0.0
        peak = 0.0
        for shard in self.shards.values():
            metrics = shard.primary.image.machine.obs.metrics
            hist = metrics.histogram("repl.lag_ns")
            if hist.count:
                count += hist.count
                total += hist.total
                peak = max(peak, max(hist.values))
        return {
            "samples": count,
            "mean_ns": (total / count) if count else 0.0,
            "max_ns": peak,
        }

    def images(self) -> list:
        """Every machine in the cluster (for telemetry aggregation)."""
        rows = []
        for shard in self.shards.values():
            rows.append(shard.primary.image)
            if shard.follower is not None:
                rows.append(shard.follower.image)
        return rows
