"""Consistent-hash shard map: slots, ring placement, rebalance diffs.

Keys hash onto a fixed slot space (``NSLOTS``, like redis cluster's
16384 hash slots, scaled down for the simulation); slots map to shards
through a consistent-hash ring with virtual nodes, so a shard joining
or leaving moves only ~1/N of the slots instead of reshuffling
everything.  The map is versioned (:attr:`ShardMap.epoch`): every
mutation bumps the epoch, which is what routers and smart clients use
to notice they hold a stale view.

Everything here is pure and deterministic (crc32-based placement, no
randomness), so cluster campaigns replay bit-identically.
"""

from __future__ import annotations

import bisect
import zlib

#: Number of hash slots keys map onto (redis cluster: 16384).
NSLOTS = 64

#: Virtual nodes per shard on the ring: smooths slot distribution so a
#: three-shard cluster does not end up with one shard owning half the
#: slots.
VNODES = 32


def slot_of(key: bytes) -> int:
    """The hash slot a key belongs to (stable across processes)."""
    if isinstance(key, str):
        key = key.encode()
    return zlib.crc32(key) % NSLOTS


def _ring_point(label: str) -> int:
    return zlib.crc32(label.encode())


class ShardMap:
    """Slot → shard ownership via a consistent-hash ring."""

    def __init__(self, shards: tuple[str, ...] | list[str] = ()) -> None:
        self._shards: list[str] = []
        #: Sorted ring of (point, shard) virtual nodes.
        self._ring: list[tuple[int, str]] = []
        #: Cached slot → shard table, rebuilt on every ring change.
        self._slots: dict[int, str] = {}
        self.epoch = 0
        for shard in shards:
            self.add(shard)

    # --- membership -------------------------------------------------------

    @property
    def shards(self) -> list[str]:
        return list(self._shards)

    def add(self, shard: str) -> dict[int, tuple[str | None, str]]:
        """Add a shard; returns ``{slot: (old_owner, new_owner)}`` moved."""
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already in the map")
        before = dict(self._slots)
        self._shards.append(shard)
        for index in range(VNODES):
            point = _ring_point(f"{shard}#{index}")
            bisect.insort(self._ring, (point, shard))
        self._rebuild()
        return self._moved(before)

    def remove(self, shard: str) -> dict[int, tuple[str | None, str]]:
        """Remove a shard; returns the moved-slot diff."""
        if shard not in self._shards:
            raise ValueError(f"shard {shard!r} not in the map")
        before = dict(self._slots)
        self._shards.remove(shard)
        self._ring = [entry for entry in self._ring if entry[1] != shard]
        self._rebuild()
        return self._moved(before)

    def _rebuild(self) -> None:
        self._slots = {
            slot: self._owner_on_ring(slot) for slot in range(NSLOTS)
        }
        self.epoch += 1

    def _owner_on_ring(self, slot: int) -> str:
        if not self._ring:
            raise ValueError("shard map is empty")
        point = _ring_point(f"slot:{slot}")
        index = bisect.bisect_right(self._ring, (point, "\xff"))
        if index == len(self._ring):
            index = 0  # wrap: clockwise successor
        return self._ring[index][1]

    def _moved(self, before: dict[int, str]) -> dict[int, tuple[str | None, str]]:
        moved = {}
        for slot, owner in self._slots.items():
            old = before.get(slot)
            if old != owner:
                moved[slot] = (old, owner)
        return moved

    # --- lookup ------------------------------------------------------------

    def owner_of_slot(self, slot: int) -> str:
        return self._slots[slot]

    def owner(self, key: bytes) -> str:
        """The shard currently owning ``key``'s slot."""
        return self._slots[slot_of(key)]

    def slots_of(self, shard: str) -> list[int]:
        return [
            slot for slot, owner in sorted(self._slots.items())
            if owner == shard
        ]

    def assignments(self) -> dict[int, str]:
        """Copy of the full slot table (report/debug)."""
        return dict(self._slots)

    def counts(self) -> dict[str, int]:
        """Slots per shard — the balance report."""
        counts = {shard: 0 for shard in self._shards}
        for owner in self._slots.values():
            counts[owner] += 1
        return counts
