"""Sharded, replicated redis cluster on a multi-machine fabric.

- :mod:`repro.cluster.shardmap` — consistent-hash slots and rebalance
  diffs;
- :mod:`repro.cluster.fabric` — inter-machine links and conservative
  multi-clock stepping;
- :mod:`repro.cluster.replication` — primary→follower journal
  streaming with vm-rpc doorbell discipline;
- :mod:`repro.cluster.cluster` — the control plane (routing, fencing,
  failover, rebalancing);
- :mod:`repro.cluster.client` — the smart client and acked-write
  ground truth;
- :mod:`repro.cluster.campaign` — seeded failure campaigns with
  cluster-level verdicts.
"""

from repro.cluster.client import ClusterClient, verify_acked
from repro.cluster.cluster import RedisCluster, select_shard_profile
from repro.cluster.fabric import Fabric, Link, Node
from repro.cluster.replication import ReplicaChannel, ReplicationTimeout
from repro.cluster.shardmap import NSLOTS, ShardMap, slot_of

__all__ = [
    "NSLOTS",
    "ClusterClient",
    "Fabric",
    "Link",
    "Node",
    "RedisCluster",
    "ReplicaChannel",
    "ReplicationTimeout",
    "ShardMap",
    "select_shard_profile",
    "slot_of",
    "verify_acked",
]
