"""The metrics registry: counters, gauges, histograms, crossing edges.

One registry per simulated CPU.  It subsumes the ad-hoc statistics the
reproduction grew organically — the CPU's flat ``stats`` dict *is* the
registry's counter table (``cpu.bump`` writes through
:meth:`MetricsRegistry.inc`), and every gate's per-edge crossing count
lives in an :class:`EdgeStats` keyed by the caller→callee edge — so the
crossing heat-matrix the paper's Fig. 5 diagnosis needs falls out of
:meth:`MetricsRegistry.crossing_matrix` without any extra
instrumentation.

Histograms record simulated-time (or size) observations and summarise
them with the same nearest-rank percentiles the benchmark suite uses.
Everything here is host-side bookkeeping: no method ever charges the
simulated clock, so metrics can stay always-on without perturbing
measured timings.
"""

from __future__ import annotations

import dataclasses

from repro.perf.meter import percentile


@dataclasses.dataclass
class Gauge:
    """A last-value-wins metric (queue depths, heap usage)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Observation series with nearest-rank percentile summaries."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, fraction: float) -> float:
        return percentile(self.values, fraction)

    def summary(self) -> dict[str, float]:
        """Count/min/max/mean plus p50/p90/p99."""
        if not self.values:
            return {"count": 0}
        return {
            "count": len(self.values),
            "sum": self.total,
            "min": min(self.values),
            "max": max(self.values),
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


@dataclasses.dataclass
class EdgeStats:
    """Per caller→callee channel accounting (one per linked edge)."""

    caller: str
    callee: str
    kind: str
    crossings: int = 0


class MetricsRegistry:
    """All metrics of one simulated machine, behind one API.

    - :attr:`counters` is a plain dict so the CPU can expose it as its
      legacy ``stats`` attribute;
    - gauges and histograms are created on first use;
    - edges are registered by gates at link time and keyed by
      ``(caller, callee, kind)`` so replicated channels of different
      kinds never alias.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        #: Optional zero-arg hook invoked before any counter read
        #: (:meth:`counter`, :meth:`snapshot`).  The CPU points it at
        #: its ``flush_accounting`` so deferred memory-op deltas are
        #: folded in before anyone observes the table.
        self._pre_read: "Callable[[], None] | None" = None
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._edges: dict[tuple[str, str, str], EdgeStats] = {}
        #: When set, boundary gates record each crossing's simulated
        #: duration into the per-edge latency histogram (see
        #: :meth:`edge_latency`).  Off by default: the observations are
        #: host-side only (never charge the clock), but appending one
        #: float per crossing is not free host time, so only profiling
        #: sessions (:mod:`repro.obs.profile`) pay for it.
        self._record_edge_latency = False
        #: Optional zero-arg hook fired when :attr:`record_edge_latency`
        #: flips — the machine's Observability bumps its epoch so gate
        #: crossing plans re-resolve (exploration registries leave it
        #: unset).
        self._on_obs_toggle: "Callable[[], None] | None" = None

    @property
    def record_edge_latency(self) -> bool:
        return self._record_edge_latency

    @record_edge_latency.setter
    def record_edge_latency(self, value: bool) -> None:
        self._record_edge_latency = bool(value)
        if self._on_obs_toggle is not None:
            self._on_obs_toggle()

    # --- counters ----------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment a named counter (the ``cpu.bump`` write path)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never bumped)."""
        if self._pre_read is not None:
            self._pre_read()
        return self.counters.get(name, 0.0)

    # --- gauges / histograms ----------------------------------------------

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    # --- edges -----------------------------------------------------------

    def edge(self, caller: str, callee: str, kind: str) -> EdgeStats:
        """The shared accounting record for one channel edge."""
        key = (caller, callee, kind)
        edge = self._edges.get(key)
        if edge is None:
            edge = self._edges[key] = EdgeStats(caller, callee, kind)
        return edge

    def edge_counts(self) -> dict[tuple[str, str, str], int]:
        """Raw crossing counts keyed by (caller, callee, kind).

        Includes zero-crossing edges (every registered channel), so a
        profiling session can snapshot a baseline and compute exact
        deltas even for edges that were already hot before it started.
        """
        return {key: edge.crossings for key, edge in self._edges.items()}

    def edge_latency(self, caller: str, callee: str) -> Histogram:
        """Per-edge crossing-latency histogram (simulated ns).

        Lives in the ordinary histogram table under
        ``gate.latency_ns:caller->callee`` so snapshots and profile
        artifacts pick it up without extra plumbing.  All channel kinds
        on the edge share one histogram — matching
        :meth:`crossing_matrix`'s caller→callee granularity.
        """
        return self.histogram(f"gate.latency_ns:{caller}->{callee}")

    def edges_report(self) -> list[dict]:
        """Used edges as dict rows, busiest first.

        Fully deterministic: ties on the crossing count break by
        (caller, callee, kind), never by registration order, so two
        runs of the same workload emit byte-identical reports and
        profile JSONs diff cleanly.
        """
        rows = [
            {
                "caller": edge.caller,
                "callee": edge.callee,
                "kind": edge.kind,
                "crossings": edge.crossings,
            }
            for edge in self._edges.values()
            if edge.crossings
        ]
        rows.sort(
            key=lambda row: (
                -row["crossings"],
                row["caller"],
                row["callee"],
                row["kind"],
            )
        )
        return rows

    def crossing_matrix(self) -> dict[str, dict[str, int]]:
        """caller → callee → crossings (all channel kinds summed).

        Rows and columns are emitted in sorted order, so the matrix —
        and anything serialised from it — is stable across runs
        regardless of channel registration order.
        """
        totals: dict[tuple[str, str], int] = {}
        for edge in self._edges.values():
            if not edge.crossings:
                continue
            key = (edge.caller, edge.callee)
            totals[key] = totals.get(key, 0) + edge.crossings
        matrix: dict[str, dict[str, int]] = {}
        for caller, callee in sorted(totals):
            matrix.setdefault(caller, {})[callee] = totals[(caller, callee)]
        return matrix

    # --- export / lifecycle -----------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready copy of everything the registry holds."""
        if self._pre_read is not None:
            self._pre_read()
        return {
            "counters": dict(self.counters),
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
            "edges": self.edges_report(),
            "crossing_matrix": self.crossing_matrix(),
        }

    def reset(self) -> None:
        """Clear every metric (edges keep their identity, zeroed)."""
        self.counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        for edge in self._edges.values():
            edge.crossings = 0


#: Process-wide registry for the design-space exploration pipeline.
#: Unlike the per-machine registries (one per simulated CPU), the
#: explorer, the coloring memo, and the persistent perf cache run on
#: the *host* across many candidate images, so their bookkeeping —
#: cache hits/misses, image-build counts, per-phase host timings —
#: lives in one shared registry that reports and benchmarks can
#: snapshot after a run.
_EXPLORATION = MetricsRegistry()


def exploration_metrics() -> MetricsRegistry:
    """The shared exploration-pipeline registry (see note above)."""
    return _EXPLORATION
