"""The span tracer: Chrome-trace-shaped events on the simulated clock.

Timestamps come from the simulated CPU clock, so a trace is a faithful
picture of *simulated* time — where gate crossings, scheduler quanta,
and allocator calls land relative to each other — not of host time.
Recording never charges the clock, and every hook is guarded by
:attr:`Tracer.enabled`, so a disabled tracer is a no-op and an enabled
one changes no simulated timing either.

Tracks: each simulated thread gets its own track (Chrome ``tid``), so
spans opened by a thread before it blocks close correctly after it
resumes — other threads' events land on other tracks in between.  Track
``HOST_TRACK`` carries host-side/boot activity; ``SCHED_TRACK`` carries
the scheduler's per-quantum slices.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

#: Track for host-side activity (boot, harness calls).
HOST_TRACK = 0
#: Track for scheduler quantum slices (kept clear of thread tids).
SCHED_TRACK = 1_000_000


class Tracer:
    """Records trace events against a simulated-nanosecond clock.

    Events are stored as dicts in (roughly) Chrome trace-event shape
    with ``ts``/``dur`` in simulated **nanoseconds**; the exporter
    converts to the microseconds the format specifies.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._enabled = False
        #: Optional zero-arg hook fired whenever :attr:`enabled` flips.
        #: The machine's :class:`~repro.obs.Observability` points it at
        #: its epoch bump so precompiled gate crossing plans know to
        #: re-resolve their recorder lists.
        self._on_toggle: Callable[[], None] | None = None
        self.events: list[dict] = []
        self.track_names: dict[int, str] = {
            HOST_TRACK: "host",
            SCHED_TRACK: "scheduler",
        }
        self._track = HOST_TRACK
        #: Per-track stack of open (name, cat) spans.
        self._open: dict[int, list[tuple[str, str]]] = {}

    # --- lifecycle ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        if self._on_toggle is not None:
            self._on_toggle()

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop all recorded events and open-span bookkeeping."""
        self.events.clear()
        self._open.clear()
        self._track = HOST_TRACK

    @property
    def now_ns(self) -> float:
        """Current simulated time."""
        return self._clock()

    # --- tracks -----------------------------------------------------------

    def set_track(self, tid: int, name: str | None = None) -> None:
        """Route subsequent events to track ``tid`` (a simulated thread)."""
        if not self.enabled:
            return
        self._track = tid
        if name is not None:
            self.track_names[tid] = name

    @property
    def current_track(self) -> int:
        return self._track

    # --- events -----------------------------------------------------------

    def begin(self, name: str, cat: str, track: int | None = None, **args) -> None:
        """Open a span on the (current) track."""
        if not self.enabled:
            return
        tid = self._track if track is None else track
        self._open.setdefault(tid, []).append((name, cat))
        event = {"name": name, "cat": cat, "ph": "B", "ts": self._clock(), "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def end(self, track: int | None = None, **args) -> None:
        """Close the most recent open span on the (current) track."""
        if not self.enabled:
            return
        tid = self._track if track is None else track
        stack = self._open.get(tid)
        if not stack:
            raise RuntimeError(f"tracer: end() with no open span on track {tid}")
        name, cat = stack.pop()
        event = {"name": name, "cat": cat, "ph": "E", "ts": self._clock(), "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def complete(
        self,
        name: str,
        cat: str,
        start_ns: float,
        track: int | None = None,
        **args,
    ) -> None:
        """Record a finished span from ``start_ns`` to now (phase X)."""
        if not self.enabled:
            return
        tid = self._track if track is None else track
        now = self._clock()
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start_ns,
            "dur": max(0.0, now - start_ns),
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, name: str, cat: str, track: int | None = None, **args) -> None:
        """Record a point-in-time event."""
        if not self.enabled:
            return
        tid = self._track if track is None else track
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self._clock(),
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name: str, values: dict[str, float], track: int | None = None) -> None:
        """Record a counter sample (rendered as a stacked area track)."""
        if not self.enabled:
            return
        tid = self._track if track is None else track
        self.events.append(
            {
                "name": name,
                "ph": "C",
                "ts": self._clock(),
                "tid": tid,
                "args": dict(values),
            }
        )

    @contextlib.contextmanager
    def span(self, name: str, cat: str, **args) -> Iterator[None]:
        """Context manager sugar around :meth:`begin`/:meth:`end`."""
        if not self.enabled:
            yield
            return
        self.begin(name, cat, **args)
        try:
            yield
        finally:
            self.end()

    # --- introspection ------------------------------------------------------

    def open_spans(self) -> list[tuple[int, str, str]]:
        """Spans begun but not yet ended, innermost last per track.

        Gates close their spans even when a thread is destroyed while
        parked inside them (``GeneratorExit`` unwinds every
        ``invoke_gen`` frame), so after a clean kill this should be
        empty.  The exporter still auto-closes any stragglers at export
        time so the JSON stays balanced regardless.
        """
        return [
            (tid, name, cat)
            for tid, stack in self._open.items()
            for name, cat in stack
        ]
