"""Exporters: Chrome trace-event JSON and metrics dumps.

``chrome_trace`` produces the JSON Object Format of the Trace Event
specification — load the file in ``chrome://tracing`` or
https://ui.perfetto.dev to see gate crossings, scheduler quanta, and
allocator traffic laid out on the simulated timeline, one track per
simulated thread.

``validate_chrome_trace`` is the schema checker the test-suite (and any
pipeline consuming traces) uses: required keys per phase, balanced
begin/end pairs per track, monotonic timestamps.
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

#: Single simulated machine == single "process" in the trace.
TRACE_PID = 1

#: Event phases the exporter emits / the validator accepts.
_PHASES = {"B", "E", "X", "i", "I", "C", "M"}


def chrome_trace(tracer: Tracer) -> dict:
    """Render a tracer's events as a Chrome trace-event JSON object.

    Timestamps convert from simulated ns to the format's µs.  Spans
    still open (threads killed mid-crossing) are closed at the current
    clock so every ``B`` has its ``E``.
    """
    events: list[dict] = []
    for tid, name in sorted(tracer.track_names.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for event in tracer.events:
        out = dict(event)
        out["pid"] = TRACE_PID
        out["ts"] = event["ts"] / 1e3
        if "dur" in event:
            out["dur"] = event["dur"] / 1e3
        events.append(out)
    # Balance any spans left open (e.g. threads destroyed while parked
    # inside a gate: the gate's exit never runs, by design).
    now_us = tracer.now_ns / 1e3
    for tid, name, cat in reversed(tracer.open_spans()):
        events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "E",
                "ts": now_us,
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"auto_closed": True},
            }
        )
    # Complete (X) events are recorded at their *end* time with an
    # earlier ts; a stable sort puts every event in timestamp order
    # without reordering same-ts begin/end pairs.
    events.sort(key=lambda event: event.get("ts", float("-inf")))
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(tracer: Tracer, path: str | pathlib.Path) -> pathlib.Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(chrome_trace(tracer)))
    return path


def validate_chrome_trace(data: dict) -> list[str]:
    """Schema-check a trace object; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["top level must be an object with a traceEvents list"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    stacks: dict[int, list[str]] = {}
    last_ts: dict[int, float] = {}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            errors.append(f"{where}: bad phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing name")
        if "pid" not in event or "tid" not in event:
            errors.append(f"{where}: missing pid/tid")
            continue
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing ts")
            continue
        tid = event["tid"]
        if ts < last_ts.get(tid, 0.0):
            errors.append(f"{where}: ts moves backwards on track {tid}")
        last_ts[tid] = ts
        if phase == "B":
            stacks.setdefault(tid, []).append(event.get("name", ""))
        elif phase == "E":
            stack = stacks.get(tid)
            if not stack:
                errors.append(f"{where}: E without matching B on track {tid}")
            else:
                stack.pop()
        elif phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                errors.append(f"{where}: X event needs a non-negative dur")
    for tid, stack in stacks.items():
        if stack:
            errors.append(f"track {tid}: {len(stack)} unclosed span(s): {stack}")
    return errors


def metrics_json(metrics: MetricsRegistry, clock_ns: float | None = None) -> dict:
    """A registry snapshot, optionally stamped with the simulated clock."""
    snapshot = metrics.snapshot()
    if clock_ns is not None:
        snapshot["clock_ns"] = clock_ns
    return snapshot


def write_metrics_json(
    metrics: MetricsRegistry,
    path: str | pathlib.Path,
    clock_ns: float | None = None,
) -> pathlib.Path:
    """Serialise :func:`metrics_json` to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(metrics_json(metrics, clock_ns), indent=2))
    return path
