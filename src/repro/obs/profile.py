"""Workload profiles: the measured artifact that closes the loop.

FlexOS's full-paper direction is *automated* exploration driven by real
measurements: profile a workload once, feed the measured caller→callee
crossing frequencies back into the explorer, and let it propose a
cheaper compartmentalization for what the workload actually does (the
ROADMAP's "profile-guided re-compartmentalization" item).

This module defines the artifact that crosses that loop:

- :class:`WorkloadProfile` — a schema-versioned, JSON-persistable
  record of one profiled run: per-edge crossing counts (delta over the
  capture window), per-edge gate-latency histogram summaries,
  per-compartment simulated-CPU and allocation shares, plus the
  workload descriptor (name, parameters, seed, libraries, backend,
  layout) needed to reproduce and to re-explore;
- :func:`capture_profile` — a context manager that brackets a live run
  on an :class:`~repro.core.image.Image`; everything it records is
  host-side bookkeeping over the simulated clock, so a profiled run is
  **bit-identical** to an unprofiled one.

Consumers: :func:`repro.core.explorer.profiled_cost_fn` turns a profile
into a measured cost estimator; ``tools/profile.py`` is the CLI
(capture / recommend / diff); ``tools/report.py --profile`` saves one
alongside a report.

Determinism: every dict in the artifact is emitted in sorted order and
the edge list uses :meth:`MetricsRegistry.edges_report` ordering, so
the same seeded run always serialises to the same bytes and
:meth:`WorkloadProfile.profile_hash` is a stable identity (used by the
perf cache to keep profile-guided scores apart from static ones).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import TYPE_CHECKING, Iterator

from repro.obs.metrics import Histogram

if TYPE_CHECKING:
    from repro.core.image import Image

#: Bump on any incompatible change to the artifact layout.  Loading a
#: profile with a different schema raises :class:`ProfileError` — a
#: stale profile silently misranking deployments would defeat the whole
#: point of measuring.
SCHEMA_VERSION = 1

#: Prefix of the per-edge latency histograms in the metrics registry.
_LATENCY_PREFIX = "gate.latency_ns:"

#: Prefix of the per-heap allocation-size histograms.
_ALLOC_PREFIX = "alloc.bytes:"


class ProfileError(ValueError):
    """A profile artifact is malformed, unreadable, or wrong-schema."""


@dataclasses.dataclass
class WorkloadProfile:
    """One profiled workload run, ready to persist and to re-explore.

    All measured quantities are **deltas over the capture window**, so
    profiles taken after warm-up phases exclude them.
    """

    #: Workload descriptor: the name (``redis``, ``iperf``, ...) plus
    #: free-form parameters (request counts, payload sizes, ...).
    workload: str
    params: dict
    #: Seed of the run, when the workload was seeded (``None`` = n/a).
    seed: int | None
    #: Isolation backend the profiled image ran under.
    backend: str
    #: Libraries of the profiled config (without implicit sched/alloc),
    #: so a recommender can rebuild the same library set.
    libraries: list[str]
    #: Compartment layout of the profiled image (library name groups).
    compartments: list[list[str]]
    #: Simulated nanoseconds elapsed inside the capture window.
    elapsed_ns: float
    #: Per-edge crossing counts: rows of
    #: ``{caller, callee, kind, crossings}``, busiest first
    #: (deterministic tie-breaks; see ``MetricsRegistry.edges_report``).
    edges: list[dict]
    #: ``"caller->callee"`` → latency-histogram summary (simulated ns)
    #: for crossings completed inside the window.
    gate_latency_ns: dict[str, dict]
    #: Compartment name → simulated ns attributed to it in the window.
    cpu_time_ns: dict[str, float]
    #: Heap name → bytes allocated from it during the window.
    alloc_bytes: dict[str, float]
    #: Selected counter deltas (``gate_crossings``, ``vm_rpcs``, ...).
    counters: dict[str, float]
    schema: int = SCHEMA_VERSION

    # --- derived views ------------------------------------------------------

    def crossing_matrix(self) -> dict[str, dict[str, int]]:
        """caller → callee → crossings (kinds summed, sorted keys)."""
        totals: dict[tuple[str, str], int] = {}
        for row in self.edges:
            key = (row["caller"], row["callee"])
            totals[key] = totals.get(key, 0) + row["crossings"]
        matrix: dict[str, dict[str, int]] = {}
        for caller, callee in sorted(totals):
            matrix.setdefault(caller, {})[callee] = totals[(caller, callee)]
        return matrix

    def edge_items(self) -> Iterator[tuple[str, str, int]]:
        """(caller, callee, crossings) triples, kinds summed."""
        for caller, row in self.crossing_matrix().items():
            for callee, crossings in row.items():
                yield caller, callee, crossings

    @property
    def total_crossings(self) -> int:
        """All boundary-and-direct crossings measured in the window."""
        return sum(row["crossings"] for row in self.edges)

    def lib_cpu_time_ns(self) -> dict[str, float]:
        """Per-library simulated-time share (compartment time split
        evenly among the compartment's members).

        The CPU attributes time to protection domains, not libraries;
        an even split inside each compartment is the best the
        measurement offers and is plenty for weighting SH overheads by
        where the workload actually burns cycles.  Domain names are the
        "+"-joined member list (shared libraries mapped into several
        compartments only appear in the domain that owns them), so the
        name itself is the membership record.
        """
        shares: dict[str, float] = {}
        for name, ns in self.cpu_time_ns.items():
            members = name.split("+")
            for member in members:
                shares[member] = shares.get(member, 0.0) + ns / len(members)
        return dict(sorted(shares.items()))

    # --- identity / persistence ---------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; every mapping in sorted-key order."""
        return {
            "schema": self.schema,
            "workload": self.workload,
            "params": {k: self.params[k] for k in sorted(self.params)},
            "seed": self.seed,
            "backend": self.backend,
            "libraries": list(self.libraries),
            "compartments": [list(group) for group in self.compartments],
            "elapsed_ns": self.elapsed_ns,
            "edges": [dict(row) for row in self.edges],
            "gate_latency_ns": {
                edge: dict(summary)
                for edge, summary in sorted(self.gate_latency_ns.items())
            },
            "cpu_time_ns": dict(sorted(self.cpu_time_ns.items())),
            "alloc_bytes": dict(sorted(self.alloc_bytes.items())),
            "counters": dict(sorted(self.counters.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadProfile":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        if not isinstance(data, dict):
            raise ProfileError("profile artifact must be a JSON object")
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ProfileError(
                f"profile schema {schema!r} unsupported "
                f"(expected {SCHEMA_VERSION}); re-capture the profile"
            )
        required = {
            field.name for field in dataclasses.fields(cls)
        } - {"schema"}
        missing = required - set(data)
        if missing:
            raise ProfileError(f"profile missing keys: {sorted(missing)}")
        return cls(
            workload=data["workload"],
            params=dict(data["params"]),
            seed=data["seed"],
            backend=data["backend"],
            libraries=list(data["libraries"]),
            compartments=[list(group) for group in data["compartments"]],
            elapsed_ns=float(data["elapsed_ns"]),
            edges=[dict(row) for row in data["edges"]],
            gate_latency_ns={
                edge: dict(summary)
                for edge, summary in data["gate_latency_ns"].items()
            },
            cpu_time_ns={
                name: float(ns) for name, ns in data["cpu_time_ns"].items()
            },
            alloc_bytes={
                name: float(b) for name, b in data["alloc_bytes"].items()
            },
            counters={
                name: float(v) for name, v in data["counters"].items()
            },
            schema=SCHEMA_VERSION,
        )

    def dumps(self) -> str:
        """Canonical JSON text (byte-stable for identical profiles)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str | os.PathLike) -> pathlib.Path:
        """Persist to ``path``; returns the written path."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.dumps() + "\n")
        return target

    @classmethod
    def load(cls, path: str | os.PathLike) -> "WorkloadProfile":
        """Load and validate a persisted profile."""
        try:
            data = json.loads(pathlib.Path(path).read_text())
        except OSError as exc:
            raise ProfileError(f"cannot read profile {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ProfileError(f"profile {path} is not JSON: {exc}") from exc
        return cls.from_dict(data)

    def profile_hash(self) -> str:
        """Stable short content hash — the estimator identity.

        Two captures of the same seeded workload hash identically;
        any measured difference (different workload, seed, layout, or
        counts) yields a different hash, so cache keys derived from it
        can never alias across profiles.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    def describe(self, top: int = 8) -> str:
        """Human-readable one-screen summary (busiest edges first)."""
        lines = [
            f"profile {self.profile_hash()}: workload={self.workload} "
            f"backend={self.backend} elapsed={self.elapsed_ns / 1e6:.3f} ms "
            f"crossings={self.total_crossings}",
        ]
        for row in self.edges[:top]:
            latency = self.gate_latency_ns.get(
                f"{row['caller']}->{row['callee']}", {}
            )
            p50 = latency.get("p50")
            suffix = f"  p50 {p50:.0f} ns" if p50 is not None else ""
            lines.append(
                f"  {row['caller']:>10s} -> {row['callee']:<10s} "
                f"[{row['kind']:12s}] {row['crossings']:8d}{suffix}"
            )
        return "\n".join(lines)


class ProfileCapture:
    """Bracketing state for one capture window (see
    :func:`capture_profile`).  ``profile`` is populated on exit."""

    def __init__(
        self,
        image: "Image",
        workload: str,
        params: dict | None,
        seed: int | None,
    ) -> None:
        self.image = image
        self.workload = workload
        self.params = dict(params or {})
        self.seed = seed
        self.profile: WorkloadProfile | None = None
        self._baseline: dict | None = None
        self._prev_attribute_time = False
        self._prev_record_latency = False

    # --- window bracketing --------------------------------------------------

    def __enter__(self) -> "ProfileCapture":
        cpu = self.image.machine.cpu
        metrics = self.image.machine.obs.metrics
        self._prev_attribute_time = cpu.attribute_time
        self._prev_record_latency = metrics.record_edge_latency
        cpu.attribute_time = True
        metrics.record_edge_latency = True
        self._baseline = {
            "clock_ns": cpu.clock_ns,
            "edges": metrics.edge_counts(),
            "counters": dict(metrics.counters),
            "cpu_time_ns": dict(cpu.domain_time_ns),
            "alloc": self._alloc_totals(),
            "latency_counts": self._latency_counts(),
        }
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        cpu = self.image.machine.cpu
        metrics = self.image.machine.obs.metrics
        cpu.attribute_time = self._prev_attribute_time
        metrics.record_edge_latency = self._prev_record_latency
        if exc_type is None:
            self.profile = self._build_profile()

    # --- measurement helpers ------------------------------------------------

    def _histograms(self, prefix: str) -> dict[str, Histogram]:
        metrics = self.image.machine.obs.metrics
        return {
            name: hist
            for name, hist in metrics._histograms.items()
            if name.startswith(prefix)
        }

    def _alloc_totals(self) -> dict[str, float]:
        """Bytes allocated per heap so far (histogram running sums)."""
        return {
            name[len(_ALLOC_PREFIX):]: hist.total
            for name, hist in self._histograms(_ALLOC_PREFIX).items()
        }

    def _latency_counts(self) -> dict[str, int]:
        """Observation counts per latency histogram (delta baseline)."""
        return {
            name: hist.count
            for name, hist in self._histograms(_LATENCY_PREFIX).items()
        }

    def _build_profile(self) -> WorkloadProfile:
        image = self.image
        metrics = image.machine.obs.metrics
        baseline = self._baseline
        assert baseline is not None

        edge_base = baseline["edges"]
        rows = []
        for (caller, callee, kind), total in metrics.edge_counts().items():
            delta = total - edge_base.get((caller, callee, kind), 0)
            if delta:
                rows.append(
                    {
                        "caller": caller,
                        "callee": callee,
                        "kind": kind,
                        "crossings": delta,
                    }
                )
        rows.sort(
            key=lambda row: (
                -row["crossings"],
                row["caller"],
                row["callee"],
                row["kind"],
            )
        )

        latency: dict[str, dict] = {}
        latency_base = baseline["latency_counts"]
        for name, hist in sorted(self._histograms(_LATENCY_PREFIX).items()):
            fresh = hist.values[latency_base.get(name, 0):]
            if not fresh:
                continue
            window = Histogram(name)
            window.values = fresh
            latency[name[len(_LATENCY_PREFIX):]] = window.summary()

        cpu_base = baseline["cpu_time_ns"]
        cpu_time = {
            name: ns - cpu_base.get(name, 0.0)
            for name, ns in image.machine.cpu.domain_time_ns.items()
            if ns - cpu_base.get(name, 0.0) > 0
        }

        alloc_base = baseline["alloc"]
        alloc = {
            name: total - alloc_base.get(name, 0.0)
            for name, total in self._alloc_totals().items()
            if total - alloc_base.get(name, 0.0) > 0
        }

        counter_base = baseline["counters"]
        counters = {
            name: value - counter_base.get(name, 0.0)
            for name, value in metrics.counters.items()
            if value - counter_base.get(name, 0.0) != 0
        }

        return WorkloadProfile(
            workload=self.workload,
            params=self.params,
            seed=self.seed,
            backend=image.config.backend,
            libraries=list(image.config.libraries),
            compartments=[
                list(compartment.library_names())
                for compartment in image.compartments
            ],
            elapsed_ns=image.machine.cpu.clock_ns - baseline["clock_ns"],
            edges=rows,
            gate_latency_ns=latency,
            cpu_time_ns=dict(sorted(cpu_time.items())),
            alloc_bytes=dict(sorted(alloc.items())),
            counters=dict(sorted(counters.items())),
        )


def capture_profile(
    image: "Image",
    workload: str,
    params: dict | None = None,
    seed: int | None = None,
) -> ProfileCapture:
    """Profile everything run inside the ``with`` block::

        with capture_profile(image, "redis", {"requests": 300}) as cap:
            run_redis_phase(image, payloads)
        cap.profile.save("profile.json")

    Recording is pure host-side bookkeeping (crossing deltas, latency
    samples, time-attribution), so the simulated run inside the window
    is bit-identical to the same run without the capture — a test
    asserts this.  Captures may nest a warm-up phase outside the
    window; only in-window activity lands in the profile.
    """
    return ProfileCapture(image, workload, params, seed)
