"""repro.obs — compartment-aware tracing and metrics.

The observability layer the isolation explorer reports through: a span
:class:`~repro.obs.tracer.Tracer` driven by the simulated clock (gate
crossings, scheduler quanta, allocator calls, netstack batches) and a
:class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
simulated-time histograms, caller→callee crossing edges), with
exporters for Chrome trace-event JSON and machine-readable metrics.

Every :class:`~repro.machine.machine.Machine` owns an
:class:`Observability` instance as ``machine.obs``.  The tracer starts
disabled; recording never charges the simulated clock, so enabling it
changes no measured timing and disabling it is a pure no-op.

Quick start::

    image = build_image(config)
    image.machine.obs.tracer.enable()
    run_iperf(image, 1024, 1 << 18)
    write_chrome_trace(image.machine.obs.tracer, "trace.json")
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace,
    metrics_json,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    EdgeStats,
    Gauge,
    Histogram,
    MetricsRegistry,
    exploration_metrics,
)
from repro.obs.profile import (
    ProfileCapture,
    ProfileError,
    WorkloadProfile,
    capture_profile,
)
from repro.obs.tracer import HOST_TRACK, SCHED_TRACK, Tracer

__all__ = [
    "EdgeStats",
    "Gauge",
    "HOST_TRACK",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ProfileCapture",
    "ProfileError",
    "SCHED_TRACK",
    "Tracer",
    "WorkloadProfile",
    "capture_profile",
    "chrome_trace",
    "exploration_metrics",
    "metrics_json",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
]


class Observability:
    """One machine's tracer + metrics, bundled for easy wiring.

    The registry is shared with the CPU (``cpu.metrics``) so counters
    bumped anywhere in the simulation are visible here; the tracer reads
    the CPU's simulated clock.
    """

    def __init__(self, cpu) -> None:
        self.metrics: MetricsRegistry = cpu.metrics
        self.tracer = Tracer(clock=lambda: cpu.clock_ns)
        # Give the CPU its hook point (wrpkru instants, etc.).
        cpu.tracer = self.tracer
        #: Monotonic generation counter for observability toggles.
        #: Precompiled gate crossing plans cache which recorders
        #: (tracer spans, edge-latency histograms) are live and only
        #: re-resolve when this epoch moves — one int compare per
        #: crossing instead of re-checking every hook.
        self.epoch = 0
        self.tracer._on_toggle = self._bump_epoch
        self.metrics._on_obs_toggle = self._bump_epoch

    def _bump_epoch(self) -> None:
        self.epoch += 1
