"""Intel Memory Protection Keys (MPK) semantics.

MPK tags each page with one of 16 protection keys; the per-thread PKRU
register holds, for each key, an Access-Disable (AD) and Write-Disable
(WD) bit.  Loads fault if AD is set for the page's key; stores fault if
AD or WD is set.  Because WRPKRU is unprivileged, any compartment could
rewrite PKRU — FlexOS gates are the only code that legitimately does,
and the reproduction enforces that via :class:`repro.machine.cpu.CPU`
context discipline (see the paper's discussion of static analysis /
runtime checks / page-table sealing to police rogue WRPKRU).
"""

from __future__ import annotations

from typing import Iterable

#: Number of protection keys (x86 MPK provides 16).
MPK_NUM_KEYS = 16

#: The default key assigned to pages that were never tagged.
PKEY_DEFAULT = 0

_AD = 0b01  # access disable
_WD = 0b10  # write disable


def _check_key(key: int) -> None:
    if not 0 <= key < MPK_NUM_KEYS:
        raise ValueError(f"invalid protection key {key}")


def pkru_deny_all() -> int:
    """A PKRU value denying access to every key (all AD bits set)."""
    value = 0
    for key in range(MPK_NUM_KEYS):
        value |= _AD << (2 * key)
    return value


def pkru_all_access() -> int:
    """A PKRU value allowing read+write on every key."""
    return 0


def pkru_for_keys(
    writable: Iterable[int] = (), readable: Iterable[int] = ()
) -> int:
    """Build a PKRU granting RW on ``writable``, RO on ``readable``.

    Every other key is fully access-disabled.  This is how gates
    construct the register value for a target compartment: its own key
    plus the shared-data key are writable; anything else is denied.
    """
    value = pkru_deny_all()
    for key in readable:
        _check_key(key)
        value &= ~(_AD << (2 * key))
        value |= _WD << (2 * key)
    for key in writable:
        _check_key(key)
        value &= ~((_AD | _WD) << (2 * key))
    return value


def pkru_allow_write(pkru: int, key: int) -> int:
    """Grant read+write on ``key`` in an existing PKRU value.

    Used when a compartment is linked into a group-scoped shared region
    after its base PKRU was computed (e.g. a queue channel's rings): the
    region's fresh key is opened up without touching any other key's
    bits.
    """
    _check_key(key)
    return pkru & ~((_AD | _WD) << (2 * key))


def pkru_readable(pkru: int, key: int) -> bool:
    """True if the PKRU value permits loads from pages tagged ``key``."""
    _check_key(key)
    return not (pkru >> (2 * key)) & _AD


def pkru_writable(pkru: int, key: int) -> bool:
    """True if the PKRU value permits stores to pages tagged ``key``."""
    _check_key(key)
    return not (pkru >> (2 * key)) & (_AD | _WD)


def describe_pkru(pkru: int) -> str:
    """Human-readable PKRU summary, e.g. ``"0:rw 1:r- 2:-- ..."``."""
    parts = []
    for key in range(MPK_NUM_KEYS):
        read = "r" if pkru_readable(pkru, key) else "-"
        write = "w" if pkru_writable(pkru, key) else "-"
        parts.append(f"{key}:{read}{write}")
    return " ".join(parts)
