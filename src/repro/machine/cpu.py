"""The simulated CPU: execution contexts, clock, and statistics.

A *context* captures what real hardware holds in registers while a
compartment executes: the active address space (CR3 / EPT pointer), the
PKRU value, and the *domain profile* — the software-hardening
instrumentation compiled into the code currently running.  Gates push a
context on entry to a foreign compartment and pop it on return, exactly
like a domain switch.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable

from repro.machine.cycles import DEFAULT_COST_MODEL, CostModel
from repro.machine.mpk import pkru_all_access
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.machine.address_space import AddressSpace


@dataclasses.dataclass
class DomainProfile:
    """Instrumentation profile of the code executing in a domain.

    Built at image-build time from the compartment's software-hardening
    configuration.  The machine consults the current context's profile
    on every access:

    - ``load_factor`` / ``store_factor`` scale memory-op cost (ASAN,
      DFI, UBSAN instrumentation overhead);
    - ``monitors`` are callbacks (``monitor(machine, kind, vaddr,
      size)`` with ``kind`` in {"load", "store"}) that can detect
      violations (ASAN redzones) and charge flat check costs.
    """

    name: str = "default"
    load_factor: float = 1.0
    store_factor: float = 1.0
    monitors: list[Callable[["object", str, int, int], None]] = dataclasses.field(
        default_factory=list
    )
    #: Flat extra cost charged per function call made by this domain
    #: (stack protector canaries, SafeStack bookkeeping).
    call_extra_ns: float = 0.0
    #: Callbacks invoked on every outgoing cross-library call:
    #: ``monitor(caller_lib, callee_lib, fn_name)`` — CFI target checks.
    call_monitors: list[Callable[[str, str, str], None]] = dataclasses.field(
        default_factory=list
    )


#: Profile used before any image is built (uninstrumented).
NEUTRAL_PROFILE = DomainProfile()


@dataclasses.dataclass
class Context:
    """One execution context (protection-domain view of the CPU)."""

    address_space: "AddressSpace"
    pkru: int = dataclasses.field(default_factory=pkru_all_access)
    profile: DomainProfile = dataclasses.field(default_factory=lambda: NEUTRAL_PROFILE)
    label: str = ""
    #: Capability set (CHERI-style backends).  When present, accesses
    #: are checked against capabilities *instead of* protection keys.
    capabilities: object | None = None


class CPU:
    """Simulated CPU: context stack, nanosecond clock, and counters.

    The clock only moves via :meth:`charge`; determinism is total.  The
    ``charging`` flag lets the harness perform setup work (loading a
    workload into NIC rings, seeding datasets) without billing the
    measured server.
    """

    def __init__(self, cost: CostModel | None = None) -> None:
        self.cost = cost if cost is not None else DEFAULT_COST_MODEL
        self._clock_ns: float = 0.0
        self.charging: bool = True
        self._contexts: list[Context] = []
        # Deferred accounting (the machine fast path): memory ops
        # accumulate their clock and counter deltas into these plain
        # attributes instead of going through charge()/bump() per op.
        # flush_accounting() folds them into the real clock/counters at
        # every observation point — any direct charge, context change,
        # stats/snapshot read — so no external reader can tell the
        # difference.  The per-op counter deltas are integer-valued
        # floats, so addition order cannot change their value.
        self._pending_ns: float = 0.0
        self._pend_loads: float = 0.0
        self._pend_load_bytes: float = 0.0
        self._pend_stores: float = 0.0
        self._pend_store_bytes: float = 0.0
        #: All metrics of this CPU (counters, histograms, gate edges).
        self.metrics = MetricsRegistry()
        # Reading any counter through the registry API must first fold
        # in the pending memory-op deltas (see flush_accounting).
        self.metrics._pre_read = self.flush_accounting
        #: Span tracer, attached by :class:`repro.obs.Observability`
        #: (None only for a bare CPU constructed outside a Machine).
        self.tracer = None
        #: When True, every charge is also attributed to the profile
        #: (≈ compartment) of the executing context — a simulated-time
        #: profiler.  Off by default (it taxes every charge).
        self.attribute_time: bool = False
        #: Accumulated simulated ns per domain-profile name.
        self._domain_time_ns: dict[str, float] = {}
        # PKRU sealing: WRPKRU is unprivileged on real hardware, so any
        # compartment could rewrite its own permissions.  FlexOS must
        # police it ("via static analysis, runtime checks or page-table
        # sealing", §3); here only holders of the gate token — the gate
        # implementations — may issue WRPKRU.
        self._gate_token = object()

    # --- deferred accounting ----------------------------------------------

    @property
    def clock_ns(self) -> float:
        """Current simulated time, pending memory-op charges included.

        The flush adds the same single ``_pending_ns`` term to
        ``_clock_ns`` that this property adds on the fly, so reading
        the clock and flushing it produce bit-identical floats.
        """
        return self._clock_ns + self._pending_ns

    @property
    def stats(self) -> dict[str, float]:
        """Legacy flat-counter view — the registry's counter table
        itself (flushed), so ``bump``/``stats`` never diverge."""
        self.flush_accounting()
        return self.metrics.counters

    @property
    def domain_time_ns(self) -> dict[str, float]:
        """Accumulated simulated ns per domain-profile name (flushed)."""
        self.flush_accounting()
        return self._domain_time_ns

    def flush_accounting(self) -> None:
        """Fold pending memory-op charges into the clock and counters.

        Called at every observation point: direct charges, context
        push/pop/swap (so attribution lands on the accruing context),
        counter/snapshot reads, and scheduler switches.  Idempotent and
        cheap when nothing is pending.
        """
        pending = self._pending_ns
        if pending:
            self._pending_ns = 0.0
            self._clock_ns += pending
            if self.attribute_time and self._contexts:
                name = self._contexts[-1].profile.name
                self._domain_time_ns[name] = (
                    self._domain_time_ns.get(name, 0.0) + pending
                )
        if self._pend_loads:
            counters = self.metrics.counters
            counters["loads"] = counters.get("loads", 0.0) + self._pend_loads
            counters["load_bytes"] = (
                counters.get("load_bytes", 0.0) + self._pend_load_bytes
            )
            self._pend_loads = 0.0
            self._pend_load_bytes = 0.0
        if self._pend_stores:
            counters = self.metrics.counters
            counters["stores"] = counters.get("stores", 0.0) + self._pend_stores
            counters["store_bytes"] = (
                counters.get("store_bytes", 0.0) + self._pend_store_bytes
            )
            self._pend_stores = 0.0
            self._pend_store_bytes = 0.0

    # --- context management ----------------------------------------------

    @property
    def current(self) -> Context:
        """The active execution context."""
        if not self._contexts:
            raise RuntimeError("no execution context active")
        return self._contexts[-1]

    @property
    def has_context(self) -> bool:
        """True if at least one context is active."""
        return bool(self._contexts)

    def push_context(self, context: Context) -> None:
        """Enter a protection domain (gate entry, boot)."""
        self.flush_accounting()
        self._contexts.append(context)

    def pop_context(self) -> Context:
        """Leave the current protection domain (gate return)."""
        if not self._contexts:
            raise RuntimeError("context stack underflow")
        self.flush_accounting()
        return self._contexts.pop()

    @property
    def context_depth(self) -> int:
        """Current nesting depth of domain crossings."""
        return len(self._contexts)

    def swap_context_stack(self, new_stack: list[Context]) -> list[Context]:
        """Replace the whole context stack; returns the previous one.

        Used by the cooperative scheduler on a thread switch: a blocked
        thread may be suspended deep inside a chain of gate crossings,
        so its entire stack of protection-domain contexts is saved and
        restored wholesale — the simulated analogue of saving PKRU and
        the stack pointer in the thread control block (which is exactly
        why the paper requires the scheduler to be trusted under MPK).
        """
        self.flush_accounting()
        old = self._contexts
        self._contexts = new_stack
        return old

    # --- PKRU sealing -----------------------------------------------------------

    def gate_token(self) -> object:
        """The WRPKRU authorisation token.

        Only gate implementations (trusted, generated by the builder)
        may hold this; library code obtaining it would be the
        equivalent of smuggling a raw WRPKRU past the sealing checks.
        """
        return self._gate_token

    def wrpkru(self, value: int, token: object | None = None) -> None:
        """Execute a (sealed) WRPKRU: set the current context's PKRU.

        Raises :class:`ProtectionFault` for any caller not presenting
        the gate token — the simulated analogue of ERIM's binary
        inspection / Hodor's runtime checks rejecting rogue WRPKRU
        occurrences (see also "PKU Pitfalls", cited by the paper).
        """
        from repro.machine.faults import ProtectionFault

        self.charge(self.cost.wrpkru_ns)
        self.bump("wrpkru")
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant("wrpkru", "mpk", value=value)
        if token is not self._gate_token:
            raise ProtectionFault(
                0,
                "write",
                None,
                "unauthorized WRPKRU blocked by PKRU sealing",
            )
        self.current.pkru = value

    # --- accounting -------------------------------------------------------

    def charge(self, ns: float) -> None:
        """Advance the clock by ``ns`` simulated nanoseconds."""
        if self.charging:
            self.flush_accounting()
            self._clock_ns += ns
            if self.attribute_time and self._contexts:
                name = self._contexts[-1].profile.name
                self._domain_time_ns[name] = (
                    self._domain_time_ns.get(name, 0.0) + ns
                )

    def charge_mem(self, ns: float, op: str, size: int) -> None:
        """Deferred-accounting charge for one memory op.

        Accumulates the clock delta and the loads/stores counters into
        the pending accumulators instead of the registry; they are
        folded in by :meth:`flush_accounting` at the next observation
        point.  Both the machine's fast and slow access paths use this,
        so the fastpath toggle cannot change any accounted value.
        """
        if self.charging:
            self._pending_ns += ns
        if op == "load":
            self._pend_loads += 1.0
            self._pend_load_bytes += size
        else:
            self._pend_stores += 1.0
            self._pend_store_bytes += size

    def bump(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named statistics counter (via the registry)."""
        self.metrics.inc(counter, amount)

    def reset_stats(self) -> None:
        """Clear all counters (the clock is left untouched)."""
        self.flush_accounting()
        self.metrics.counters.clear()

    def snapshot(self) -> dict[str, float]:
        """Copy of the counters plus the current clock."""
        snap = dict(self.stats)
        snap["clock_ns"] = self.clock_ns
        return snap
