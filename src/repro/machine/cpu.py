"""The simulated CPU: execution contexts, clock, and statistics.

A *context* captures what real hardware holds in registers while a
compartment executes: the active address space (CR3 / EPT pointer), the
PKRU value, and the *domain profile* — the software-hardening
instrumentation compiled into the code currently running.  Gates push a
context on entry to a foreign compartment and pop it on return, exactly
like a domain switch.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable

from repro.machine.cycles import DEFAULT_COST_MODEL, CostModel
from repro.machine.mpk import pkru_all_access
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.machine.address_space import AddressSpace


@dataclasses.dataclass
class DomainProfile:
    """Instrumentation profile of the code executing in a domain.

    Built at image-build time from the compartment's software-hardening
    configuration.  The machine consults the current context's profile
    on every access:

    - ``load_factor`` / ``store_factor`` scale memory-op cost (ASAN,
      DFI, UBSAN instrumentation overhead);
    - ``monitors`` are callbacks (``monitor(machine, kind, vaddr,
      size)`` with ``kind`` in {"load", "store"}) that can detect
      violations (ASAN redzones) and charge flat check costs.
    """

    name: str = "default"
    load_factor: float = 1.0
    store_factor: float = 1.0
    monitors: list[Callable[["object", str, int, int], None]] = dataclasses.field(
        default_factory=list
    )
    #: Flat extra cost charged per function call made by this domain
    #: (stack protector canaries, SafeStack bookkeeping).
    call_extra_ns: float = 0.0
    #: Callbacks invoked on every outgoing cross-library call:
    #: ``monitor(caller_lib, callee_lib, fn_name)`` — CFI target checks.
    call_monitors: list[Callable[[str, str, str], None]] = dataclasses.field(
        default_factory=list
    )


#: Profile used before any image is built (uninstrumented).
NEUTRAL_PROFILE = DomainProfile()


@dataclasses.dataclass
class Context:
    """One execution context (protection-domain view of the CPU)."""

    address_space: "AddressSpace"
    pkru: int = dataclasses.field(default_factory=pkru_all_access)
    profile: DomainProfile = dataclasses.field(default_factory=lambda: NEUTRAL_PROFILE)
    label: str = ""
    #: Capability set (CHERI-style backends).  When present, accesses
    #: are checked against capabilities *instead of* protection keys.
    capabilities: object | None = None


class CPU:
    """Simulated CPU: context stack, nanosecond clock, and counters.

    The clock only moves via :meth:`charge`; determinism is total.  The
    ``charging`` flag lets the harness perform setup work (loading a
    workload into NIC rings, seeding datasets) without billing the
    measured server.
    """

    def __init__(self, cost: CostModel | None = None) -> None:
        self.cost = cost if cost is not None else DEFAULT_COST_MODEL
        self.clock_ns: float = 0.0
        self.charging: bool = True
        self._contexts: list[Context] = []
        #: All metrics of this CPU (counters, histograms, gate edges).
        self.metrics = MetricsRegistry()
        #: Legacy flat-counter view — the registry's counter table
        #: itself, so ``bump``/``stats`` and the registry never diverge.
        self.stats: dict[str, float] = self.metrics.counters
        #: Span tracer, attached by :class:`repro.obs.Observability`
        #: (None only for a bare CPU constructed outside a Machine).
        self.tracer = None
        #: When True, every charge is also attributed to the profile
        #: (≈ compartment) of the executing context — a simulated-time
        #: profiler.  Off by default (it taxes every charge).
        self.attribute_time: bool = False
        #: Accumulated simulated ns per domain-profile name.
        self.domain_time_ns: dict[str, float] = {}
        # PKRU sealing: WRPKRU is unprivileged on real hardware, so any
        # compartment could rewrite its own permissions.  FlexOS must
        # police it ("via static analysis, runtime checks or page-table
        # sealing", §3); here only holders of the gate token — the gate
        # implementations — may issue WRPKRU.
        self._gate_token = object()

    # --- context management ----------------------------------------------

    @property
    def current(self) -> Context:
        """The active execution context."""
        if not self._contexts:
            raise RuntimeError("no execution context active")
        return self._contexts[-1]

    @property
    def has_context(self) -> bool:
        """True if at least one context is active."""
        return bool(self._contexts)

    def push_context(self, context: Context) -> None:
        """Enter a protection domain (gate entry, boot)."""
        self._contexts.append(context)

    def pop_context(self) -> Context:
        """Leave the current protection domain (gate return)."""
        if not self._contexts:
            raise RuntimeError("context stack underflow")
        return self._contexts.pop()

    @property
    def context_depth(self) -> int:
        """Current nesting depth of domain crossings."""
        return len(self._contexts)

    def swap_context_stack(self, new_stack: list[Context]) -> list[Context]:
        """Replace the whole context stack; returns the previous one.

        Used by the cooperative scheduler on a thread switch: a blocked
        thread may be suspended deep inside a chain of gate crossings,
        so its entire stack of protection-domain contexts is saved and
        restored wholesale — the simulated analogue of saving PKRU and
        the stack pointer in the thread control block (which is exactly
        why the paper requires the scheduler to be trusted under MPK).
        """
        old = self._contexts
        self._contexts = new_stack
        return old

    # --- PKRU sealing -----------------------------------------------------------

    def gate_token(self) -> object:
        """The WRPKRU authorisation token.

        Only gate implementations (trusted, generated by the builder)
        may hold this; library code obtaining it would be the
        equivalent of smuggling a raw WRPKRU past the sealing checks.
        """
        return self._gate_token

    def wrpkru(self, value: int, token: object | None = None) -> None:
        """Execute a (sealed) WRPKRU: set the current context's PKRU.

        Raises :class:`ProtectionFault` for any caller not presenting
        the gate token — the simulated analogue of ERIM's binary
        inspection / Hodor's runtime checks rejecting rogue WRPKRU
        occurrences (see also "PKU Pitfalls", cited by the paper).
        """
        from repro.machine.faults import ProtectionFault

        self.charge(self.cost.wrpkru_ns)
        self.bump("wrpkru")
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant("wrpkru", "mpk", value=value)
        if token is not self._gate_token:
            raise ProtectionFault(
                0,
                "write",
                None,
                "unauthorized WRPKRU blocked by PKRU sealing",
            )
        self.current.pkru = value

    # --- accounting -------------------------------------------------------

    def charge(self, ns: float) -> None:
        """Advance the clock by ``ns`` simulated nanoseconds."""
        if self.charging:
            self.clock_ns += ns
            if self.attribute_time and self._contexts:
                name = self._contexts[-1].profile.name
                self.domain_time_ns[name] = (
                    self.domain_time_ns.get(name, 0.0) + ns
                )

    def bump(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named statistics counter (via the registry)."""
        self.metrics.inc(counter, amount)

    def reset_stats(self) -> None:
        """Clear all counters (the clock is left untouched)."""
        self.stats.clear()

    def snapshot(self) -> dict[str, float]:
        """Copy of the counters plus the current clock."""
        snap = dict(self.stats)
        snap["clock_ns"] = self.clock_ns
        return snap
