"""Per-domain page tables: virtual address spaces with pkeys.

Each :class:`AddressSpace` maps virtual pages to physical frames with a
permission set and an MPK protection key.  The MPK backend uses a single
address space whose pages carry different pkeys; the EPT backend uses
one address space per VM with a shared region mapped at identical
virtual addresses in every VM (so pointers into shared structures stay
valid, as the paper requires).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator

from repro.machine.faults import OutOfMemoryError, PageFault
from repro.machine.memory import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory, page_align_up
from repro.machine.mpk import PKEY_DEFAULT


class Permissions(enum.IntFlag):
    """Page permission bits."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXEC = 4
    RW = READ | WRITE
    RX = READ | EXEC
    RWX = READ | WRITE | EXEC


@dataclasses.dataclass
class PageEntry:
    """One page-table entry: frame, permissions, protection key."""

    frame: int
    perms: Permissions
    pkey: int = PKEY_DEFAULT


class AddressSpace:
    """A virtual address space backed by :class:`PhysicalMemory`.

    Virtual addresses are allocated by a bump reservation allocator
    starting at ``base``; callers may also request fixed placements
    (needed for the EPT shared region, mapped at the same virtual
    address in every VM).
    """

    #: Default start of the reservable VA range (skip the null page area).
    DEFAULT_BASE = 0x1000_0000
    #: Default end of the reservable VA range.
    DEFAULT_LIMIT = 0x8000_0000

    def __init__(
        self,
        name: str,
        phys: PhysicalMemory,
        base: int = DEFAULT_BASE,
        limit: int = DEFAULT_LIMIT,
    ) -> None:
        self.name = name
        self.phys = phys
        self._pages: dict[int, PageEntry] = {}
        self._next_va = base
        self._limit = limit
        #: Software TLB: ``(vpn, op, pkru) → frame`` for accesses whose
        #: permission + PKRU checks already passed.  The machine fast
        #: path consults it to skip the page walk (see
        #: :meth:`repro.machine.machine.Machine.load`).  Keying on the
        #: PKRU value means a WRPKRU or context switch needs no explicit
        #: shootdown — a different PKRU simply misses.  Any page-table
        #: mutation (map/unmap/protect) clears the whole cache, which is
        #: observationally equivalent to the epoch-tag scheme (a bumped
        #: epoch makes every old key unreachable; clearing reclaims the
        #: memory too).
        self._access_cache: dict[tuple[int, str, int], int] = {}
        #: Range extension of the software TLB: ``(vpn, npages, op,
        #: pkru) → base paddr`` for multi-page runs whose pages all
        #: passed their checks *and* whose frames are physically
        #: contiguous (the common case — ``map_new`` allocates frames
        #: sequentially).  A hit turns a bulk access into one slice
        #: instead of a per-page walk; runs that are not contiguous
        #: simply never enter the cache and keep taking the per-page
        #: path.
        self._range_cache: dict[tuple[int, int, str, int], int] = {}
        #: Translation-only cache (``vpn → frame``) for device DMA,
        #: which bypasses permissions and PKRU entirely.
        self._frame_cache: dict[int, int] = {}
        #: Monotonic generation counter: bumped on every page-table
        #: mutation.  Telemetry / debugging aid; correctness rests on
        #: the caches being cleared, not on this number.
        self.epoch = 0
        #: How many times the software TLB was shot down.
        self.tlb_invalidations = 0

    def _invalidate(self) -> None:
        """Shoot down the software TLB after a page-table mutation."""
        self.epoch += 1
        if self._access_cache or self._frame_cache or self._range_cache:
            self._access_cache.clear()
            self._range_cache.clear()
            self._frame_cache.clear()
            self.tlb_invalidations += 1

    # --- mapping ---------------------------------------------------------

    def reserve(self, size: int) -> int:
        """Reserve a page-aligned VA range of at least ``size`` bytes."""
        if size <= 0:
            raise ValueError("reservation size must be positive")
        size = page_align_up(size)
        vaddr = self._next_va
        if vaddr + size > self._limit:
            raise OutOfMemoryError(f"virtual address space exhausted in {self.name}")
        self._next_va = vaddr + size
        return vaddr

    def map_new(
        self,
        size: int,
        perms: Permissions = Permissions.RW,
        pkey: int = PKEY_DEFAULT,
        vaddr: int | None = None,
    ) -> int:
        """Allocate frames and map them; returns the base virtual address.

        When ``vaddr`` is given, maps at that fixed (page-aligned)
        address instead of reserving a fresh range.
        """
        size = page_align_up(size)
        if vaddr is None:
            vaddr = self.reserve(size)
        elif vaddr % PAGE_SIZE != 0:
            raise ValueError("fixed mapping address must be page aligned")
        npages = size >> PAGE_SHIFT
        frames = self.phys.alloc_frames(npages)
        self.map_frames(vaddr, frames, perms, pkey)
        return vaddr

    def map_frames(
        self,
        vaddr: int,
        frames: list[int],
        perms: Permissions = Permissions.RW,
        pkey: int = PKEY_DEFAULT,
    ) -> None:
        """Map existing frames at ``vaddr`` (used for shared mappings)."""
        if vaddr % PAGE_SIZE != 0:
            raise ValueError("mapping address must be page aligned")
        vpn = vaddr >> PAGE_SHIFT
        for index, frame in enumerate(frames):
            if (vpn + index) in self._pages:
                raise ValueError(
                    f"{self.name}: page {(vpn + index) << PAGE_SHIFT:#x} already mapped"
                )
            self._pages[vpn + index] = PageEntry(frame, perms, pkey)
        self._invalidate()

    def unmap(self, vaddr: int, size: int, free_frames: bool = True) -> None:
        """Remove mappings for the range; optionally free the frames."""
        size = page_align_up(size)
        vpn = vaddr >> PAGE_SHIFT
        self._invalidate()
        for index in range(size >> PAGE_SHIFT):
            entry = self._pages.pop(vpn + index, None)
            if entry is None:
                raise PageFault((vpn + index) << PAGE_SHIFT, "unmap", "not mapped")
            if free_frames:
                self.phys.free_frame(entry.frame)

    def frames_of(self, vaddr: int, size: int) -> list[int]:
        """Return the frames backing a mapped range (for aliasing)."""
        size = page_align_up(size)
        vpn = vaddr >> PAGE_SHIFT
        frames = []
        for index in range(size >> PAGE_SHIFT):
            entry = self._pages.get(vpn + index)
            if entry is None:
                raise PageFault((vpn + index) << PAGE_SHIFT, "read", "not mapped")
            frames.append(entry.frame)
        return frames

    # --- protection ---------------------------------------------------------

    def protect(
        self,
        vaddr: int,
        size: int,
        perms: Permissions | None = None,
        pkey: int | None = None,
    ) -> None:
        """Change permissions and/or pkey of a mapped range.

        This is the simulated analogue of ``mprotect``/``pkey_mprotect``.
        """
        size = page_align_up(size)
        vpn = vaddr >> PAGE_SHIFT
        # Shoot down before mutating: a PageFault halfway through the
        # range must not leave stale cached rights for the pages whose
        # entries were already rewritten.
        self._invalidate()
        for index in range(size >> PAGE_SHIFT):
            entry = self._pages.get(vpn + index)
            if entry is None:
                raise PageFault((vpn + index) << PAGE_SHIFT, "protect", "not mapped")
            if perms is not None:
                entry.perms = perms
            if pkey is not None:
                entry.pkey = pkey

    # --- translation ---------------------------------------------------------

    def entry(self, vaddr: int) -> PageEntry:
        """Return the page entry covering ``vaddr`` or raise PageFault."""
        entry = self._pages.get(vaddr >> PAGE_SHIFT)
        if entry is None:
            raise PageFault(vaddr, "access", f"not mapped in {self.name}")
        return entry

    def translate(self, vaddr: int) -> int:
        """Translate a virtual address to a physical address."""
        entry = self.entry(vaddr)
        return (entry.frame << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))

    def iter_range(self, vaddr: int, size: int) -> Iterator[tuple[int, int, PageEntry]]:
        """Yield (chunk_vaddr, chunk_size, entry) covering [vaddr, vaddr+size).

        Splits the range at page boundaries so callers can check each
        page's permissions and perform contiguous physical copies.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        offset = vaddr
        end = vaddr + size
        while offset < end:
            page_end = ((offset >> PAGE_SHIFT) + 1) << PAGE_SHIFT
            chunk = min(end, page_end) - offset
            yield offset, chunk, self.entry(offset)
            offset += chunk

    def is_mapped(self, vaddr: int) -> bool:
        """True if the page containing ``vaddr`` is mapped."""
        return (vaddr >> PAGE_SHIFT) in self._pages

    @property
    def mapped_pages(self) -> int:
        """Number of pages currently mapped."""
        return len(self._pages)
