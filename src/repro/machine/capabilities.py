"""Capability-based memory access control (CHERI-style).

The paper motivates FlexOS partly by hardware heterogeneity: "certain
primitives are hardware-dependent (e.g. Intel Memory Protection Keys,
CHERI)".  This module models the CHERI-flavoured alternative: instead
of tagging *pages* with keys checked against a per-thread register,
code can only dereference *capabilities* — bounded ranges it was
granted.  A compartment's base capabilities cover the memory it owns
plus the shared area; gates **delegate** ephemeral capabilities for
pointer arguments at call time and revoke them on return (by popping
the execution context that carried them).

The practical difference from MPK this exposes: capability delegation
lets a callee touch exactly the caller buffer it was handed — private
memory included — so cross-domain I/O does not have to round-trip
through a globally shared heap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.machine.faults import ProtectionFault

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment

#: Capability permission tags.
CAP_READ = "r"
CAP_WRITE = "w"


class CapabilitySet:
    """The capabilities an execution context holds.

    ``base_ranges`` is a *live* list reference (typically the owning
    compartment's ``owned_ranges``), so regions mapped after the set
    was created are still covered — exactly like a compartment-wide
    default data capability.  ``grants`` are the ephemeral, bounded
    delegations installed by a gate for one call.
    """

    def __init__(
        self,
        name: str,
        base_ranges: list,
        shared_ranges: Iterable[tuple[int, int]] = (),
    ) -> None:
        self.name = name
        self.base_ranges = base_ranges
        self.shared_ranges = list(shared_ranges)
        #: Ephemeral delegations: (start, end, writable).
        self.grants: list[tuple[int, int, bool]] = []

    # --- delegation ---------------------------------------------------------

    def grant(self, start: int, size: int, writable: bool = True) -> None:
        """Install one bounded delegation (gate entry)."""
        if size <= 0:
            return
        self.grants.append((start, start + size, writable))

    def derive(self) -> "CapabilitySet":
        """A copy sharing base ranges but with its own grant list.

        Gates derive a fresh set per crossing so that concurrent calls
        into the same compartment (different threads) cannot see each
        other's delegations.
        """
        derived = CapabilitySet(self.name, self.base_ranges, self.shared_ranges)
        return derived

    # --- checking ---------------------------------------------------------------

    def _covered(self, start: int, end: int, write: bool) -> bool:
        for base_start, base_end in self.base_ranges:
            if base_start <= start and end <= base_end:
                return True
        for shared_start, shared_end in self.shared_ranges:
            if shared_start <= start and end <= shared_end:
                return True
        for grant_start, grant_end, writable in self.grants:
            if grant_start <= start and end <= grant_end:
                if write and not writable:
                    continue
                return True
        return False

    def check(self, vaddr: int, size: int, kind: str) -> None:
        """Raise :class:`ProtectionFault` unless the access is capable."""
        if not self._covered(vaddr, vaddr + size, kind == "store"):
            raise ProtectionFault(
                vaddr,
                "write" if kind == "store" else "read",
                None,
                f"no capability in domain {self.name}",
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CapabilitySet({self.name!r}, base={len(self.base_ranges)}, "
            f"grants={len(self.grants)})"
        )


def base_capabilities(
    compartment: "Compartment", shared_ranges: Iterable[tuple[int, int]]
) -> CapabilitySet:
    """The compartment-wide default capability set."""
    return CapabilitySet(
        compartment.name, compartment.owned_ranges, shared_ranges
    )
