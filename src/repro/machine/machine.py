"""The machine facade: every simulated load/store goes through here.

Access path for a load/store (mirrors the hardware + instrumentation
pipeline of the paper's testbed):

1. charge instrumented cost (cost model × the current domain profile's
   load/store factor);
2. run the domain's software-hardening monitors (ASAN shadow checks,
   DFI write-set checks) — these may raise :class:`SHViolation`;
3. translate through the current context's address space — unmapped
   pages raise :class:`PageFault` (this is the whole of EPT isolation:
   a foreign VM's private pages simply are not mapped);
4. check page permissions;
5. check the page's protection key against the context's PKRU — a
   mismatch raises :class:`ProtectionFault` (MPK isolation);
6. move the bytes.

Device DMA (:meth:`Machine.dma_read` / :meth:`Machine.dma_write`)
bypasses PKRU — as on real hardware, where MPK does not constrain
devices — and never charges the CPU clock, which lets the workload
harness play the role of the external traffic generator.
"""

from __future__ import annotations

import os

from repro.machine.address_space import AddressSpace, Permissions
from repro.machine.cpu import CPU, Context
from repro.machine.cycles import CostModel
from repro.machine.ept import SharedWindowAllocator, VMDomain
from repro.machine.faults import PageFault, ProtectionFault
from repro.machine.memory import PAGE_SHIFT, PhysicalMemory
from repro.machine.mpk import pkru_readable, pkru_writable
from repro.obs import Observability

_PAGE_MASK = (1 << PAGE_SHIFT) - 1


class Machine:
    """A simulated host: physical memory, one CPU, address spaces."""

    def __init__(
        self,
        cost: CostModel | None = None,
        phys_bytes: int = 64 * 1024 * 1024,
        fastpath: bool | None = None,
        gateplan: bool | None = None,
    ) -> None:
        self.phys = PhysicalMemory(phys_bytes)
        self.cpu = CPU(cost)
        #: Software-TLB fast path for load/store/DMA.  On by default;
        #: ``fastpath=False`` (or env ``REPRO_FASTPATH=0``) forces the
        #: original page-walk on every access — the reference the
        #: differential tests and ``bench_machine.py --check`` compare
        #: against.  The toggle only controls translation caching;
        #: charging and counters take the same code path either way,
        #: so every simulated observable is bit-identical.
        if fastpath is None:
            fastpath = os.environ.get("REPRO_FASTPATH", "1") != "0"
        self.fastpath_enabled = bool(fastpath)
        #: Software-TLB telemetry.  Deliberately *not* registry
        #: counters: hit/miss counts differ between fast and slow runs
        #: by construction, and keeping them out of the registry keeps
        #: ``cpu.snapshot()`` bit-identical across the toggle.
        self.tlb_hits = 0
        self.tlb_misses = 0
        #: Crossing-plan fast path for gate invokes.  Channels compile a
        #: per-edge :class:`~repro.gates.base.CrossingPlan` at
        #: construction (handlers, precomputed charge sums, context
        #: labels) and take a specialized invoke path when no observer
        #: (tracer / edge-latency recording) is live.  ``gateplan=False``
        #: (or env ``REPRO_GATEPLAN=0``) forces the original per-call
        #: derivation — the reference ``bench_fastpath.py --check``
        #: compares against.  Both paths issue the identical charge and
        #: counter sequence, so simulated observables are bit-identical.
        if gateplan is None:
            gateplan = os.environ.get("REPRO_GATEPLAN", "1") != "0"
        self.gateplan_enabled = bool(gateplan)
        #: Crossing plans compiled by this machine's channels (host-side
        #: telemetry only — same bit-identity rationale as the TLB
        #: counters above).
        self.gate_plans: list = []
        #: Observability: span tracer (disabled by default) + metrics
        #: registry (shared with the CPU).  See :mod:`repro.obs`.
        self.obs = Observability(self.cpu)
        self.spaces: dict[str, AddressSpace] = {}
        self.vm_domains: dict[str, VMDomain] = {}
        self._shared_windows = SharedWindowAllocator(self.phys)
        #: Resilience fault injector (:mod:`repro.resilience`), or None.
        #: Hook sites (gate crossings, allocators, the scheduler, VM
        #: notifications) consult it only when armed; the common path
        #: pays a single attribute check.
        self.injector = None
        #: Group-scoped shared heap registry (see
        #: :mod:`repro.libos.alloc.groupheap`); installed by the builder
        #: or lazily by the first queue channel that needs ring memory.
        self.group_heaps = None

    @property
    def cost(self) -> CostModel:
        """The active cost model."""
        return self.cpu.cost

    # --- topology ---------------------------------------------------------

    def new_address_space(self, name: str) -> AddressSpace:
        """Create a named address space (MPK backend uses exactly one)."""
        if name in self.spaces:
            raise ValueError(f"address space {name!r} already exists")
        space = AddressSpace(name, self.phys)
        self.spaces[name] = space
        return space

    def new_vm_domain(self, name: str) -> VMDomain:
        """Create a VM domain (EPT backend: one per compartment)."""
        if name in self.vm_domains:
            raise ValueError(f"VM domain {name!r} already exists")
        domain = VMDomain(len(self.vm_domains), name, self.phys)
        self.vm_domains[name] = domain
        self.spaces[domain.space.name] = domain.space
        return domain

    def map_shared_window(
        self,
        domains: list[VMDomain],
        size: int,
        perms: Permissions = Permissions.RW,
    ) -> int:
        """Map a shared window at identical VAs into all given VMs."""
        return self._shared_windows.map_shared(domains, size, perms)

    # --- checked access -----------------------------------------------------

    def _tlb_fill(
        self, space: AddressSpace, context: Context, vaddr: int, op: str
    ) -> int:
        """Software-TLB miss: full page walk + checks, then cache.

        Performs exactly the checks — and raises exactly the faults —
        the slow path performs for one page, then records the earned
        translation under ``(vpn, op, pkru)``.  Only reached for
        non-capability contexts (capability checks are per-access
        bounds, not per-page rights, so they can never be cached).
        """
        vpn = vaddr >> PAGE_SHIFT
        entry = space._pages.get(vpn)
        if entry is None:
            raise PageFault(vaddr, "access", f"not mapped in {space.name}")
        if op == "read":
            if not entry.perms & Permissions.READ:
                raise PageFault(vaddr, "read", "page not readable")
            if not pkru_readable(context.pkru, entry.pkey):
                raise ProtectionFault(vaddr, "read", entry.pkey, context.label)
        else:
            if not entry.perms & Permissions.WRITE:
                raise PageFault(vaddr, "write", "page not writable")
            if not pkru_writable(context.pkru, entry.pkey):
                raise ProtectionFault(vaddr, "write", entry.pkey, context.label)
        self.tlb_misses += 1
        space._access_cache[(vpn, op, context.pkru)] = entry.frame
        return entry.frame

    def load(self, vaddr: int, size: int) -> bytes:
        """Checked read of ``size`` bytes by the current context."""
        cpu = self.cpu
        context = cpu.current
        profile = context.profile
        cpu.charge_mem(
            (cpu.cost.mem_op_ns + size * cpu.cost.mem_byte_ns) * profile.load_factor,
            "load",
            size,
        )
        if profile.monitors:
            for monitor in profile.monitors:
                monitor(self, "load", vaddr, size)
        if context.capabilities is not None:
            cpu.charge(cpu.cost.cheri_check_ns)
            context.capabilities.check(vaddr, size, "load")
        elif self.fastpath_enabled and size > 0:
            space = context.address_space
            cache = space._access_cache
            vpn = vaddr >> PAGE_SHIFT
            if (vaddr + size - 1) >> PAGE_SHIFT == vpn:
                # Hot case: the access fits one page — one dict probe,
                # one slice.
                frame = cache.get((vpn, "read", context.pkru))
                if frame is None:
                    frame = self._tlb_fill(space, context, vaddr, "read")
                else:
                    self.tlb_hits += 1
                paddr = (frame << PAGE_SHIFT) | (vaddr & _PAGE_MASK)
                return bytes(self.phys.view[paddr : paddr + size])
            # Multi-page: try the range cache first — one probe and one
            # slice when the run was already checked and its frames are
            # physically contiguous.
            pkru = context.pkru
            last_vpn = (vaddr + size - 1) >> PAGE_SHIFT
            npages = last_vpn - vpn + 1
            range_key = (vpn, npages, "read", pkru)
            base_paddr = space._range_cache.get(range_key)
            view = self.phys.view
            if base_paddr is not None:
                self.tlb_hits += 1
                paddr = base_paddr | (vaddr & _PAGE_MASK)
                return bytes(view[paddr : paddr + size])
            chunks = []
            offset = vaddr
            end = vaddr + size
            first_frame = None
            next_frame = None
            while offset < end:
                vpn = offset >> PAGE_SHIFT
                chunk = min(end, (vpn + 1) << PAGE_SHIFT) - offset
                frame = cache.get((vpn, "read", pkru))
                if frame is None:
                    frame = self._tlb_fill(space, context, offset, "read")
                else:
                    self.tlb_hits += 1
                if first_frame is None:
                    first_frame = frame
                elif frame != next_frame:
                    first_frame = -1  # run is not physically contiguous
                next_frame = frame + 1
                paddr = (frame << PAGE_SHIFT) | (offset & _PAGE_MASK)
                chunks.append(view[paddr : paddr + chunk])
                offset += chunk
            if first_frame >= 0:
                space._range_cache[range_key] = first_frame << PAGE_SHIFT
            return b"".join(chunks)
        chunks = []
        for chunk_va, chunk_size, entry in context.address_space.iter_range(
            vaddr, size
        ):
            if not entry.perms & Permissions.READ:
                raise PageFault(chunk_va, "read", "page not readable")
            if context.capabilities is None and not pkru_readable(
                context.pkru, entry.pkey
            ):
                raise ProtectionFault(chunk_va, "read", entry.pkey, context.label)
            paddr = (entry.frame << 12) | (chunk_va & 0xFFF)
            chunks.append(self.phys.read(paddr, chunk_size))
        return b"".join(chunks)

    def store(self, vaddr: int, payload: bytes) -> None:
        """Checked write of ``payload`` by the current context."""
        cpu = self.cpu
        context = cpu.current
        profile = context.profile
        size = len(payload)
        cpu.charge_mem(
            (cpu.cost.mem_op_ns + size * cpu.cost.mem_byte_ns) * profile.store_factor,
            "store",
            size,
        )
        if profile.monitors:
            for monitor in profile.monitors:
                monitor(self, "store", vaddr, size)
        if context.capabilities is not None:
            cpu.charge(cpu.cost.cheri_check_ns)
            context.capabilities.check(vaddr, size, "store")
        elif self.fastpath_enabled and size > 0:
            space = context.address_space
            cache = space._access_cache
            data = self.phys.data
            vpn = vaddr >> PAGE_SHIFT
            if (vaddr + size - 1) >> PAGE_SHIFT == vpn:
                frame = cache.get((vpn, "write", context.pkru))
                if frame is None:
                    frame = self._tlb_fill(space, context, vaddr, "write")
                else:
                    self.tlb_hits += 1
                paddr = (frame << PAGE_SHIFT) | (vaddr & _PAGE_MASK)
                data[paddr : paddr + size] = payload
                return
            # Multi-page: a range-cache hit means every page of the run
            # already passed its checks and the frames are physically
            # contiguous — the whole store is one slice assignment.
            pkru = context.pkru
            last_vpn = (vaddr + size - 1) >> PAGE_SHIFT
            npages = last_vpn - vpn + 1
            range_key = (vpn, npages, "write", pkru)
            base_paddr = space._range_cache.get(range_key)
            if base_paddr is not None:
                self.tlb_hits += 1
                paddr = base_paddr | (vaddr & _PAGE_MASK)
                data[paddr : paddr + size] = payload
                return
            # Miss: check-and-write page by page, in order, so a fault
            # mid-store leaves exactly the pages before it written —
            # matching the slow path byte for byte.
            offset = 0
            va = vaddr
            end = vaddr + size
            first_frame = None
            next_frame = None
            while va < end:
                vpn = va >> PAGE_SHIFT
                chunk = min(end, (vpn + 1) << PAGE_SHIFT) - va
                frame = cache.get((vpn, "write", pkru))
                if frame is None:
                    frame = self._tlb_fill(space, context, va, "write")
                else:
                    self.tlb_hits += 1
                if first_frame is None:
                    first_frame = frame
                elif frame != next_frame:
                    first_frame = -1  # run is not physically contiguous
                next_frame = frame + 1
                paddr = (frame << PAGE_SHIFT) | (va & _PAGE_MASK)
                data[paddr : paddr + chunk] = payload[offset : offset + chunk]
                offset += chunk
                va += chunk
            if first_frame >= 0:
                space._range_cache[range_key] = first_frame << PAGE_SHIFT
            return
        offset = 0
        for chunk_va, chunk_size, entry in context.address_space.iter_range(
            vaddr, size
        ):
            if not entry.perms & Permissions.WRITE:
                raise PageFault(chunk_va, "write", "page not writable")
            if context.capabilities is None and not pkru_writable(
                context.pkru, entry.pkey
            ):
                raise ProtectionFault(chunk_va, "write", entry.pkey, context.label)
            paddr = (entry.frame << 12) | (chunk_va & 0xFFF)
            self.phys.write(paddr, payload[offset : offset + chunk_size])
            offset += chunk_size

    def copy(self, dst: int, src: int, size: int) -> None:
        """Checked memory-to-memory copy (one load + one store)."""
        self.store(dst, self.load(src, size))

    def fill(self, vaddr: int, value: int, size: int) -> None:
        """Checked memset."""
        self.store(vaddr, bytes([value & 0xFF]) * size)

    # --- unchecked / device access ---------------------------------------------

    def _dma_frame(self, space: AddressSpace, vaddr: int) -> int:
        """Translation-cache miss for device DMA (no permission checks)."""
        vpn = vaddr >> PAGE_SHIFT
        entry = space._pages.get(vpn)
        if entry is None:
            raise PageFault(vaddr, "access", f"not mapped in {space.name}")
        space._frame_cache[vpn] = entry.frame
        return entry.frame

    def dma_write(self, space: AddressSpace, vaddr: int, payload: bytes) -> None:
        """Device write: translates via ``space``, bypasses PKRU and cost."""
        if self.fastpath_enabled:
            cache = space._frame_cache
            data = self.phys.data
            offset = 0
            va = vaddr
            end = vaddr + len(payload)
            while va < end:
                vpn = va >> PAGE_SHIFT
                chunk = min(end, (vpn + 1) << PAGE_SHIFT) - va
                frame = cache.get(vpn)
                if frame is None:
                    frame = self._dma_frame(space, va)
                paddr = (frame << PAGE_SHIFT) | (va & _PAGE_MASK)
                data[paddr : paddr + chunk] = payload[offset : offset + chunk]
                offset += chunk
                va += chunk
            return
        offset = 0
        for chunk_va, chunk_size, entry in space.iter_range(vaddr, len(payload)):
            paddr = (entry.frame << 12) | (chunk_va & 0xFFF)
            self.phys.write(paddr, payload[offset : offset + chunk_size])
            offset += chunk_size

    def dma_read(self, space: AddressSpace, vaddr: int, size: int) -> bytes:
        """Device read: translates via ``space``, bypasses PKRU and cost."""
        if self.fastpath_enabled:
            cache = space._frame_cache
            view = self.phys.view
            chunks = []
            va = vaddr
            end = vaddr + size
            while va < end:
                vpn = va >> PAGE_SHIFT
                chunk = min(end, (vpn + 1) << PAGE_SHIFT) - va
                frame = cache.get(vpn)
                if frame is None:
                    frame = self._dma_frame(space, va)
                paddr = (frame << PAGE_SHIFT) | (va & _PAGE_MASK)
                chunks.append(view[paddr : paddr + chunk])
                va += chunk
            if len(chunks) == 1:
                return bytes(chunks[0])
            return b"".join(chunks)
        chunks = []
        for chunk_va, chunk_size, entry in space.iter_range(vaddr, size):
            paddr = (entry.frame << 12) | (chunk_va & 0xFFF)
            chunks.append(self.phys.read(paddr, chunk_size))
        return b"".join(chunks)

    # --- fastpath telemetry -----------------------------------------------

    def fastpath_stats(self) -> dict:
        """Software-TLB telemetry (host-side; never charged, never in
        the metrics registry — see note in ``__init__``)."""
        return {
            "enabled": self.fastpath_enabled,
            "tlb_hits": self.tlb_hits,
            "tlb_misses": self.tlb_misses,
            "tlb_invalidations": sum(
                space.tlb_invalidations for space in self.spaces.values()
            ),
            "gateplan": {
                "enabled": self.gateplan_enabled,
                "plans": len(self.gate_plans),
                "plan_hits": sum(plan.hits for plan in self.gate_plans),
                "plan_refreshes": sum(
                    plan.refreshes for plan in self.gate_plans
                ),
            },
        }

    # --- context helpers --------------------------------------------------------

    def boot_context(self, space: AddressSpace, label: str = "boot") -> Context:
        """Push and return an all-access context on ``space``."""
        context = Context(address_space=space, label=label)
        self.cpu.push_context(context)
        return context
