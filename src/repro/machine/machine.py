"""The machine facade: every simulated load/store goes through here.

Access path for a load/store (mirrors the hardware + instrumentation
pipeline of the paper's testbed):

1. charge instrumented cost (cost model × the current domain profile's
   load/store factor);
2. run the domain's software-hardening monitors (ASAN shadow checks,
   DFI write-set checks) — these may raise :class:`SHViolation`;
3. translate through the current context's address space — unmapped
   pages raise :class:`PageFault` (this is the whole of EPT isolation:
   a foreign VM's private pages simply are not mapped);
4. check page permissions;
5. check the page's protection key against the context's PKRU — a
   mismatch raises :class:`ProtectionFault` (MPK isolation);
6. move the bytes.

Device DMA (:meth:`Machine.dma_read` / :meth:`Machine.dma_write`)
bypasses PKRU — as on real hardware, where MPK does not constrain
devices — and never charges the CPU clock, which lets the workload
harness play the role of the external traffic generator.
"""

from __future__ import annotations

from repro.machine.address_space import AddressSpace, Permissions
from repro.machine.cpu import CPU, Context
from repro.machine.cycles import CostModel
from repro.machine.ept import SharedWindowAllocator, VMDomain
from repro.machine.faults import PageFault, ProtectionFault
from repro.machine.memory import PhysicalMemory
from repro.machine.mpk import pkru_readable, pkru_writable
from repro.obs import Observability


class Machine:
    """A simulated host: physical memory, one CPU, address spaces."""

    def __init__(
        self,
        cost: CostModel | None = None,
        phys_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        self.phys = PhysicalMemory(phys_bytes)
        self.cpu = CPU(cost)
        #: Observability: span tracer (disabled by default) + metrics
        #: registry (shared with the CPU).  See :mod:`repro.obs`.
        self.obs = Observability(self.cpu)
        self.spaces: dict[str, AddressSpace] = {}
        self.vm_domains: dict[str, VMDomain] = {}
        self._shared_windows = SharedWindowAllocator(self.phys)
        #: Resilience fault injector (:mod:`repro.resilience`), or None.
        #: Hook sites (gate crossings, allocators, the scheduler, VM
        #: notifications) consult it only when armed; the common path
        #: pays a single attribute check.
        self.injector = None

    @property
    def cost(self) -> CostModel:
        """The active cost model."""
        return self.cpu.cost

    # --- topology ---------------------------------------------------------

    def new_address_space(self, name: str) -> AddressSpace:
        """Create a named address space (MPK backend uses exactly one)."""
        if name in self.spaces:
            raise ValueError(f"address space {name!r} already exists")
        space = AddressSpace(name, self.phys)
        self.spaces[name] = space
        return space

    def new_vm_domain(self, name: str) -> VMDomain:
        """Create a VM domain (EPT backend: one per compartment)."""
        if name in self.vm_domains:
            raise ValueError(f"VM domain {name!r} already exists")
        domain = VMDomain(len(self.vm_domains), name, self.phys)
        self.vm_domains[name] = domain
        self.spaces[domain.space.name] = domain.space
        return domain

    def map_shared_window(
        self,
        domains: list[VMDomain],
        size: int,
        perms: Permissions = Permissions.RW,
    ) -> int:
        """Map a shared window at identical VAs into all given VMs."""
        return self._shared_windows.map_shared(domains, size, perms)

    # --- checked access -----------------------------------------------------

    def load(self, vaddr: int, size: int) -> bytes:
        """Checked read of ``size`` bytes by the current context."""
        cpu = self.cpu
        context = cpu.current
        profile = context.profile
        cpu.charge(
            (cpu.cost.mem_op_ns + size * cpu.cost.mem_byte_ns) * profile.load_factor
        )
        cpu.bump("loads")
        cpu.bump("load_bytes", size)
        for monitor in profile.monitors:
            monitor(self, "load", vaddr, size)
        if context.capabilities is not None:
            cpu.charge(cpu.cost.cheri_check_ns)
            context.capabilities.check(vaddr, size, "load")
        chunks = []
        for chunk_va, chunk_size, entry in context.address_space.iter_range(
            vaddr, size
        ):
            if not entry.perms & Permissions.READ:
                raise PageFault(chunk_va, "read", "page not readable")
            if context.capabilities is None and not pkru_readable(
                context.pkru, entry.pkey
            ):
                raise ProtectionFault(chunk_va, "read", entry.pkey, context.label)
            paddr = (entry.frame << 12) | (chunk_va & 0xFFF)
            chunks.append(self.phys.read(paddr, chunk_size))
        return b"".join(chunks)

    def store(self, vaddr: int, payload: bytes) -> None:
        """Checked write of ``payload`` by the current context."""
        cpu = self.cpu
        context = cpu.current
        profile = context.profile
        size = len(payload)
        cpu.charge(
            (cpu.cost.mem_op_ns + size * cpu.cost.mem_byte_ns) * profile.store_factor
        )
        cpu.bump("stores")
        cpu.bump("store_bytes", size)
        for monitor in profile.monitors:
            monitor(self, "store", vaddr, size)
        if context.capabilities is not None:
            cpu.charge(cpu.cost.cheri_check_ns)
            context.capabilities.check(vaddr, size, "store")
        offset = 0
        for chunk_va, chunk_size, entry in context.address_space.iter_range(
            vaddr, size
        ):
            if not entry.perms & Permissions.WRITE:
                raise PageFault(chunk_va, "write", "page not writable")
            if context.capabilities is None and not pkru_writable(
                context.pkru, entry.pkey
            ):
                raise ProtectionFault(chunk_va, "write", entry.pkey, context.label)
            paddr = (entry.frame << 12) | (chunk_va & 0xFFF)
            self.phys.write(paddr, payload[offset : offset + chunk_size])
            offset += chunk_size

    def copy(self, dst: int, src: int, size: int) -> None:
        """Checked memory-to-memory copy (one load + one store)."""
        self.store(dst, self.load(src, size))

    def fill(self, vaddr: int, value: int, size: int) -> None:
        """Checked memset."""
        self.store(vaddr, bytes([value & 0xFF]) * size)

    # --- unchecked / device access ---------------------------------------------

    def dma_write(self, space: AddressSpace, vaddr: int, payload: bytes) -> None:
        """Device write: translates via ``space``, bypasses PKRU and cost."""
        offset = 0
        for chunk_va, chunk_size, entry in space.iter_range(vaddr, len(payload)):
            paddr = (entry.frame << 12) | (chunk_va & 0xFFF)
            self.phys.write(paddr, payload[offset : offset + chunk_size])
            offset += chunk_size

    def dma_read(self, space: AddressSpace, vaddr: int, size: int) -> bytes:
        """Device read: translates via ``space``, bypasses PKRU and cost."""
        chunks = []
        for chunk_va, chunk_size, entry in space.iter_range(vaddr, size):
            paddr = (entry.frame << 12) | (chunk_va & 0xFFF)
            chunks.append(self.phys.read(paddr, chunk_size))
        return b"".join(chunks)

    # --- context helpers --------------------------------------------------------

    def boot_context(self, space: AddressSpace, label: str = "boot") -> Context:
        """Push and return an all-access context on ``space``."""
        context = Context(address_space=space, label=label)
        self.cpu.push_context(context)
        return context
