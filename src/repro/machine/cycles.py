"""The cost model: simulated nanoseconds per machine operation.

The paper's evaluation ran on a Xeon Silver 4110 at 2.1 GHz; all
constants here are expressed in nanoseconds within that frame of
reference.  Absolute values are calibrated so that the *shapes* of the
paper's figures reproduce (who wins, by what factor, where crossovers
fall) — see EXPERIMENTS.md for the paper-vs-measured record.

Every knob is a public dataclass field so that benchmarks and the
design-space explorer can evaluate "what if" hardware (e.g. slower
WRPKRU, faster inter-VM notification) without code changes.
"""

from __future__ import annotations

import dataclasses

#: Clock frequency of the paper's testbed (Xeon Silver 4110), in GHz.
PAPER_CLOCK_GHZ = 2.1


@dataclasses.dataclass
class CostModel:
    """Simulated cost, in nanoseconds, of each machine operation.

    Grouped by the subsystem that charges them.  The defaults are the
    calibrated values used by the benchmark suite.
    """

    # --- memory system -------------------------------------------------
    #: Fixed cost of one load/store instruction (issue + L1 hit).
    mem_op_ns: float = 1.0
    #: Streaming cost per byte moved (bulk copies, checksums).
    mem_byte_ns: float = 0.2

    # --- control flow ---------------------------------------------------
    #: A direct (same-compartment) cross-library function call.
    call_ns: float = 3.0
    #: Return from a cross-library call.
    ret_ns: float = 1.5

    # --- MPK hardware ---------------------------------------------------
    #: One WRPKRU instruction (ERIM reports 11-30 cycles; ~13 ns at 2.1 GHz).
    wrpkru_ns: float = 13.0
    #: Reading PKRU (RDPKRU).
    rdpkru_ns: float = 2.0
    #: Clearing scratch registers on a domain switch (security option).
    reg_clear_ns: float = 7.0
    #: Switching to a per-compartment stack (switched-stack gate):
    #: stack pointer swap, TLS adjustment, frame setup (HODOR-class
    #: crossings are several times an ERIM crossing).
    stack_switch_ns: float = 45.0
    #: Fixed bookkeeping either MPK gate performs per crossing
    #: (entry validation, gate trampoline).
    gate_dispatch_ns: float = 8.0

    # --- CHERI-style capability hardware -----------------------------------
    #: Domain crossing via a capability call (CInvoke-class sealed-
    #: capability transfer): cheaper than an MPK register dance.
    cheri_crossing_ns: float = 9.0
    #: Deriving/installing one bounded capability for a pointer
    #: argument at a gate.
    cheri_grant_ns: float = 2.5
    #: Per-access capability bounds check (hardware-parallel on real
    #: CHERI; a small tax in the model).
    cheri_check_ns: float = 0.3

    # --- VM / EPT backend -------------------------------------------------
    #: One-way cross-VM notification + remote vCPU dispatch (event
    #: channel signal, VM exit/entry, wakeup).  A round-trip RPC pays
    #: twice this plus marshalling.
    vm_notify_ns: float = 2400.0
    #: Per-byte marshalling into the shared heap for VM RPC arguments.
    vm_copy_byte_ns: float = 0.09

    # --- scheduler -------------------------------------------------------
    #: Context switch of the baseline C cooperative scheduler
    #: (paper: 76.6 ns).
    ctx_switch_ns: float = 76.6
    #: Evaluating one pre/post-condition contract clause of the verified
    #: scheduler.  The verified context switch checks several clauses;
    #: calibrated so the switch totals ~218.6 ns as in the paper.
    contract_check_ns: float = 17.75
    #: Enqueue/dequeue on a scheduler wait queue (block/wake paths).
    waitq_op_ns: float = 9.0

    # --- allocator ---------------------------------------------------------
    #: Uninstrumented malloc fast path.
    alloc_ns: float = 21.0
    #: Uninstrumented free fast path.
    free_ns: float = 16.0

    # --- synchronisation -----------------------------------------------------
    #: Semaphore P/V fast path (no contention), excluding gate crossings.
    sem_op_ns: float = 7.0

    # --- filesystem -------------------------------------------------------------
    #: Fixed cost per VFS operation (path resolution, inode lookup).
    fs_op_ns: float = 150.0

    # --- block device -------------------------------------------------------
    #: Fixed cost per block-device command (submit, doorbell, completion
    #: handling for one sector in the write-back cache).
    blk_op_ns: float = 600.0
    #: Per-byte transfer cost to/from the device (NVMe-class streaming).
    blk_byte_ns: float = 0.05
    #: A flush barrier: drain the device write cache so the acknowledged
    #: data is durable (charged once per ``blk_flush`` on top of the
    #: per-sector writeback costs).
    blk_flush_ns: float = 2_500.0

    # --- network stack -----------------------------------------------------
    #: Fixed per-packet processing (header parse/build, demux).
    pkt_fixed_ns: float = 160.0
    #: Per-byte payload processing in the stack (checksum offloaded;
    #: residual per-byte work), charged on top of explicit copies.
    pkt_byte_ns: float = 0.03
    #: NIC ring doorbell / descriptor handling per packet.
    nic_op_ns: float = 60.0
    #: Socket-layer fixed cost per recv/send call (demux, state update,
    #: the uk_socket/VFS-ish path).
    sock_op_ns: float = 75.0

    # --- the wire ---------------------------------------------------------------
    #: Per-byte serialisation delay of the link.  Makes line rate — not
    #: the CPU — the bottleneck for large transfers, which is why all
    #: isolation configurations converge at large buffer sizes in
    #: Figure 3 (absolute rates are calibrated for shape, not to match
    #: the paper's testbed NIC).
    wire_byte_ns: float = 0.78
    #: Per-packet framing overhead on the wire.
    wire_pkt_ns: float = 20.0

    # --- resilience --------------------------------------------------------------
    #: Time to bring a failed compartment back into service under the
    #: ``restart-with-backoff`` policy (state re-init at the boundary;
    #: a microkernel-style service restart, not a full reboot).
    compartment_restart_ns: float = 5_000.0
    #: Time a VM-RPC gate waits before concluding a notification was
    #: lost and resending it (event-channel watchdog; multiplied by the
    #: gate's exponential backoff factor per retry).
    vm_rpc_timeout_ns: float = 12_000.0

    # --- software hardening multipliers / costs ------------------------------
    # SH techniques do not charge flat costs; they scale the memory ops
    # of the compartments they are applied to and add per-event checks.
    #: ASAN: multiplier on load/store cost in hardened compartments
    #: (KASAN-class instrumentation; kernel sanitizers run several
    #: times slower on memory-bound paths).
    asan_mem_factor: float = 4.4
    #: ASAN: extra malloc cost (redzone poisoning, quarantine).
    asan_alloc_extra_ns: float = 95.0
    #: ASAN: extra free cost.
    asan_free_extra_ns: float = 70.0
    #: ASAN: shadow-memory check per access (flat, on top of factor).
    asan_check_ns: float = 1.1
    #: DFI: multiplier on store cost (write-set check).
    dfi_store_factor: float = 2.1
    #: CFI: per indirect/cross-library call target check.
    cfi_check_ns: float = 4.5
    #: UBSAN: multiplier on generic compute (modelled on mem ops).
    ubsan_mem_factor: float = 1.35
    #: MTE: multiplier on load/store cost (hardware tag checks are
    #: nearly free compared to ASAN's software shadow).
    mte_mem_factor: float = 1.25
    #: MTE: extra malloc cost (granule tag writes).
    mte_alloc_extra_ns: float = 14.0
    #: MTE: extra free cost (retagging).
    mte_free_extra_ns: float = 10.0
    #: Stack protector: canary write+check per function entered.
    stackprot_call_ns: float = 2.4
    #: SafeStack: per-call cost of maintaining the unsafe stack.
    safestack_call_ns: float = 1.8

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every cost multiplied by ``factor``.

        Useful for modelling a uniformly faster/slower machine in
        explorer what-if studies.
        """
        values = {
            field.name: getattr(self, field.name) * factor
            for field in dataclasses.fields(self)
        }
        return CostModel(**values)

    def replace(self, **overrides: float) -> "CostModel":
        """Return a copy with selected fields overridden."""
        return dataclasses.replace(self, **overrides)


#: Cost model used when no explicit model is supplied.
DEFAULT_COST_MODEL = CostModel()
