"""Physical memory: a flat byte store carved into 4 KiB frames."""

from __future__ import annotations

from repro.machine.faults import OutOfMemoryError

#: Page/frame size in bytes (x86-64 base pages).
PAGE_SIZE = 4096
#: log2(PAGE_SIZE).
PAGE_SHIFT = 12


def page_align_up(value: int) -> int:
    """Round ``value`` up to the next page boundary."""
    return (value + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def page_align_down(value: int) -> int:
    """Round ``value`` down to a page boundary."""
    return value & ~(PAGE_SIZE - 1)


class PhysicalMemory:
    """Flat simulated physical memory with a frame allocator.

    Frames are handed out by a bump allocator with a free list so that
    unmapped regions can be recycled.  All byte content lives in one
    ``bytearray`` indexed by physical address; :attr:`view` is a cached
    ``memoryview`` over it so readers can slice without the double copy
    a ``bytes(bytearray[...])`` round-trip costs.
    """

    def __init__(self, size_bytes: int = 64 * 1024 * 1024) -> None:
        if size_bytes <= 0 or size_bytes % PAGE_SIZE != 0:
            raise ValueError("physical memory size must be a positive page multiple")
        self.size = size_bytes
        self.data = bytearray(size_bytes)
        #: Zero-copy window over :attr:`data`; slicing it is free and
        #: ``bytes(view[a:b])`` copies exactly once.
        self.view = memoryview(self.data)
        self._next_frame = 0
        self._free_frames: list[int] = []
        self.num_frames = size_bytes >> PAGE_SHIFT

    def alloc_frame(self) -> int:
        """Allocate one frame; returns the frame number."""
        if self._free_frames:
            return self._free_frames.pop()
        if self._next_frame >= self.num_frames:
            raise OutOfMemoryError("physical memory exhausted")
        frame = self._next_frame
        self._next_frame += 1
        return frame

    def alloc_frames(self, count: int) -> list[int]:
        """Allocate ``count`` frames (not necessarily contiguous).

        All-or-nothing: if memory runs out partway, the frames already
        taken are rolled back onto the free list before the
        :class:`OutOfMemoryError` propagates, so a failed bulk request
        never leaks frames.
        """
        if count < 0:
            raise ValueError("frame count must be non-negative")
        frames: list[int] = []
        try:
            for _ in range(count):
                frames.append(self.alloc_frame())
        except OutOfMemoryError:
            while frames:
                self._free_frames.append(frames.pop())
            raise
        return frames

    def free_frame(self, frame: int) -> None:
        """Return a frame to the allocator and scrub its contents."""
        if not 0 <= frame < self._next_frame:
            raise ValueError(f"invalid frame {frame}")
        base = frame << PAGE_SHIFT
        self.data[base : base + PAGE_SIZE] = bytes(PAGE_SIZE)
        self._free_frames.append(frame)

    def read(self, paddr: int, size: int) -> bytes:
        """Read ``size`` bytes at physical address ``paddr``.

        Returns immutable ``bytes`` built from the cached memoryview —
        one copy, not the two a bytearray-slice round-trip would cost.
        """
        if paddr < 0 or paddr + size > self.size:
            raise ValueError(f"physical read out of range: {paddr:#x}+{size}")
        return bytes(self.view[paddr : paddr + size])

    def read_view(self, paddr: int, size: int) -> memoryview:
        """Zero-copy read-only window at ``paddr``.

        The view aliases live memory: it reflects later writes and must
        not be held across them by callers expecting a snapshot.
        """
        if paddr < 0 or paddr + size > self.size:
            raise ValueError(f"physical read out of range: {paddr:#x}+{size}")
        return self.view[paddr : paddr + size].toreadonly()

    def write(self, paddr: int, payload) -> None:
        """Write ``payload`` (any bytes-like) at physical address ``paddr``."""
        if paddr < 0 or paddr + len(payload) > self.size:
            raise ValueError(f"physical write out of range: {paddr:#x}+{len(payload)}")
        self.data[paddr : paddr + len(payload)] = payload

    @property
    def frames_allocated(self) -> int:
        """Number of frames currently handed out."""
        return self._next_frame - len(self._free_frames)
