"""VM/EPT-style isolation: disjoint address spaces with a shared window.

The paper's VM backend generates one VM image per compartment; each VM
has its own scheduler and allocator, and a shared memory area is mapped
at an *identical virtual address* in every VM so pointers into shared
structures remain valid.  :class:`VMDomain` models one such VM.
Isolation is structural: a VM simply has no mapping for another VM's
private memory, so any stray access page-faults.
"""

from __future__ import annotations

from repro.machine.address_space import AddressSpace, Permissions
from repro.machine.memory import PhysicalMemory, page_align_up


class VMDomain:
    """One virtual machine: a private address space plus shared windows."""

    def __init__(self, vm_id: int, name: str, phys: PhysicalMemory) -> None:
        self.vm_id = vm_id
        self.name = name
        self.space = AddressSpace(f"vm:{name}", phys)
        #: (vaddr, size) of every shared window mapped into this VM.
        self.shared_windows: list[tuple[int, int]] = []
        #: Event-channel sequence number of the last notification
        #: posted toward this VM; RPC gates use it to detect and
        #: discard duplicated signals.
        self.notify_seq: int = 0
        #: Delivery accounting for the inter-VM notification line.
        self.notifications: int = 0
        self.dropped_notifications: int = 0
        self.duplicate_notifications: int = 0

    def notify(self, injector=None) -> str:
        """Post one event-channel notification toward this VM.

        Returns the delivery verdict: ``"delivered"``, ``"dropped"``
        (signal lost in flight — the caller's RPC layer must detect the
        loss via timeout and resend) or ``"duplicated"`` (the signal
        arrived twice; the receiver discards the second copy by
        sequence number).  Only a resilience ``injector`` ever makes
        the line lossy; without one, delivery is perfect.
        """
        self.notify_seq += 1
        self.notifications += 1
        verdict = "delivered"
        if injector is not None:
            verdict = injector.on_vm_notify(self)
        if verdict == "dropped":
            self.dropped_notifications += 1
        elif verdict == "duplicated":
            self.duplicate_notifications += 1
        return verdict

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VMDomain({self.vm_id}, {self.name!r})"


class SharedWindowAllocator:
    """Allocates identical-VA shared windows across a set of VMs.

    Virtual addresses for shared windows come from a dedicated range
    above every VM's private range so a fixed mapping never collides
    with private reservations.
    """

    #: Start of the cross-VM shared virtual range.
    SHARED_BASE = 0x9000_0000
    #: End of the cross-VM shared virtual range.
    SHARED_LIMIT = 0xA000_0000

    def __init__(self, phys: PhysicalMemory) -> None:
        self._phys = phys
        self._next_va = self.SHARED_BASE

    def map_shared(
        self,
        domains: list[VMDomain],
        size: int,
        perms: Permissions = Permissions.RW,
    ) -> int:
        """Map one new shared window into every domain; returns its VA."""
        if not domains:
            raise ValueError("at least one domain required")
        size = page_align_up(size)
        vaddr = self._next_va
        if vaddr + size > self.SHARED_LIMIT:
            raise ValueError("shared window range exhausted")
        self._next_va = vaddr + size
        frames = self._phys.alloc_frames(size // 4096)
        for domain in domains:
            domain.space.map_frames(vaddr, frames, perms)
            domain.shared_windows.append((vaddr, size))
        return vaddr
