"""Fault and error types raised by the simulated machine.

The hierarchy mirrors how a real deployment distinguishes failure
sources: hardware faults (page faults, protection-key violations),
software-hardening detections (ASAN/CFI style aborts), contract
violations at verified-component boundaries, and build/gate wiring
errors.
"""

from __future__ import annotations


class MachineError(Exception):
    """Base class for every error raised by the simulated machine."""


class OutOfMemoryError(MachineError):
    """Physical frame or virtual address space exhaustion."""


class PageFault(MachineError):
    """Access to an unmapped page or one lacking the needed permission.

    Attributes:
        vaddr: faulting virtual address.
        access: "read", "write" or "exec".
    """

    def __init__(self, vaddr: int, access: str, detail: str = "") -> None:
        self.vaddr = vaddr
        self.access = access
        message = f"page fault: {access} at {vaddr:#x}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class ProtectionFault(MachineError):
    """A protection-domain violation (MPK pkey check or EPT boundary).

    Raised when the current execution context attempts an access its
    PKRU register (or VM mapping) does not permit.  This is the
    hardware-isolation analogue of a #PF with PK bit set.

    Attributes:
        vaddr: faulting virtual address.
        access: "read" or "write".
        pkey: protection key of the target page (``None`` for EPT
            boundary violations, where the page simply is not mapped in
            the accessor's VM).
    """

    def __init__(
        self, vaddr: int, access: str, pkey: int | None = None, detail: str = ""
    ) -> None:
        self.vaddr = vaddr
        self.access = access
        self.pkey = pkey
        key = f" pkey={pkey}" if pkey is not None else ""
        message = f"protection fault: {access} at {vaddr:#x}{key}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class SHViolation(MachineError):
    """A software-hardening runtime detected a memory-safety violation.

    Raised by ASAN redzone checks, stack-protector canary checks, CFI
    call-target checks, DFI write-set checks, and UBSAN checks.  The
    ``technique`` attribute names the detector.
    """

    def __init__(self, technique: str, detail: str) -> None:
        self.technique = technique
        super().__init__(f"{technique}: {detail}")


class ContractViolation(MachineError):
    """A pre- or post-condition of a verified component failed at runtime.

    The paper's Dafny scheduler has statically proven contracts; when it
    is embedded alongside untrusted code, boundary glue re-checks the
    pre-conditions at runtime.  This exception is that check firing.
    """

    def __init__(self, component: str, condition: str) -> None:
        self.component = component
        self.condition = condition
        super().__init__(f"contract violation in {component}: {condition}")


class GateError(MachineError):
    """Gate wiring or invocation error (unknown export, bad channel)."""


class BoundaryViolation(MachineError):
    """An API boundary guard rejected a cross-compartment call.

    Raised by the auto-generated trust-boundary wrappers (paper §5,
    "isolation alone is not enough"): a precondition on the callee's
    API failed, or a pointer argument referenced memory the caller may
    not legitimately share (a confused-deputy attempt).
    """

    def __init__(self, callee: str, fn: str, detail: str) -> None:
        self.callee = callee
        self.fn = fn
        super().__init__(f"boundary check failed for {callee}.{fn}: {detail}")
