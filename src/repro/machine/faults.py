"""Fault and error types raised by the simulated machine.

The hierarchy mirrors how a real deployment distinguishes failure
sources: hardware faults (page faults, protection-key violations),
software-hardening detections (ASAN/CFI style aborts), contract
violations at verified-component boundaries, and build/gate wiring
errors.

Taxonomy — who raises what, and what callers should catch
---------------------------------------------------------

- :class:`GateError` is a *wiring* error: the call never happened
  (unknown export, blocking/non-blocking mismatch, bad channel
  construction).  It indicates a bug or misuse on the caller's side,
  never a crash of the callee, and is therefore **never** translated
  into :class:`CompartmentFailure`.
- :class:`BoundaryViolation` is an API guard *rejecting* a call before
  it runs (paper §5 wrappers).  Like ``GateError``, the callee never
  executed, so it is not a compartment failure either.
- :class:`ProtectionFault`, :class:`PageFault`, :class:`SHViolation`,
  :class:`ContractViolation`, :class:`OutOfMemoryError` and
  :class:`InjectedFault` are faults *inside* a protection domain.
  When one escapes a compartment through a boundary gate whose callee
  has a containment policy (``isolate`` / ``restart-with-backoff``),
  the gate translates it into :class:`CompartmentFailure` — callers
  catch that one type instead of every backend-specific fault.  Under
  the default ``propagate`` policy the raw fault propagates unchanged
  (whole-image crash semantics).
- :class:`RPCTimeout` is a transient *channel* fault: a VM-RPC
  notification was lost and retries were exhausted.  The callee may be
  perfectly healthy, so it is reported as its own type.

``CONTAINABLE_FAULTS`` is the tuple gates and the scheduler use for
the translation decision.
"""

from __future__ import annotations

__all__ = [
    "MachineError",
    "OutOfMemoryError",
    "PageFault",
    "ProtectionFault",
    "SHViolation",
    "ContractViolation",
    "GateError",
    "BoundaryViolation",
    "InjectedFault",
    "PowerFailure",
    "RPCTimeout",
    "CompartmentFailure",
    "CONTAINABLE_FAULTS",
]


class MachineError(Exception):
    """Base class for every error raised by the simulated machine."""


class OutOfMemoryError(MachineError):
    """Physical frame or virtual address space exhaustion."""


class PageFault(MachineError):
    """Access to an unmapped page or one lacking the needed permission.

    Attributes:
        vaddr: faulting virtual address.
        access: "read", "write" or "exec".
    """

    def __init__(self, vaddr: int, access: str, detail: str = "") -> None:
        self.vaddr = vaddr
        self.access = access
        message = f"page fault: {access} at {vaddr:#x}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class ProtectionFault(MachineError):
    """A protection-domain violation (MPK pkey check or EPT boundary).

    Raised when the current execution context attempts an access its
    PKRU register (or VM mapping) does not permit.  This is the
    hardware-isolation analogue of a #PF with PK bit set.

    Attributes:
        vaddr: faulting virtual address.
        access: "read" or "write".
        pkey: protection key of the target page (``None`` for EPT
            boundary violations, where the page simply is not mapped in
            the accessor's VM).
    """

    def __init__(
        self, vaddr: int, access: str, pkey: int | None = None, detail: str = ""
    ) -> None:
        self.vaddr = vaddr
        self.access = access
        self.pkey = pkey
        key = f" pkey={pkey}" if pkey is not None else ""
        message = f"protection fault: {access} at {vaddr:#x}{key}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class SHViolation(MachineError):
    """A software-hardening runtime detected a memory-safety violation.

    Raised by ASAN redzone checks, stack-protector canary checks, CFI
    call-target checks, DFI write-set checks, and UBSAN checks.  The
    ``technique`` attribute names the detector.
    """

    def __init__(self, technique: str, detail: str) -> None:
        self.technique = technique
        super().__init__(f"{technique}: {detail}")


class ContractViolation(MachineError):
    """A pre- or post-condition of a verified component failed at runtime.

    The paper's Dafny scheduler has statically proven contracts; when it
    is embedded alongside untrusted code, boundary glue re-checks the
    pre-conditions at runtime.  This exception is that check firing.
    """

    def __init__(self, component: str, condition: str) -> None:
        self.component = component
        self.condition = condition
        super().__init__(f"contract violation in {component}: {condition}")


class GateError(MachineError):
    """Gate wiring or invocation error (unknown export, bad channel).

    The call never reached the callee, so this is never translated
    into :class:`CompartmentFailure`.
    """


class BoundaryViolation(MachineError):
    """An API boundary guard rejected a cross-compartment call.

    Raised by the auto-generated trust-boundary wrappers (paper §5,
    "isolation alone is not enough"): a precondition on the callee's
    API failed, or a pointer argument referenced memory the caller may
    not legitimately share (a confused-deputy attempt).  The callee
    never executed, so this is never a :class:`CompartmentFailure`.
    """

    def __init__(self, callee: str, fn: str, detail: str) -> None:
        self.callee = callee
        self.fn = fn
        super().__init__(f"boundary check failed for {callee}.{fn}: {detail}")


class InjectedFault(MachineError):
    """A fault deliberately fired by the resilience harness.

    Models a software crash inside a compartment (panic, assertion
    failure, resource exhaustion) at one of the named injection sites
    of :mod:`repro.resilience`.  The ``site`` attribute names the site
    ("gate-crash", "alloc-exhaustion", ...).
    """

    def __init__(self, site: str, detail: str = "") -> None:
        self.site = site
        message = f"injected fault at {site}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class PowerFailure(MachineError):
    """Whole-machine power loss (crash) — deliberately NOT containable.

    Unlike the per-compartment faults in ``CONTAINABLE_FAULTS``, a
    power failure takes down the entire simulated host: no gate policy
    can isolate it, so it propagates raw through gates and the
    scheduler out to the campaign driver, which models the reboot
    (rebuild the image against the surviving :class:`DiskMedium`
    contents and re-run recovery).  The block layer decides *which*
    unflushed writes survive — torn, dropped, or reordered —
    deterministically from the campaign seed.

    Attributes:
        site: injection site that fired ("blk-torn-write", ...).
    """

    def __init__(self, site: str, detail: str = "") -> None:
        self.site = site
        message = f"power failure at {site}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class RPCTimeout(MachineError):
    """A VM-RPC notification was lost and retries were exhausted.

    Transient channel fault of the VM backend: the event-channel
    signal toward the callee VM was dropped more times than the gate's
    retry budget allows.  The callee itself may be healthy — this is
    a communication failure, not a compartment crash, and is reported
    as its own type (not translated to :class:`CompartmentFailure`).

    Attributes:
        edge: "caller->callee" label of the failing channel.
        attempts: notifications sent before giving up.
    """

    def __init__(self, edge: str, attempts: int) -> None:
        self.edge = edge
        self.attempts = attempts
        super().__init__(
            f"vm-rpc notification to {edge} lost after {attempts} attempts"
        )


class CompartmentFailure(MachineError):
    """A compartment crashed; the failure was stopped at its boundary.

    Gates (and the scheduler, for a thread crashing inside its home
    compartment) translate every fault in ``CONTAINABLE_FAULTS`` into
    this type when the failing compartment's policy is ``isolate`` or
    ``restart-with-backoff`` — the typed, backend-independent error
    callers handle instead of catching hardware-specific faults.

    Attributes:
        compartment: name of the failed compartment.
        cause: the original fault (also chained as ``__cause__``).
    """

    def __init__(
        self,
        compartment: str,
        cause: BaseException | None = None,
        detail: str = "",
    ) -> None:
        self.compartment = compartment
        self.cause = cause
        message = f"compartment {compartment!r} failed"
        if cause is not None:
            message = f"{message}: {type(cause).__name__}: {cause}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


#: Faults that represent a crash *inside* a protection domain and are
#: therefore translated into :class:`CompartmentFailure` at containment
#: boundaries.  Deliberately excludes ``GateError`` and
#: ``BoundaryViolation`` (the callee never ran), ``RPCTimeout`` (a
#: channel fault) and ``CompartmentFailure`` itself (already
#: translated).
CONTAINABLE_FAULTS = (
    PageFault,
    ProtectionFault,
    SHViolation,
    ContractViolation,
    OutOfMemoryError,
    InjectedFault,
)
