"""Simulated hardware substrate for the FlexOS reproduction.

The paper evaluates FlexOS on real x86 hardware with Intel MPK and on
Xen/KVM virtual machines.  This package substitutes a deterministic,
byte-accurate simulated machine:

- :mod:`repro.machine.memory` — physical memory and frame allocation.
- :mod:`repro.machine.address_space` — page tables with permissions and
  protection keys.
- :mod:`repro.machine.mpk` — Memory Protection Keys semantics (PKRU).
- :mod:`repro.machine.ept` — VM/EPT-style disjoint address spaces with a
  shared region mapped at identical virtual addresses.
- :mod:`repro.machine.cpu` — the execution context stack and the
  simulated clock.
- :mod:`repro.machine.cycles` — the cost model that turns operations into
  simulated nanoseconds.
- :mod:`repro.machine.machine` — the facade tying it all together; every
  micro-library load/store goes through :class:`Machine` so protection
  violations fault for real.
"""

from repro.machine.address_space import AddressSpace, PageEntry, Permissions
from repro.machine.cpu import CPU, Context, DomainProfile
from repro.machine.cycles import CostModel
from repro.machine.ept import VMDomain
from repro.machine.faults import (
    ContractViolation,
    GateError,
    MachineError,
    OutOfMemoryError,
    PageFault,
    ProtectionFault,
    SHViolation,
)
from repro.machine.machine import Machine
from repro.machine.memory import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from repro.machine.mpk import (
    MPK_NUM_KEYS,
    PKEY_DEFAULT,
    pkru_all_access,
    pkru_deny_all,
    pkru_for_keys,
    pkru_readable,
    pkru_writable,
)

__all__ = [
    "AddressSpace",
    "CPU",
    "Context",
    "ContractViolation",
    "CostModel",
    "DomainProfile",
    "GateError",
    "Machine",
    "MachineError",
    "MPK_NUM_KEYS",
    "OutOfMemoryError",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageEntry",
    "PageFault",
    "Permissions",
    "PhysicalMemory",
    "PKEY_DEFAULT",
    "ProtectionFault",
    "SHViolation",
    "VMDomain",
    "pkru_all_access",
    "pkru_deny_all",
    "pkru_for_keys",
    "pkru_readable",
    "pkru_writable",
]
