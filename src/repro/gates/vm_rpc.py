"""The VM RPC gate: compartments in separate virtual machines.

The paper's toolchain "generates one VM image per compartment", with a
thin RPC layer over inter-VM notifications and a shared memory area
mapped at identical addresses in every VM.  A crossing therefore costs
two one-way notifications (call + return: event-channel signal, VM
exit/entry, remote dispatch) plus marshalling the argument words into
the shared area — microseconds instead of nanoseconds, which is why
Figure 3's VM-backend iperf only catches the baseline at ~32 KiB
buffers.  Strongest isolation: the callee VM simply has no mapping of
the caller's private pages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gates.base import Gate, GateOptions
from repro.machine.faults import GateError

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine


class VMRPCGate(Gate):
    """Synchronous RPC between per-compartment VMs."""

    KIND = "vm-rpc"
    EXTRA_COUNTER = "vm_rpcs"

    def __init__(
        self,
        machine: "Machine",
        caller_lib: "MicroLibrary",
        callee_lib: "MicroLibrary",
        options: GateOptions | None = None,
    ) -> None:
        super().__init__(machine, caller_lib, callee_lib, options)
        self.callee_comp: "Compartment" = callee_lib.compartment
        if self.callee_comp.vm_domain is None:
            raise GateError(
                f"VMRPCGate to {callee_lib.NAME}: compartment has no VM domain"
            )

    def _enter(self, fn: str, args: tuple) -> None:
        cpu = self.machine.cpu
        cost = self.machine.cost
        arg_bytes = max(1, len(args)) * self.options.word_bytes
        cpu.charge(cost.vm_notify_ns + arg_bytes * cost.vm_copy_byte_ns)
        cpu.push_context(
            self.callee_comp.make_context(label=f"rpc:{self.callee_lib.NAME}.{fn}")
        )

    def _exit(self) -> None:
        cpu = self.machine.cpu
        cost = self.machine.cost
        cpu.pop_context()
        cpu.charge(
            cost.vm_notify_ns
            + self.options.word_bytes * cost.vm_copy_byte_ns
            + cost.ret_ns
        )
