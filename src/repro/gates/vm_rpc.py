"""The VM RPC gate: compartments in separate virtual machines.

The paper's toolchain "generates one VM image per compartment", with a
thin RPC layer over inter-VM notifications and a shared memory area
mapped at identical addresses in every VM.  A crossing therefore costs
two one-way notifications (call + return: event-channel signal, VM
exit/entry, remote dispatch) plus marshalling the argument words into
the shared area — microseconds instead of nanoseconds, which is why
Figure 3's VM-backend iperf only catches the baseline at ~32 KiB
buffers.  Strongest isolation: the callee VM simply has no mapping of
the caller's private pages.

The notification line is where transient faults live: a dropped
event-channel signal would hang a naive RPC layer forever.  This gate
therefore resends after a watchdog timeout with exponential backoff
(``GateOptions.rpc_max_retries`` / ``rpc_backoff_factor``,
``CostModel.vm_rpc_timeout_ns``) and discards duplicated signals by
sequence number — transient losses degrade into latency instead of
crashing the image; sustained loss surfaces as a typed
:class:`~repro.machine.faults.RPCTimeout`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gates.base import Gate, GateOptions
from repro.machine.cpu import Context
from repro.machine.faults import GateError, RPCTimeout

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine


class VMRPCGate(Gate):
    """Synchronous RPC between per-compartment VMs."""

    KIND = "vm-rpc"
    EXTRA_COUNTER = "vm_rpcs"

    def __init__(
        self,
        machine: "Machine",
        caller_lib: "MicroLibrary",
        callee_lib: "MicroLibrary",
        options: GateOptions | None = None,
    ) -> None:
        super().__init__(machine, caller_lib, callee_lib, options)
        self.callee_comp: "Compartment" = callee_lib.compartment
        if self.callee_comp.vm_domain is None:
            raise GateError(
                f"VMRPCGate to {callee_lib.NAME}: compartment has no VM domain"
            )
        #: Resilience accounting for this channel.
        self.retries = 0
        self.duplicates_discarded = 0
        self._word_bytes = self.options.word_bytes

    def _plan_ctx_label(self, fn: str) -> str:
        return f"rpc:{self.callee_lib.NAME}.{fn}"

    def _notify(self, payload_bytes: int) -> None:
        """Send one notification, resending on loss until delivered.

        Every attempt charges the notify + copy cost; a lost attempt
        additionally charges the watchdog timeout (scaled by the
        exponential backoff factor) before the resend.  Exhausting the
        retry budget raises :class:`RPCTimeout` — a channel fault, not
        a compartment failure (see :mod:`repro.machine.faults`).
        """
        cpu = self.machine.cpu
        cost = self.machine.cost
        domain = self.callee_comp.vm_domain
        attempts = 0
        while True:
            cpu.charge(cost.vm_notify_ns + payload_bytes * cost.vm_copy_byte_ns)
            attempts += 1
            verdict = domain.notify(self.machine.injector)
            if verdict == "duplicated":
                # The signal arrived twice; the receiver discards the
                # spurious copy by sequence number.  Charge the extra
                # dispatch it wasted.
                self.duplicates_discarded += 1
                cpu.bump("vm_rpc_duplicates")
                cpu.charge(cost.vm_notify_ns)
                return
            if verdict != "dropped":
                return
            # Lost in flight: wait out the watchdog, back off, resend.
            if attempts > self.options.rpc_max_retries:
                cpu.bump("vm_rpc_timeouts")
                raise RPCTimeout(
                    f"{self.caller_lib.NAME}->{self.callee_lib.NAME}", attempts
                )
            self.retries += 1
            cpu.bump("vm_rpc_retries")
            cpu.charge(
                cost.vm_rpc_timeout_ns
                * self.options.rpc_backoff_factor ** (attempts - 1)
            )

    def _enter(self, fn: str, args: tuple) -> None:
        arg_bytes = max(1, len(args)) * self.options.word_bytes
        self._notify(arg_bytes)
        self.machine.cpu.push_context(
            self.callee_comp.make_context(label=f"rpc:{self.callee_lib.NAME}.{fn}")
        )

    def _exit(self) -> None:
        cpu = self.machine.cpu
        cost = self.machine.cost
        cpu.pop_context()
        self._notify(self.options.word_bytes)
        cpu.charge(cost.ret_ns)

    # --- crossing-plan fast path --------------------------------------------
    # The notification (with its retry/duplicate machinery) stays the
    # shared _notify; only the context construction is specialized.

    def _enter_fast(self, entry, args, cpu) -> None:
        self._notify(max(1, len(args)) * self._word_bytes)
        comp = self.callee_comp
        ctx = self._ctx_pool
        if ctx is None:
            ctx = Context(
                address_space=comp.address_space,
                pkru=comp.pkru_value,
                profile=comp.profile,
                label=entry.ctx_label,
                capabilities=comp.capabilities,
            )
        else:
            self._ctx_pool = None
            ctx.label = entry.ctx_label
            ctx.pkru = comp.pkru_value
        cpu.push_context(ctx)

    def _exit_fast(self, entry, cpu) -> None:
        ctx = cpu.pop_context()
        if self._ctx_pool is None:
            self._ctx_pool = ctx
        self._notify(self._word_bytes)
        cpu.charge(self._ret_ns)
