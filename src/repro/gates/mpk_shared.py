"""The MPK shared-stack gate (ERIM-like).

Heap and static memory are per-compartment (isolated by pkey); thread
stacks live in a domain shared by all compartments, so no stack switch
or argument copy is needed — the crossing is essentially two WRPKRU
instructions plus trampoline bookkeeping (and optional register
clearing).  Cheapest hardware-isolated gate; the trade-off is that any
compartment can read/write any thread's stack frames (the attack
surface ERIM accepts).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gates.base import Gate, GateOptions
from repro.machine.cpu import Context

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine


class MPKSharedStackGate(Gate):
    """Domain switch via PKRU write; stacks stay in a shared domain."""

    KIND = "mpk-shared"
    EXTRA_COUNTER = "mpk_crossings"

    def __init__(
        self,
        machine: "Machine",
        caller_lib: "MicroLibrary",
        callee_lib: "MicroLibrary",
        options: GateOptions | None = None,
    ) -> None:
        super().__init__(machine, caller_lib, callee_lib, options)
        self.callee_comp: "Compartment" = callee_lib.compartment
        # Fast-path constants: the same sums the slow path computes per
        # call, from the same (immutable) cost-model fields.
        self._switch_ns = self._switch_cost()
        self._wrpkru_ns = machine.cost.wrpkru_ns
        ns = machine.cost.ret_ns
        if self.options.clear_registers:
            ns += machine.cost.reg_clear_ns
        self._mpk_exit_ns = ns

    def _switch_cost(self) -> float:
        cost = self.machine.cost
        ns = cost.gate_dispatch_ns
        if self.options.clear_registers:
            ns += cost.reg_clear_ns
        return ns

    def _enter(self, fn: str, args: tuple) -> None:
        cpu = self.machine.cpu
        cpu.charge(self._switch_cost())
        # Enter the callee's domain: push its context carrying the
        # caller's PKRU, then perform the (sealed) WRPKRU — gates are
        # the only code authorised to issue it.
        context = self.callee_comp.make_context(
            label=f"{self.callee_lib.NAME}.{fn}"
        )
        context.pkru = cpu.current.pkru
        cpu.push_context(context)
        cpu.wrpkru(self.callee_comp.pkru_value, cpu.gate_token())

    def _exit(self) -> None:
        cpu = self.machine.cpu
        cpu.pop_context()
        cost = self.machine.cost
        # WRPKRU back to the caller's domain value.
        cpu.wrpkru(cpu.current.pkru, cpu.gate_token())
        ns = cost.ret_ns
        if self.options.clear_registers:
            ns += cost.reg_clear_ns
        cpu.charge(ns)

    # --- crossing-plan fast path --------------------------------------------
    # Same charge/bump sequence as _enter/_exit with the WRPKRU inlined:
    # the plan only runs while the tracer is off (observing → slow path)
    # and the gate holds the token by construction, so the tracer probe
    # and token identity check are the only elided steps — neither
    # touches simulated state.

    def _enter_fast(self, entry, args, cpu) -> None:
        cpu.charge(self._switch_ns)
        comp = self.callee_comp
        ctx = self._ctx_pool
        if ctx is None:
            ctx = Context(
                address_space=comp.address_space,
                pkru=cpu._contexts[-1].pkru,
                profile=comp.profile,
                label=entry.ctx_label,
                capabilities=comp.capabilities,
            )
        else:
            self._ctx_pool = None
            ctx.label = entry.ctx_label
            ctx.pkru = cpu._contexts[-1].pkru
        cpu.push_context(ctx)
        cpu.charge(self._wrpkru_ns)
        counters = self._counters
        counters["wrpkru"] = counters.get("wrpkru", 0.0) + 1.0
        ctx.pkru = comp.pkru_value

    def _exit_fast(self, entry, cpu) -> None:
        ctx = cpu.pop_context()
        if self._ctx_pool is None:
            self._ctx_pool = ctx
        cpu.charge(self._wrpkru_ns)
        counters = self._counters
        counters["wrpkru"] = counters.get("wrpkru", 0.0) + 1.0
        # The slow path re-writes the caller context's own PKRU value —
        # a semantic no-op, so nothing to assign here.
        cpu.charge(self._mpk_exit_ns)
