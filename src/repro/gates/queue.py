"""Asynchronous submission/completion-queue channels (batched crossings).

The paper's cost hierarchy makes gate crossings the dominant tax of
isolation — two WRPKRUs per MPK call, a VM notification per EPT call.
An io_uring-style queue pair amortises that tax: the caller appends
fixed-size submission entries (SQEs) to a ring in memory shared by
exactly the two endpoint compartments (a group-scoped heap,
:mod:`repro.libos.alloc.groupheap`), then rings the doorbell **once per
batch** — a single gate crossing through the wrapped backend.  The
callee drains the ring inside that one crossing and posts completion
entries (CQEs) to the completion ring, which the caller later polls
without crossing at all.

:class:`QueueChannel` wraps *any* boundary backend (``mpk-shared``,
``mpk-switched``, ``vm-rpc``, ``cheri``) — batching is orthogonal to
the isolation mechanism, exactly like guards and hardening.  Flush
policies bound the added latency:

- **batch** (``queue_batch``): auto-flush once this many submissions
  are pending;
- **max delay** (``queue_max_delay_ns``): the oldest submission is
  never delayed past this bound — a waiter parks on a scheduler timer
  at the deadline (:class:`~repro.libos.sched.base.WaitFlush`);
- **ring capacity** (``queue_depth``): a full ring forces a flush;
- **program order**: a *sync* ``invoke``/``invoke_gen`` on the same
  channel flushes first, so queued operations are never overtaken by a
  later synchronous call (reads observe queued writes).

Crash-mid-batch semantics follow :meth:`Gate.invoke_batch`: unacked
submissions are not durable — an op that faults gets its translated
failure in its completion, later ops in the batch abort with the same
failure, earlier results stand.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Generator

from repro.gates.base import (
    Channel,
    Completion,
    Gate,
    GateOptions,
    _require_factory,
)
from repro.libos.sched.base import WaitQueue
from repro.machine.faults import GateError

if TYPE_CHECKING:
    from repro.machine.machine import Machine


class QueueChannel(Channel):
    """Submission/completion rings over a wrapped boundary gate."""

    #: Fixed submission-queue entry size: opcode hash, ticket, and a
    #: cacheline-friendly argument area (pointers into shared memory).
    SQE_BYTES = 32
    #: Fixed completion-queue entry size: ticket, status, result word.
    CQE_BYTES = 16

    IS_BOUNDARY = True

    def __init__(
        self,
        machine: "Machine",
        inner: Gate,
        options: GateOptions | None = None,
    ) -> None:
        _require_factory(type(self))
        super().__init__()
        if not inner.IS_BOUNDARY:
            raise GateError(
                "queue channels amortise boundary crossings; "
                f"{inner.KIND!r} crosses no boundary (use it directly)"
            )
        self.machine = machine
        self.inner = inner
        self.options = options or inner.options
        self.KIND = f"queue:{inner.KIND}"
        # Re-point the inner gate's edge record at the compound kind so
        # doorbell crossings are attributed to the queue variant.
        self.caller_lib = inner.caller_lib
        self.callee_lib = inner.callee_lib
        inner._edge = machine.cpu.metrics.edge(
            inner.caller_lib.NAME, inner.callee_lib.NAME, self.KIND
        )
        self._pending: list[tuple[int, str, tuple]] = []
        self._oldest_ns: float | None = None
        self._sched = None
        self._closed = False
        self.completion_waitq = WaitQueue(
            f"cq:{inner.caller_lib.NAME}->{inner.callee_lib.NAME}"
        )
        self._metrics = machine.cpu.metrics
        self._batch_hist = self._metrics.histogram("queue.batch_size")
        self._depth_hist = self._metrics.histogram("queue.ring_depth")
        # Rings live in a shared heap scoped to exactly the two
        # endpoint compartments (per-pair shared region, paper §3).
        heaps = machine.group_heaps
        if heaps is None:
            from repro.libos.alloc.groupheap import GroupSharedHeaps

            heaps = machine.group_heaps = GroupSharedHeaps(machine)
        members = []
        for lib in (inner.caller_lib, inner.callee_lib):
            if lib.compartment is None:
                raise GateError(
                    f"queue channel endpoints must be installed; "
                    f"{lib.NAME} has no compartment"
                )
            members.append(lib.compartment)
        self._heap = heaps.get(members)
        depth = self.options.queue_depth
        if depth < 1:
            raise GateError("queue_depth must be at least 1")
        self._depth = depth
        self._sq_base = self._heap.allocator.malloc(depth * self.SQE_BYTES)
        self._cq_base = self._heap.allocator.malloc(depth * self.CQE_BYTES)
        self._sq_tail = 0
        self._cq_tail = 0
        self._cq_head = 0

    # --- ring bookkeeping -----------------------------------------------------

    @property
    def crossings(self) -> int:
        """Doorbell crossings paid so far (delegates to the gate)."""
        return self.inner.crossings

    def _sqe_addr(self, index: int) -> int:
        return self._sq_base + (index % self._depth) * self.SQE_BYTES

    def _cqe_addr(self, index: int) -> int:
        return self._cq_base + (index % self._depth) * self.CQE_BYTES

    @staticmethod
    def _descriptor(ticket: int, fn: str, size: int) -> bytes:
        """A deterministic fixed-size ring entry for ticket + opcode."""
        payload = (ticket & 0xFFFFFFFF).to_bytes(4, "little")
        payload += zlib.crc32(fn.encode()).to_bytes(4, "little")
        return payload.ljust(size, b"\x00")

    # --- async surface --------------------------------------------------------

    def capabilities(self) -> frozenset:
        return frozenset({"sync", "async", "batched"})

    def submit(self, fn: str, *args: Any) -> int:
        """Append one SQE; flushes on ring-full or batch-size policy."""
        # Entry-point enforcement happens at submission time so an
        # unknown or blocking export fails where the caller can see it,
        # not batches later inside someone else's flush.
        self.inner._lookup(fn, blocking=False)
        if len(self._pending) >= self._depth:
            self.flush()
        ticket = self._take_ticket()
        self.machine.store(
            self._sqe_addr(self._sq_tail),
            self._descriptor(ticket, fn, self.SQE_BYTES),
        )
        self._sq_tail += 1
        if not self._pending:
            self._oldest_ns = self.machine.cpu.clock_ns
        self._pending.append((ticket, fn, args))
        cpu = self.machine.cpu
        cpu.bump("queue.submitted")
        self._depth_hist.observe(len(self._pending))
        if len(self._pending) >= self.options.queue_batch:
            self.flush()
        return ticket

    def flush(self) -> int:
        """Ring the doorbell: one crossing executes the whole batch."""
        if not self._pending:
            return 0
        ops = self._pending
        self._pending = []
        self._oldest_ns = None
        # The callee's ring walk: one SQE load per drained submission.
        head = self._sq_tail - len(ops)
        for offset in range(len(ops)):
            self.machine.load(self._sqe_addr(head + offset), self.SQE_BYTES)
        try:
            completions = self.inner.invoke_batch(ops)
        except BaseException:
            # The doorbell itself failed (RPC timeout, propagate-policy
            # fault): nothing executed, so the batch stays pending and
            # a retry is legitimate.
            self._pending = ops + self._pending
            self._oldest_ns = self.machine.cpu.clock_ns
            raise
        for completion in completions:
            self.machine.store(
                self._cqe_addr(self._cq_tail),
                self._descriptor(completion.ticket, completion.fn, self.CQE_BYTES),
            )
            self._cq_tail += 1
        self._completed.extend(completions)
        cpu = self.machine.cpu
        cpu.bump("queue.doorbells")
        cpu.bump("queue.completions", len(completions))
        self._batch_hist.observe(len(ops))
        if self._sched is not None and len(self.completion_waitq):
            # Doorbell as a wake source: completion waiters resume via
            # the scheduler instead of polling the ring.
            woken = self._sched.wake_all(self.completion_waitq)
            cpu.bump("queue.wakes", woken)
        return len(ops)

    def poll(self, max_items: int | None = None) -> list[Completion]:
        """Drain ready completions; one CQE load per drained entry."""
        self.machine.cpu.bump("queue.polls")
        drained = super().poll(max_items)
        for _ in drained:
            self.machine.load(self._cqe_addr(self._cq_head), self.CQE_BYTES)
            self._cq_head += 1
        return drained

    @property
    def pending(self) -> int:
        return len(self._pending)

    def flush_deadline_ns(self) -> float | None:
        if self._oldest_ns is None or self.options.queue_max_delay_ns <= 0:
            return None
        return self._oldest_ns + self.options.queue_max_delay_ns

    def bind_scheduler(self, scheduler) -> None:
        self._sched = scheduler

    def close(self) -> None:
        """Flush outstanding work and return the rings to the heap."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        self._heap.allocator.free(self._sq_base)
        self._heap.allocator.free(self._cq_base)

    # --- sync surface: flush-before, so program order holds -------------------

    def invoke(self, fn: str, args: tuple) -> Any:
        self.flush()
        return self.inner.invoke(fn, args)

    def invoke_gen(self, fn: str, args: tuple) -> Generator:
        self.flush()
        return (yield from self.inner.invoke_gen(fn, args))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<QueueChannel {self.caller_lib.NAME}->{self.callee_lib.NAME} "
            f"over {self.inner.KIND} pending={len(self._pending)}>"
        )
