"""Gates: the interchangeable isolation backends of FlexOS.

A gate is what sits between two compartments: it validates the entry
point, performs the protection-domain switch, accounts its cost, and
copies arguments/returns.  The paper's Figure 2 lists the menu this
package implements:

- :class:`~repro.gates.funccall.DirectChannel` — plain function call
  (same compartment, no isolation);
- :class:`~repro.gates.mpk_shared.MPKSharedStackGate` — MPK with a
  shared stack domain (ERIM-like);
- :class:`~repro.gates.mpk_switched.MPKSwitchedStackGate` — MPK with
  per-compartment stacks switched at the boundary (HODOR-like);
- :class:`~repro.gates.vm_rpc.VMRPCGate` — RPC across VM/EPT
  boundaries (Xen/KVM-like).

All gates expose the same caller API (via ``Stub``), so swapping the
isolation backend never changes library code — FlexOS's core claim.
"""

from repro.gates.base import Channel, Completion, Gate, GateOptions
from repro.gates.cheri import CHERIGate
from repro.gates.funccall import DirectChannel, ProfileChannel
from repro.gates.guard import GuardedChannel
from repro.gates.mpk_shared import MPKSharedStackGate
from repro.gates.mpk_switched import MPKSwitchedStackGate
from repro.gates.queue import QueueChannel
from repro.gates.registry import (
    GATE_KINDS,
    make_channel,
    relative_crossing_cost,
)
from repro.gates.vm_rpc import VMRPCGate

__all__ = [
    "CHERIGate",
    "Channel",
    "Completion",
    "DirectChannel",
    "GATE_KINDS",
    "Gate",
    "GateOptions",
    "GuardedChannel",
    "MPKSharedStackGate",
    "MPKSwitchedStackGate",
    "ProfileChannel",
    "QueueChannel",
    "VMRPCGate",
    "make_channel",
    "relative_crossing_cost",
]
