"""The capability gate: CHERI-style domain crossings with delegation.

Figure 2's gate menu includes capability hardware ("e.g. protection
keys, capabilities [CHERI]").  This backend isolates compartments by
*reachability* rather than page tags: code can only dereference memory
covered by the capabilities its context holds.  A crossing is a sealed
capability invocation — cheaper than an MPK WRPKRU pair — and the gate
**delegates** bounded capabilities for the call's pointer arguments,
revoked automatically when the crossing returns (the callee context is
popped with its grants).

Libraries describe delegations in ``CAP_GRANTS``: export name → tuple
of ``(pointer_index, size_index_or_fixed)`` pairs, where the second
element is either the index of the length argument or, if negative,
``-fixed_size``.  Exports without grant metadata still work: the callee
can then only reach its own memory plus the shared area.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gates.base import Gate, GateOptions
from repro.machine.capabilities import base_capabilities
from repro.machine.cpu import Context
from repro.machine.faults import GateError

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine


class CHERIGate(Gate):
    """Capability invocation with per-call pointer delegation."""

    KIND = "cheri"
    EXTRA_COUNTER = "cheri_crossings"

    def __init__(
        self,
        machine: "Machine",
        caller_lib: "MicroLibrary",
        callee_lib: "MicroLibrary",
        options: GateOptions | None = None,
    ) -> None:
        super().__init__(machine, caller_lib, callee_lib, options)
        self.callee_comp: "Compartment" = callee_lib.compartment
        if self.callee_comp.capabilities is None:
            raise GateError(
                f"CHERIGate to {callee_lib.NAME}: compartment has no "
                f"capability set (build with backend='cheri')"
            )
        # Fast-path constants + per-export grant specs stashed on the
        # plan entries (CAP_GRANTS is class-level static metadata).
        cost = machine.cost
        self._crossing_ns = cost.cheri_crossing_ns
        self._grant_ns = cost.cheri_grant_ns
        self._cheri_exit_ns = cost.cheri_crossing_ns + cost.ret_ns
        if self._plan is not None:
            for fn, entry in self._plan.entries.items():
                entry.extra = tuple(callee_lib.CAP_GRANTS.get(fn, ()))

    def _plan_ctx_label(self, fn: str) -> str:
        return f"cap:{self.callee_lib.NAME}.{fn}"

    def _grants_for(self, fn: str, args: tuple):
        for pointer_index, size_spec in self.callee_lib.CAP_GRANTS.get(fn, ()):
            if pointer_index >= len(args):
                continue
            addr = args[pointer_index]
            if not isinstance(addr, int):
                continue
            if size_spec < 0:
                size = -size_spec
            elif size_spec < len(args) and isinstance(args[size_spec], int):
                size = args[size_spec]
            else:
                continue
            yield addr, size

    def _enter(self, fn: str, args: tuple) -> None:
        cpu = self.machine.cpu
        cost = self.machine.cost
        cpu.charge(cost.cheri_crossing_ns)
        capabilities = self.callee_comp.capabilities.derive()
        for addr, size in self._grants_for(fn, args):
            cpu.charge(cost.cheri_grant_ns)
            capabilities.grant(addr, size)
            cpu.bump("cap_grants")
        context = self.callee_comp.make_context(
            label=f"cap:{self.callee_lib.NAME}.{fn}"
        )
        context.capabilities = capabilities
        cpu.push_context(context)

    def _per_op_enter(self, fn: str, args: tuple) -> None:
        """Install one batched op's delegations on the live context.

        A batched crossing (queue channel doorbell) enters the callee
        domain once with no per-call pointers; each drained submission
        then delegates its own bounded capabilities here.  Grants
        accumulate over the batch and are revoked together when the
        batch context pops — the price of amortising the crossing is a
        batch-wide (rather than per-call) revocation epoch.
        """
        cpu = self.machine.cpu
        cost = self.machine.cost
        capabilities = cpu.current.capabilities
        for addr, size in self._grants_for(fn, args):
            cpu.charge(cost.cheri_grant_ns)
            capabilities.grant(addr, size)
            cpu.bump("cap_grants")

    def _exit(self) -> None:
        cpu = self.machine.cpu
        # Popping the context revokes every delegated capability.
        cpu.pop_context()
        cpu.charge(self.machine.cost.cheri_crossing_ns + self.machine.cost.ret_ns)

    # --- crossing-plan fast path --------------------------------------------

    def _apply_grants_fast(self, specs, args, capabilities, cpu) -> None:
        """Charge + install one call's delegations (``_grants_for``
        unrolled over the plan entry's precompiled specs)."""
        grant_ns = self._grant_ns
        counters = self._counters
        nargs = len(args)
        for pointer_index, size_spec in specs:
            if pointer_index >= nargs:
                continue
            addr = args[pointer_index]
            if not isinstance(addr, int):
                continue
            if size_spec < 0:
                size = -size_spec
            elif size_spec < nargs and isinstance(args[size_spec], int):
                size = args[size_spec]
            else:
                continue
            cpu.charge(grant_ns)
            capabilities.grant(addr, size)
            counters["cap_grants"] = counters.get("cap_grants", 0.0) + 1.0

    def _enter_fast(self, entry, args, cpu) -> None:
        cpu.charge(self._crossing_ns)
        comp = self.callee_comp
        capabilities = comp.capabilities.derive()
        if entry.extra:
            self._apply_grants_fast(entry.extra, args, capabilities, cpu)
        ctx = self._ctx_pool
        if ctx is None:
            ctx = Context(
                address_space=comp.address_space,
                pkru=comp.pkru_value,
                profile=comp.profile,
                label=entry.ctx_label,
                capabilities=capabilities,
            )
        else:
            self._ctx_pool = None
            ctx.label = entry.ctx_label
            ctx.pkru = comp.pkru_value
            ctx.capabilities = capabilities
        cpu.push_context(ctx)

    def _per_op_enter_fast(self, entry, args, cpu) -> None:
        if entry.extra:
            self._apply_grants_fast(
                entry.extra, args, cpu._contexts[-1].capabilities, cpu
            )

    def _exit_fast(self, entry, cpu) -> None:
        ctx = cpu.pop_context()
        if self._ctx_pool is None:
            self._ctx_pool = ctx
        cpu.charge(self._cheri_exit_ns)
