"""The MPK switched-stack gate (HODOR-like).

Heap, static memory *and stacks* are per-compartment.  Each crossing
switches to a per-thread stack owned by the target compartment, copies
the call's parameters onto it, and copies the return value back; stack
data that must be visible across the boundary is placed on the shared
heap.  Stronger isolation than the shared-stack gate at a higher
per-crossing cost — exactly the 1.4× vs 2.25× spread the paper's
Figure 5 measures for Redis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gates.base import GateOptions
from repro.gates.mpk_shared import MPKSharedStackGate

if TYPE_CHECKING:
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine


class MPKSwitchedStackGate(MPKSharedStackGate):
    """MPK gate with per-compartment stacks and parameter copying."""

    KIND = "mpk-switched"

    def __init__(
        self,
        machine: "Machine",
        caller_lib: "MicroLibrary",
        callee_lib: "MicroLibrary",
        options: GateOptions | None = None,
    ) -> None:
        super().__init__(machine, caller_lib, callee_lib, options)
        # Distribution of the per-crossing parameter copies — the cost
        # component that separates this gate from the shared-stack one.
        self._copy_hist = machine.cpu.metrics.histogram("gate.arg_copy_bytes")
        # Fast-path constants mirroring _enter/_exit's exact arithmetic
        # (a + b precomputed; the arg-byte term keeps its per-call
        # associativity so the charges stay bit-identical).
        cost = machine.cost
        self._ss_base_ns = cost.stack_switch_ns + cost.mem_op_ns
        self._mem_byte_ns = cost.mem_byte_ns
        self._word_bytes = self.options.word_bytes
        self._ss_exit_ns = (
            cost.stack_switch_ns
            + cost.mem_op_ns
            + self.options.word_bytes * cost.mem_byte_ns * 2
        )

    def _enter(self, fn: str, args: tuple) -> None:
        cpu = self.machine.cpu
        cost = self.machine.cost
        # Stack switch plus copying each parameter word to the target
        # compartment's stack.
        arg_bytes = max(1, len(args)) * self.options.word_bytes
        self._copy_hist.observe(arg_bytes)
        cpu.charge(
            cost.stack_switch_ns
            + cost.mem_op_ns
            + arg_bytes * cost.mem_byte_ns * 2  # read caller stack, write callee
        )
        cpu.bump("stack_switches")
        super()._enter(fn, args)

    def _exit(self) -> None:
        cpu = self.machine.cpu
        cost = self.machine.cost
        # Switch back and copy the return value to the caller's stack.
        cpu.charge(
            cost.stack_switch_ns
            + cost.mem_op_ns
            + self.options.word_bytes * cost.mem_byte_ns * 2
        )
        cpu.bump("stack_switches")
        super()._exit()

    def _enter_fast(self, entry, args, cpu) -> None:
        arg_bytes = max(1, len(args)) * self._word_bytes
        self._copy_hist.observe(arg_bytes)
        cpu.charge(self._ss_base_ns + arg_bytes * self._mem_byte_ns * 2)
        counters = self._counters
        counters["stack_switches"] = counters.get("stack_switches", 0.0) + 1.0
        super()._enter_fast(entry, args, cpu)

    def _exit_fast(self, entry, cpu) -> None:
        cpu.charge(self._ss_exit_ns)
        counters = self._counters
        counters["stack_switches"] = counters.get("stack_switches", 0.0) + 1.0
        super()._exit_fast(entry, cpu)
