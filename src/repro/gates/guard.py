"""Trust-boundary API guards (paper §5, "Isolation alone is not enough").

"Traditional system call APIs are designed from the outset as a trust
boundary ... when the API was previously developed without a trust
model, introducing isolation is a more complex task; isolation alone is
not enough."  And: "we only want to execute such checks when they are
really needed, depending on the instantiated kernel configuration: if
component A is together with component B in the same trust domain, then
checks are not necessary, but they are when component C (in another
domain) calls component B."

:class:`GuardedChannel` is the auto-generated wrapper the paper
envisions: the builder composes it around *cross-compartment* channels
only, so intra-compartment calls pay nothing.  Two check families:

- **preconditions** from the callee's :attr:`API_CONTRACTS` metadata
  (e.g. "recv size must be positive", "queue id must be live");
- **pointer validation** from :attr:`POINTER_PARAMS`: reference
  arguments crossing a trust boundary must point into shareable memory
  — a callee dereferencing a caller-supplied pointer into *its own*
  privileged memory is the classic confused deputy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.gates.base import Channel
from repro.machine.faults import BoundaryViolation

if TYPE_CHECKING:
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine


class GuardedChannel(Channel):
    """Wraps a channel with the callee's boundary checks.

    The async surface (submit/poll/flush/...) passes straight through
    to the wrapped channel — with the same precondition and pointer
    checks applied at *submission* time, before an op ever reaches the
    ring, so a rejected op is never enqueued.
    """

    KIND = "guarded"

    def __init__(
        self,
        inner: Channel,
        machine: "Machine",
        callee_lib: "MicroLibrary",
        shared_ranges: list[tuple[int, int]],
    ) -> None:
        super().__init__()
        self.inner = inner
        self.machine = machine
        self.callee_lib = callee_lib
        self.shared_ranges = list(shared_ranges)
        self.checks_performed = 0
        self.rejections = 0
        # Per-fn check steps, hoisted to construction time: contracts
        # first, then pointer params — the exact order _check_steps
        # replays, so charges and rejections are unchanged.  The check
        # metadata is class-level static, so compiling once is safe; a
        # fn missing here (never exported, no contracts) falls back to
        # the generic derivation.
        self._compiled_checks: dict[str, tuple] = {}
        fns = (
            set(callee_lib.exports)
            | set(callee_lib.API_CONTRACTS)
            | set(callee_lib.POINTER_PARAMS)
        )
        for fn in fns:
            self._compiled_checks[fn] = self._compile_checks(fn)
        self._contract_ns = machine.cost.contract_check_ns
        self._counters = machine.cpu.metrics.counters

    def _compile_checks(self, fn: str) -> tuple:
        callee = self.callee_lib
        steps: list[tuple] = []
        for predicate, description in callee.API_CONTRACTS.get(fn, []):
            steps.append((True, predicate, description))
        for index in callee.POINTER_PARAMS.get(fn, ()):
            steps.append((False, None, index))
        return tuple(steps)

    @property
    def IS_BOUNDARY(self) -> bool:  # noqa: N802 - mirrors the class attr
        return self.inner.IS_BOUNDARY

    # --- checks -----------------------------------------------------------

    def _pointer_ok(self, addr: Any) -> bool:
        if not isinstance(addr, int):
            return False
        return any(start <= addr < end for start, end in self.shared_ranges)

    def _check(self, fn: str, args: tuple) -> None:
        steps = self._compiled_checks.get(fn)
        if steps is None:
            steps = self._compile_checks(fn)
        if not steps:
            return
        cpu = self.machine.cpu
        contract_ns = self._contract_ns
        counters = self._counters
        callee_name = self.callee_lib.NAME
        for is_contract, predicate, payload in steps:
            cpu.charge(contract_ns)
            counters["boundary_checks"] = (
                counters.get("boundary_checks", 0.0) + 1.0
            )
            self.checks_performed += 1
            if not is_contract:
                # Pointer-validation step: payload is the arg index.
                if payload >= len(args) or not self._pointer_ok(args[payload]):
                    self.rejections += 1
                    raise BoundaryViolation(
                        callee_name,
                        fn,
                        f"pointer argument {payload} does not reference "
                        f"shareable memory",
                    )
                continue
            try:
                ok = bool(predicate(args))
            except Exception:
                ok = False
            if not ok:
                self.rejections += 1
                raise BoundaryViolation(callee_name, fn, payload)

    # --- channel interface ------------------------------------------------------

    def invoke(self, fn: str, args: tuple) -> Any:
        self._check(fn, args)
        return self.inner.invoke(fn, args)

    def invoke_gen(self, fn: str, args: tuple) -> Generator:
        self._check(fn, args)
        return (yield from self.inner.invoke_gen(fn, args))

    # --- async surface: check at submission, then pass through ----------------

    def capabilities(self) -> frozenset:
        return self.inner.capabilities()

    def submit(self, fn: str, *args: Any) -> int:
        self._check(fn, args)
        return self.inner.submit(fn, *args)

    def poll(self, max_items: int | None = None) -> list:
        return self.inner.poll(max_items)

    def flush(self) -> int:
        return self.inner.flush()

    def wait_completions(self, min_count: int = 1) -> Generator:
        return self.inner.wait_completions(min_count)

    @property
    def pending(self) -> int:
        return self.inner.pending

    @property
    def completions_ready(self) -> int:
        return self.inner.completions_ready

    @property
    def completion_waitq(self):
        return self.inner.completion_waitq

    def flush_deadline_ns(self) -> float | None:
        return self.inner.flush_deadline_ns()

    def flush_if_due(self) -> int:
        return self.inner.flush_if_due()

    def bind_scheduler(self, scheduler) -> None:
        self.inner.bind_scheduler(scheduler)

    def close(self) -> None:
        self.inner.close()

    @property
    def crossings(self) -> int:
        return getattr(self.inner, "crossings", 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GuardedChannel({self.inner!r})"
