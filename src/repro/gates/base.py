"""Gate base machinery: entry-point checks, caller-side instrumentation.

Every gate (and the direct-call channel) enforces the micro-library API
surface: only exported functions can be invoked, so "code execution
starts only at well-defined entry points" regardless of backend.  The
caller side charges the caller profile's per-call instrumentation
(stack protector, SafeStack) and runs its call monitors (CFI target
checks) — hardening travels with the *calling* compartment's code, not
with the channel.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Generator

from repro.libos.library import CallChannelProtocol
from repro.machine.faults import GateError

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine


@dataclasses.dataclass
class GateOptions:
    """Per-gate security/performance knobs (paper Fig. 2 menu)."""

    #: Clear scratch registers on domain switches (prevents data leaks
    #: through registers at a small per-crossing cost).
    clear_registers: bool = True
    #: Bytes charged for copying one argument/return value.
    word_bytes: int = 8


class Gate(CallChannelProtocol):
    """Common behaviour for every channel implementation.

    Crossing accounting is unified here: every invocation increments
    the channel's own ``crossings``, its caller→callee edge in the
    metrics registry, the shared ``gate_crossings`` counter (for every
    compartment-boundary channel, regardless of backend) and the
    backend's own counter — so counts agree across backends instead of
    each gate bumping an ad-hoc subset.
    """

    #: Short backend identifier ("direct", "mpk-shared", ...).
    KIND = "abstract"
    #: True for channels that cross a compartment boundary; only the
    #: same-compartment DirectChannel clears it.  Boundary channels
    #: count toward ``gate_crossings`` and get trace spans.
    IS_BOUNDARY = True
    #: Backend-specific counter bumped alongside the unified ones
    #: ("mpk_crossings", "vm_rpcs", ...); empty string disables it.
    EXTRA_COUNTER = ""

    def __init__(
        self,
        machine: "Machine",
        caller_lib: "MicroLibrary",
        callee_lib: "MicroLibrary",
        options: GateOptions | None = None,
    ) -> None:
        self.machine = machine
        self.caller_lib = caller_lib
        self.callee_lib = callee_lib
        self.options = options if options is not None else GateOptions()
        self.crossings = 0
        self._edge = machine.cpu.metrics.edge(
            caller_lib.NAME, callee_lib.NAME, self.KIND
        )
        self._tracer = machine.obs.tracer

    # --- shared plumbing ----------------------------------------------------

    def _lookup(self, fn: str, blocking: bool):
        """Entry-point enforcement: only exports are callable."""
        callee = self.callee_lib
        handler = callee.exports.get(fn)
        if handler is None:
            raise GateError(
                f"{callee.NAME} has no export {fn!r} "
                f"(called from {self.caller_lib.NAME})"
            )
        is_blocking = fn in callee.blocking_exports
        if blocking and not is_blocking:
            raise GateError(f"{callee.NAME}.{fn} is not a blocking export")
        if not blocking and is_blocking:
            raise GateError(
                f"{callee.NAME}.{fn} is blocking; use call_gen / yield from"
            )
        return handler

    def _caller_side(self, fn: str) -> None:
        """Charge the call itself plus caller-profile instrumentation."""
        cpu = self.machine.cpu
        profile = cpu.current.profile
        cpu.charge(self.machine.cost.call_ns + profile.call_extra_ns)
        for monitor in profile.call_monitors:
            monitor(self.caller_lib.NAME, self.callee_lib.NAME, fn)

    def _record_crossing(self) -> None:
        """Unified crossing accounting (channel, edge, CPU counters)."""
        self.crossings += 1
        self._edge.crossings += 1
        cpu = self.machine.cpu
        if self.IS_BOUNDARY:
            cpu.bump("gate_crossings")
        if self.EXTRA_COUNTER:
            cpu.bump(self.EXTRA_COUNTER)

    def _trace_begin(self, fn: str) -> bool:
        """Open a crossing span; returns whether one was opened.

        Spans ride the calling thread's track, so a blocking call that
        suspends keeps its span open across the suspension and closes
        it after resume — other threads' events land on other tracks.
        """
        tracer = self._tracer
        if not (tracer.enabled and self.IS_BOUNDARY):
            return False
        tracer.begin(
            f"{self.caller_lib.NAME}->{self.callee_lib.NAME}.{fn}",
            "gate",
            kind=self.KIND,
        )
        return True

    # --- domain switch hooks (overridden by real gates) ---------------------------

    def _enter(self, fn: str, args: tuple) -> None:
        """Perform/charge the switch into the callee's domain."""

    def _exit(self) -> None:
        """Perform/charge the switch back into the caller's domain."""

    # --- channel interface ---------------------------------------------------------

    def invoke(self, fn: str, args: tuple) -> Any:
        handler = self._lookup(fn, blocking=False)
        self._caller_side(fn)
        self._record_crossing()
        traced = self._trace_begin(fn)
        self._enter(fn, args)
        try:
            return handler(*args)
        finally:
            self._exit()
            if traced:
                self._tracer.end()

    def invoke_gen(self, fn: str, args: tuple) -> Generator:
        handler = self._lookup(fn, blocking=True)
        self._caller_side(fn)
        self._record_crossing()
        traced = self._trace_begin(fn)
        self._enter(fn, args)
        try:
            result = yield from handler(*args)
        except GeneratorExit:
            # The thread was destroyed while parked inside the callee:
            # its entire saved protection-context stack (including the
            # context this gate pushed) is discarded with it, so there
            # is nothing to restore on the live CPU.  The open trace
            # span is left dangling on purpose; the exporter closes it.
            raise
        except BaseException:
            self._exit()
            if traced:
                self._tracer.end()
            raise
        self._exit()
        if traced:
            self._tracer.end()
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} {self.caller_lib.NAME}->"
            f"{self.callee_lib.NAME}>"
        )
