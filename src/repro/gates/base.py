"""Gate base machinery: the Channel ABC and caller-side instrumentation.

Every gate (and the direct-call channel) enforces the micro-library API
surface: only exported functions can be invoked, so "code execution
starts only at well-defined entry points" regardless of backend.  The
caller side charges the caller profile's per-call instrumentation
(stack protector, SafeStack) and runs its call monitors (CFI target
checks) — hardening travels with the *calling* compartment's code, not
with the channel.

Boundary gates are also the containment line of the fault model (see
:mod:`repro.machine.faults`): a containable fault escaping the callee
is translated into :class:`CompartmentFailure` when the callee
compartment's failure policy asks for it, and crossings into a failed
compartment fail fast (``isolate``) or revive it after its backoff
deadline (``restart-with-backoff``).

:class:`Channel` is the interface every inter-library channel
implements — sync (``invoke``/``invoke_gen``) *and* async
(``submit``/``poll``/``flush``).  Sync-only channels inherit a default
``submit`` that degrades to one crossing per operation, so callers
written against the async surface run unchanged on every backend; the
queue channel (:mod:`repro.gates.queue`) overrides it to batch many
submissions into one doorbell crossing.

Construct channels through :func:`repro.gates.registry.make_channel`;
direct gate instantiation raises :class:`GateError`.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Any, Generator

from repro.libos.sched.base import WaitFlush
from repro.machine.faults import (
    CONTAINABLE_FAULTS,
    CompartmentFailure,
    GateError,
)

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine


@dataclasses.dataclass
class GateOptions:
    """Per-gate security/performance knobs (paper Fig. 2 menu)."""

    #: Clear scratch registers on domain switches (prevents data leaks
    #: through registers at a small per-crossing cost).
    clear_registers: bool = True
    #: Bytes charged for copying one argument/return value.
    word_bytes: int = 8
    #: Wrap boundary channels in API guards (paper §5 precondition +
    #: pointer checks).  Applied by :func:`make_channel`; guards are
    #: never generated for same-compartment direct channels.
    api_guards: bool = False
    #: (start, end) ranges pointer arguments may legitimately reference
    #: besides the caller's own memory (the shared heap); consulted by
    #: the API guards.
    shared_ranges: tuple[tuple[int, int], ...] = ()
    #: VM-RPC only: notifications sent before the gate gives up on a
    #: lossy event channel and raises ``RPCTimeout``.
    rpc_max_retries: int = 3
    #: VM-RPC only: multiplier on the timeout charged per retry
    #: (exponential backoff).
    rpc_backoff_factor: float = 2.0
    #: Queue channels only: submission/completion ring capacity
    #: (entries).  A full ring forces a flush.
    queue_depth: int = 64
    #: Queue channels only: auto-flush (ring the doorbell) once this
    #: many submissions are pending.
    queue_batch: int = 8
    #: Queue channels only: flush-latency bound — the oldest pending
    #: submission is never delayed past this many simulated ns (0
    #: disables the deadline; flushes happen on batch/explicit/sync
    #: boundaries only).
    queue_max_delay_ns: float = 0.0


#: Set while :func:`repro.gates.registry.make_channel` constructs a
#: gate; direct instantiation outside the factory raises GateError.
#: Thread-local because images are built concurrently (measure_many's
#: pool).
_FACTORY = threading.local()


def _require_factory(cls: type) -> None:
    """The factory guard: channels exist only via make_channel."""
    if not getattr(_FACTORY, "active", False):
        raise GateError(
            f"direct instantiation of {cls.__name__} is not supported; "
            "construct channels via repro.gates.make_channel(kind, ...)"
        )


class _PlanEntry:
    """One export's precompiled crossing state (see :class:`CrossingPlan`).

    ``extra`` is backend payload — e.g. the CHERI gate stashes the
    export's ``CAP_GRANTS`` specs so the fast path never re-reads the
    class dict per call.
    """

    __slots__ = ("fn", "handler", "blocking", "ctx_label", "extra")

    def __init__(self, fn, handler, blocking, ctx_label):
        self.fn = fn
        self.handler = handler
        self.blocking = blocking
        self.ctx_label = ctx_label
        self.extra = None


class CrossingPlan:
    """Per-edge precompiled crossing state, built once per channel.

    Compiled at channel construction: one :class:`_PlanEntry` per
    export (resolved handler, blocking flag, the context label the slow
    path would build with an f-string per call).  ``observing`` caches
    whether any observer — the tracer or per-edge latency recording —
    is live; it is re-resolved only when the machine's observability
    epoch moves (one int compare per invoke), and while an observer is
    live every crossing takes the original slow path, which is
    trivially bit-identical.  ``hits``/``refreshes`` are host-side
    telemetry (never in the metrics registry, so snapshots stay
    identical across the ``REPRO_GATEPLAN`` toggle).
    """

    __slots__ = ("entries", "epoch", "observing", "hits", "refreshes", "_gate")

    def __init__(self, gate: "Gate") -> None:
        self._gate = gate
        callee = gate.callee_lib
        blocking = callee.blocking_exports
        self.entries = {
            fn: _PlanEntry(fn, handler, fn in blocking, gate._plan_ctx_label(fn))
            for fn, handler in callee.exports.items()
        }
        self.epoch = -1
        self.observing = True
        self.hits = 0
        self.refreshes = 0

    def refresh(self, epoch: int) -> None:
        """Re-resolve observer enablement after an obs-epoch bump."""
        gate = self._gate
        self.observing = gate.IS_BOUNDARY and (
            gate._tracer._enabled or gate._metrics._record_edge_latency
        )
        self.epoch = epoch
        self.refreshes += 1


@dataclasses.dataclass
class Completion:
    """One finished submission: its ticket and result (or error).

    ``error`` carries exactly the exception the equivalent sync
    ``invoke`` would have raised (already translated per the callee's
    failure policy), so error handling is uniform across delivery
    styles.
    """

    ticket: int
    fn: str
    value: Any = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class Channel:
    """Interface every inter-library channel implements.

    Sync surface: :meth:`invoke` / :meth:`invoke_gen`.  Async surface:
    :meth:`submit` / :meth:`poll` / :meth:`flush` / :meth:`close` plus
    the :meth:`capabilities` query.  The async defaults here degrade to
    one crossing per operation (``submit`` invokes immediately and the
    completion is ready at once), so callers written against the async
    surface never branch on channel kind — a queue channel just makes
    the same code pay one crossing per batch instead of per op.
    """

    #: Channel kind identifier ("direct", "mpk-shared", "queue:...").
    KIND = "abstract"
    #: True for channels that cross a compartment boundary.
    IS_BOUNDARY = True

    def __init__(self) -> None:
        #: Completions ready to be drained by :meth:`poll`.
        self._completed: list[Completion] = []
        self._next_ticket = 1

    # --- sync surface -------------------------------------------------------

    def invoke(self, fn: str, args: tuple) -> Any:
        raise NotImplementedError

    def invoke_gen(self, fn: str, args: tuple) -> Generator:
        raise NotImplementedError

    # --- async surface ------------------------------------------------------

    def capabilities(self) -> frozenset:
        """Feature tags of this channel ("sync", "async", ...)."""
        return frozenset({"sync"})

    @property
    def supports_async(self) -> bool:
        """True when submissions are actually deferred and batched."""
        return "async" in self.capabilities()

    def submit(self, fn: str, *args: Any) -> int:
        """Enqueue one operation; returns its completion ticket.

        Sync channels execute immediately (one crossing, completion
        available at once) and raise errors right here, exactly like
        :meth:`invoke`.  Async channels defer execution to the next
        flush and deliver errors through the completion instead.
        """
        ticket = self._take_ticket()
        value = self.invoke(fn, args)
        self._completed.append(Completion(ticket, fn, value=value))
        return ticket

    def poll(self, max_items: int | None = None) -> list[Completion]:
        """Drain (up to ``max_items``) ready completions, oldest first."""
        if max_items is None or max_items >= len(self._completed):
            drained = self._completed
            self._completed = []
            return drained
        drained = self._completed[:max_items]
        del self._completed[:max_items]
        return drained

    def flush(self) -> int:
        """Force pending submissions through; returns how many flushed.

        Always 0 for sync channels — nothing is ever pending.
        """
        return 0

    @property
    def pending(self) -> int:
        """Submissions accepted but not yet executed (sync: always 0)."""
        return 0

    @property
    def completions_ready(self) -> int:
        """Completions available to :meth:`poll` right now."""
        return len(self._completed)

    def flush_deadline_ns(self) -> float | None:
        """Simulated deadline of the oldest pending submission, if any."""
        return None

    def flush_if_due(self) -> int:
        """Flush when the max-delay deadline has passed; ops flushed."""
        deadline = self.flush_deadline_ns()
        if deadline is not None and self.machine.cpu.clock_ns >= deadline:
            return self.flush()
        return 0

    def bind_scheduler(self, scheduler) -> None:
        """Attach the scheduler that delivers completion wakeups."""

    def close(self) -> None:
        """Flush pending work and release channel resources."""
        self.flush()

    def wait_completions(self, min_count: int = 1) -> Generator:
        """Blocking helper: drive with ``yield from`` in a thread body.

        Suspends (via the :class:`~repro.libos.sched.base.WaitFlush`
        directive) until ``min_count`` completions are available, then
        drains and returns them.  On sync channels completions are
        ready at submit time, so this returns without suspending; on a
        queue channel with a max-delay policy the scheduler parks the
        thread with an ``IdleUntil``-style timer at the flush deadline.
        """
        while self.completions_ready < min_count:
            if not self.pending:
                raise GateError(
                    f"waiting for {min_count} completion(s) but only "
                    f"{self.completions_ready} submitted and none pending"
                )
            if self.flush_deadline_ns() is None:
                # No latency bound to wait out: flush on behalf of the
                # waiter instead of parking forever.
                self.flush()
                continue
            self.machine.cpu.bump("queue.wait_parks")
            yield WaitFlush(self)
            self.flush_if_due()
        return self.poll(min_count)

    def drain(self) -> list["Completion"]:
        """Flush pending submissions and drain *every* completion.

        The synchronous error-delivery helper: rings the doorbell,
        empties the completion ring, and re-raises the first deferred
        error — exactly what a sync call would have raised at the
        submission site.  On sync channels this is just a poll.
        """
        self.flush()
        completions = self.poll()
        for completion in completions:
            if completion.error is not None:
                raise completion.error
        return completions

    # --- internal -----------------------------------------------------------

    def _take_ticket(self) -> int:
        ticket = self._next_ticket
        self._next_ticket += 1
        return ticket


class Gate(Channel):
    """Common behaviour for every gate-backed channel implementation.

    Crossing accounting is unified here: every invocation increments
    the channel's own ``crossings``, its caller→callee edge in the
    metrics registry, the shared ``gate_crossings`` counter (for every
    compartment-boundary channel, regardless of backend) and the
    backend's own counter — so counts agree across backends instead of
    each gate bumping an ad-hoc subset.
    """

    #: True for channels that cross a compartment boundary; only the
    #: same-compartment DirectChannel clears it.  Boundary channels
    #: count toward ``gate_crossings``, get trace spans, and act as
    #: containment boundaries for the fault model.
    IS_BOUNDARY = True
    #: Backend-specific counter bumped alongside the unified ones
    #: ("mpk_crossings", "vm_rpcs", ...); empty string disables it.
    EXTRA_COUNTER = ""

    def __init__(
        self,
        machine: "Machine",
        caller_lib: "MicroLibrary",
        callee_lib: "MicroLibrary",
        options: GateOptions | None = None,
    ) -> None:
        _require_factory(type(self))
        super().__init__()
        self.machine = machine
        self.caller_lib = caller_lib
        self.callee_lib = callee_lib
        self.options = options if options is not None else GateOptions()
        self.crossings = 0
        self._metrics = machine.cpu.metrics
        self._edge = self._metrics.edge(
            caller_lib.NAME, callee_lib.NAME, self.KIND
        )
        self._tracer = machine.obs.tracer
        # --- crossing-plan fast path -----------------------------------
        # Everything the hot invoke needs, flattened into attributes so
        # the fast path does no cost-model / registry attribute chasing.
        # All precomputed values feed the *same* charge/bump sequence
        # the slow path issues, so the REPRO_GATEPLAN toggle cannot
        # change any simulated observable.
        self._obs = machine.obs
        self._caller_name = caller_lib.NAME
        self._callee_name = callee_lib.NAME
        self._counters = self._metrics.counters
        self._call_ns = machine.cost.call_ns
        self._ret_ns = machine.cost.ret_ns
        self._is_boundary = self.IS_BOUNDARY
        bumps = []
        if self._is_boundary:
            bumps.append("gate_crossings")
        if self.EXTRA_COUNTER:
            bumps.append(self.EXTRA_COUNTER)
        self._bump_names = tuple(bumps)
        #: Pooled callee Context reused by non-nested fast invokes (a
        #: plain invoke cannot suspend, so the context is dead again by
        #: the time the call returns).
        self._ctx_pool = None
        self._plan: CrossingPlan | None = None
        if machine.gateplan_enabled:
            self._plan = CrossingPlan(self)
            machine.gate_plans.append(self._plan)

    # --- shared plumbing ----------------------------------------------------

    def _lookup(self, fn: str, blocking: bool):
        """Entry-point enforcement: only exports are callable."""
        callee = self.callee_lib
        handler = callee.exports.get(fn)
        if handler is None:
            raise GateError(
                f"{callee.NAME} has no export {fn!r} "
                f"(called from {self.caller_lib.NAME})"
            )
        is_blocking = fn in callee.blocking_exports
        if blocking and not is_blocking:
            raise GateError(f"{callee.NAME}.{fn} is not a blocking export")
        if not blocking and is_blocking:
            raise GateError(
                f"{callee.NAME}.{fn} is blocking; use call_gen / yield from"
            )
        return handler

    def _caller_side(self, fn: str) -> None:
        """Charge the call itself plus caller-profile instrumentation."""
        cpu = self.machine.cpu
        profile = cpu.current.profile
        cpu.charge(self.machine.cost.call_ns + profile.call_extra_ns)
        for monitor in profile.call_monitors:
            monitor(self.caller_lib.NAME, self.callee_lib.NAME, fn)

    def _record_crossing(self) -> None:
        """Unified crossing accounting (channel, edge, CPU counters)."""
        self.crossings += 1
        self._edge.crossings += 1
        cpu = self.machine.cpu
        if self.IS_BOUNDARY:
            cpu.bump("gate_crossings")
        if self.EXTRA_COUNTER:
            cpu.bump(self.EXTRA_COUNTER)

    def _latency_start(self) -> float | None:
        """Simulated start time of a crossing, when profiling wants it.

        Only boundary crossings are worth a latency sample, and only
        when a profiling session flipped ``record_edge_latency`` on —
        reading the clock charges nothing, so recording is invisible to
        the simulation either way.
        """
        if self.IS_BOUNDARY and self._metrics.record_edge_latency:
            return self.machine.cpu.clock_ns
        return None

    def _latency_end(self, started: float | None) -> None:
        """Record one crossing's simulated round-trip duration."""
        if started is not None:
            self._metrics.edge_latency(
                self.caller_lib.NAME, self.callee_lib.NAME
            ).observe(self.machine.cpu.clock_ns - started)

    def _trace_begin(self, fn: str) -> int | None:
        """Open a crossing span; returns its track id, or None.

        Spans ride the calling thread's track, so a blocking call that
        suspends keeps its span open across the suspension and closes
        it after resume — other threads' events land on other tracks.
        The track id is returned so teardown paths (a thread destroyed
        while parked inside the call) can close the span even though
        the tracer has moved on to another track by then.
        """
        tracer = self._tracer
        if not (tracer.enabled and self.IS_BOUNDARY):
            return None
        tracer.begin(
            f"{self.caller_lib.NAME}->{self.callee_lib.NAME}.{fn}",
            "gate",
            kind=self.KIND,
        )
        return tracer.current_track

    # --- fault containment ---------------------------------------------------

    def _check_available(self) -> None:
        """Fail fast — or restart — crossings into a failed compartment."""
        if not self.IS_BOUNDARY:
            return
        comp: "Compartment | None" = self.callee_lib.compartment
        if comp is None or not comp.failed:
            return
        cpu = self.machine.cpu
        if comp.restart_due(cpu.clock_ns):
            cpu.charge(self.machine.cost.compartment_restart_ns)
            comp.restart()
            cpu.bump("resilience.restarts")
            if self._tracer.enabled:
                self._tracer.instant(
                    f"restart:{comp.name}", "resilience", restarts=comp.restarts
                )
            return
        raise CompartmentFailure(
            comp.name,
            cause=comp.last_failure.cause if comp.last_failure else None,
            detail="compartment unavailable after failure",
        )

    def _contain(self, exc: BaseException) -> CompartmentFailure | None:
        """Translate a callee fault per the callee's failure policy.

        Returns the :class:`CompartmentFailure` to raise instead, or
        ``None`` when the raw fault should propagate (non-boundary
        channel, or ``propagate`` policy — the paper's baseline
        whole-image crash).
        """
        comp: "Compartment | None" = self.callee_lib.compartment
        if (
            not self.IS_BOUNDARY
            or comp is None
            or comp.failure_policy == "propagate"
        ):
            return None
        cpu = self.machine.cpu
        failure = CompartmentFailure(comp.name, cause=exc)
        comp.mark_failed(cpu.clock_ns, failure)
        cpu.bump("resilience.contained")
        if self._tracer.enabled:
            self._tracer.instant(
                f"contained:{comp.name}",
                "resilience",
                cause=type(exc).__name__,
            )
        return failure

    def _inject(self, fn: str) -> None:
        """Resilience-harness hook, called inside the callee's domain."""
        injector = self.machine.injector
        if injector is not None:
            injector.on_crossing(self, fn)

    # --- domain switch hooks (overridden by real gates) ---------------------------

    def _enter(self, fn: str, args: tuple) -> None:
        """Perform/charge the switch into the callee's domain."""

    def _exit(self) -> None:
        """Perform/charge the switch back into the caller's domain."""

    def _per_op_enter(self, fn: str, args: tuple) -> None:
        """Per-operation rearm inside one batched crossing.

        Most backends switch domains once per batch and need nothing
        here; the CHERI gate overrides it to install each operation's
        capability delegations on the already-derived context.
        """

    # --- crossing-plan fast path --------------------------------------------

    def _plan_ctx_label(self, fn: str) -> str:
        """The context label the slow-path ``_enter`` builds for ``fn``.

        Precomputed once per export at plan compile time so the fast
        path never formats strings per call; backends override to match
        their own f-string exactly.
        """
        return f"{self.callee_lib.NAME}.{fn}"

    def _enter_fast(self, entry: _PlanEntry, args: tuple, cpu) -> None:
        """Plan-specialized domain entry; defaults to the slow hook so
        subclasses without a specialization stay correct."""
        self._enter(entry.fn, args)

    def _exit_fast(self, entry: _PlanEntry, cpu) -> None:
        self._exit()

    def _per_op_enter_fast(self, entry: _PlanEntry, args: tuple, cpu) -> None:
        self._per_op_enter(entry.fn, args)

    def _invoke_fast(self, entry: _PlanEntry, args: tuple) -> Any:
        """Hot invoke: identical charge/bump sequence, zero derivation.

        Mirrors ``_invoke_slow`` line for line — every ``charge`` has
        the same value (precomputed from the same constants with the
        same associativity) and every counter write the same order.
        The only skipped work is host-side: lookups, f-strings, and
        observer probes the plan already resolved (``observing`` False
        guarantees the tracer and latency recorder are off).
        """
        plan = self._plan
        plan.hits += 1
        machine = self.machine
        cpu = machine.cpu
        profile = cpu._contexts[-1].profile
        cpu.charge(self._call_ns + profile.call_extra_ns)
        monitors = profile.call_monitors
        if monitors:
            fn = entry.fn
            for monitor in monitors:
                monitor(self._caller_name, self._callee_name, fn)
        if self._is_boundary:
            comp = self.callee_lib.compartment
            if comp is not None and comp.failed:
                # Restart may rebuild compartment state the pooled
                # context caches — drop the pool before reviving.
                self._ctx_pool = None
                self._check_available()
        self.crossings += 1
        self._edge.crossings += 1
        counters = self._counters
        for name in self._bump_names:
            counters[name] = counters.get(name, 0.0) + 1.0
        self._enter_fast(entry, args, cpu)
        try:
            if machine.injector is not None:
                machine.injector.on_crossing(self, entry.fn)
            return entry.handler(*args)
        except CONTAINABLE_FAULTS as exc:
            failure = self._contain(exc)
            if failure is None:
                raise
            raise failure from exc
        finally:
            self._exit_fast(entry, cpu)

    def _invoke_batch_fast(
        self, entries: list, ops: list[tuple[int, str, tuple]]
    ) -> list[Completion]:
        plan = self._plan
        plan.hits += 1
        machine = self.machine
        cpu = machine.cpu
        profile = cpu._contexts[-1].profile
        cpu.charge(self._call_ns + profile.call_extra_ns)
        monitors = profile.call_monitors
        if monitors:
            first_fn = ops[0][1]
            for monitor in monitors:
                monitor(self._caller_name, self._callee_name, first_fn)
        if self._is_boundary:
            comp = self.callee_lib.compartment
            if comp is not None and comp.failed:
                self._ctx_pool = None
                self._check_available()
        self.crossings += 1
        self._edge.crossings += 1
        counters = self._counters
        for name in self._bump_names:
            counters[name] = counters.get(name, 0.0) + 1.0
        completions: list[Completion] = []
        self._enter_fast(entries[0], (len(ops),), cpu)
        try:
            failure: BaseException | None = None
            for (ticket, fn, args), entry in zip(ops, entries):
                if failure is not None:
                    completions.append(Completion(ticket, fn, error=failure))
                    continue
                try:
                    self._per_op_enter_fast(entry, args, cpu)
                    if machine.injector is not None:
                        machine.injector.on_crossing(self, fn)
                    completions.append(
                        Completion(ticket, fn, value=entry.handler(*args))
                    )
                except CONTAINABLE_FAULTS as exc:
                    failure = self._contain(exc)
                    if failure is None:
                        raise
                    completions.append(Completion(ticket, fn, error=failure))
                except Exception as exc:
                    completions.append(Completion(ticket, fn, error=exc))
        finally:
            self._exit_fast(entries[0], cpu)
        return completions

    # --- channel interface ---------------------------------------------------------

    def invoke_batch(
        self, ops: list[tuple[int, str, tuple]]
    ) -> list[Completion]:
        """Execute many queued operations under ONE crossing (doorbell).

        ``ops`` is ``[(ticket, fn, args), ...]``.  The gate pays one
        caller-side charge, one crossing record, and one enter/exit
        domain switch for the whole batch; each op then dispatches
        inside the callee's domain.  Crash-mid-batch semantics: an op
        failing with a containable fault gets the translated
        :class:`CompartmentFailure` in its completion, every *later* op
        in the batch is aborted with the same failure (the callee
        domain is gone), and ops that completed before it keep their
        results — exactly the state N sync calls would have left behind
        at the point of the crash.  Under the ``propagate`` policy the
        raw fault is raised instead (whole-image crash, as sync invoke
        would).  Ordinary (non-fault) exceptions fail only their own
        op, as N separate sync calls would.
        """
        if not ops:
            return []
        plan = self._plan
        if plan is not None:
            epoch = self._obs.epoch
            if plan.epoch != epoch:
                plan.refresh(epoch)
            if not plan.observing:
                get = plan.entries.get
                entries = []
                for _, fn, _ in ops:
                    entry = get(fn)
                    if entry is None or entry.blocking:
                        entries = None
                        break
                    entries.append(entry)
                if entries is not None:
                    return self._invoke_batch_fast(entries, ops)
        handlers = [self._lookup(fn, blocking=False) for _, fn, _ in ops]
        self._caller_side(ops[0][1])
        self._check_available()
        self._record_crossing()
        started = self._latency_start()
        traced = self._trace_begin(f"batch[{len(ops)}]")
        completions: list[Completion] = []
        # The doorbell payload is one word: the ring tail index.
        self._enter(ops[0][1], (len(ops),))
        try:
            failure: BaseException | None = None
            for (ticket, fn, args), handler in zip(ops, handlers):
                if failure is not None:
                    completions.append(Completion(ticket, fn, error=failure))
                    continue
                try:
                    self._per_op_enter(fn, args)
                    self._inject(fn)
                    completions.append(
                        Completion(ticket, fn, value=handler(*args))
                    )
                except CONTAINABLE_FAULTS as exc:
                    failure = self._contain(exc)
                    if failure is None:
                        raise
                    completions.append(Completion(ticket, fn, error=failure))
                except Exception as exc:
                    completions.append(Completion(ticket, fn, error=exc))
        finally:
            self._exit()
            self._latency_end(started)
            if traced is not None:
                self._tracer.end()
        return completions

    def invoke(self, fn: str, args: tuple) -> Any:
        plan = self._plan
        if plan is not None:
            epoch = self._obs.epoch
            if plan.epoch != epoch:
                plan.refresh(epoch)
            if not plan.observing:
                entry = plan.entries.get(fn)
                if entry is not None and not entry.blocking:
                    return self._invoke_fast(entry, args)
        handler = self._lookup(fn, blocking=False)
        self._caller_side(fn)
        self._check_available()
        self._record_crossing()
        started = self._latency_start()
        traced = self._trace_begin(fn)
        self._enter(fn, args)
        try:
            self._inject(fn)
            return handler(*args)
        except CONTAINABLE_FAULTS as exc:
            failure = self._contain(exc)
            if failure is None:
                raise
            raise failure from exc
        finally:
            self._exit()
            self._latency_end(started)
            if traced is not None:
                self._tracer.end()

    def invoke_gen(self, fn: str, args: tuple) -> Generator:
        handler = self._lookup(fn, blocking=True)
        self._caller_side(fn)
        self._check_available()
        self._record_crossing()
        started = self._latency_start()
        traced = self._trace_begin(fn)
        self._enter(fn, args)
        try:
            self._inject(fn)
            result = yield from handler(*args)
        except GeneratorExit:
            # The thread was destroyed while parked inside the callee:
            # its entire saved protection-context stack (including the
            # context this gate pushed) is discarded with it, so there
            # is nothing to restore on the live CPU — but the trace
            # span must still be closed on the track it was opened on,
            # or exports carry a dangling span for the dead thread.
            if traced is not None:
                self._tracer.end(track=traced)
            raise
        except CONTAINABLE_FAULTS as exc:
            self._exit()
            if traced is not None:
                self._tracer.end()
            failure = self._contain(exc)
            if failure is None:
                raise
            raise failure from exc
        except BaseException:
            self._exit()
            if traced is not None:
                self._tracer.end()
            raise
        self._exit()
        # Blocking crossings include time spent suspended inside the
        # callee; only completed crossings are sampled (a thread
        # destroyed mid-call or an unwinding fault records nothing).
        self._latency_end(started)
        if traced is not None:
            self._tracer.end()
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} {self.caller_lib.NAME}->"
            f"{self.callee_lib.NAME}>"
        )
