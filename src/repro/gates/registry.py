"""Gate registry: backend name → gate class, and the channel factory.

:func:`make_channel` is the ONE way to construct an inter-library
channel — direct calls, profile channels, every isolation gate, and
batched queue variants (``"queue:<backend>"``) — with API guards folded
in via :class:`GateOptions`.  Direct gate class instantiation raises
:class:`GateError` (the factory guard in :mod:`repro.gates.base`).

Options are validated here: unknown option names and non-default values
of options the chosen backend cannot honour both raise
:class:`GateError` listing what *is* applicable, mirroring the
unknown-kind error, so misconfiguration fails at build time rather than
silently doing nothing.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.gates.base import _FACTORY, Gate, GateOptions
from repro.gates.cheri import CHERIGate
from repro.gates.funccall import DirectChannel, ProfileChannel
from repro.gates.mpk_shared import MPKSharedStackGate
from repro.gates.mpk_switched import MPKSwitchedStackGate
from repro.gates.queue import QueueChannel
from repro.gates.vm_rpc import VMRPCGate
from repro.machine.faults import GateError

if TYPE_CHECKING:
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine

#: All selectable gate backends, by configuration name.  Queue variants
#: are spelled ``"queue:<backend>"`` and wrap any boundary entry here.
GATE_KINDS: dict[str, type[Gate]] = {
    DirectChannel.KIND: DirectChannel,
    ProfileChannel.KIND: ProfileChannel,
    CHERIGate.KIND: CHERIGate,
    MPKSharedStackGate.KIND: MPKSharedStackGate,
    MPKSwitchedStackGate.KIND: MPKSwitchedStackGate,
    VMRPCGate.KIND: VMRPCGate,
}

#: Options every backend honours.
_COMMON_OPTIONS = frozenset(
    {"clear_registers", "word_bytes", "api_guards", "shared_ranges"}
)
#: Backend-specific options; anything not listed for a kind (nor
#: common) is rejected when set to a non-default value.
_KIND_OPTIONS: dict[str, frozenset[str]] = {
    VMRPCGate.KIND: frozenset({"rpc_max_retries", "rpc_backoff_factor"}),
    "queue": frozenset({"queue_depth", "queue_batch", "queue_max_delay_ns"}),
}

_OPTION_FIELDS = {field.name: field for field in dataclasses.fields(GateOptions)}


def _applicable_options(kind: str) -> frozenset[str]:
    """Option names ``kind`` honours (compound kinds union both sides)."""
    names = set(_COMMON_OPTIONS)
    if kind.startswith("queue:"):
        names |= _KIND_OPTIONS["queue"]
        names |= _KIND_OPTIONS.get(kind.split(":", 1)[1], frozenset())
    else:
        names |= _KIND_OPTIONS.get(kind, frozenset())
    return frozenset(names)


def _coerce_options(kind: str, options) -> GateOptions:
    """Validate ``options`` (GateOptions or dict) against ``kind``.

    Raises :class:`GateError` for unknown option names and for
    non-default values of options the backend cannot honour.
    """
    if options is None:
        return GateOptions()
    if isinstance(options, dict):
        unknown = sorted(set(options) - set(_OPTION_FIELDS))
        if unknown:
            raise GateError(
                f"unknown gate option(s) {unknown}; "
                f"known: {sorted(_OPTION_FIELDS)}"
            )
        options = GateOptions(**options)
    elif not isinstance(options, GateOptions):
        raise GateError(
            f"options must be a GateOptions or dict, not "
            f"{type(options).__name__}"
        )
    applicable = _applicable_options(kind)
    for name, field in _OPTION_FIELDS.items():
        if name in applicable:
            continue
        default = (
            field.default_factory()
            if field.default_factory is not dataclasses.MISSING
            else field.default
        )
        if getattr(options, name) != default:
            raise GateError(
                f"option {name!r} does not apply to gate kind {kind!r}; "
                f"applicable: {sorted(applicable)}"
            )
    return options


def relative_crossing_cost(
    kind: str,
    cost=None,
    word_bytes: int = 8,
    batch: int = 1,
) -> float:
    """Estimated round-trip nanoseconds of one crossing through ``kind``.

    A static stand-in for what the gates actually charge at runtime
    (fixed parts only, one word of arguments, default options), so the
    analytic explorer can rank deployments consistently with the
    backend they will really run on — a VM-RPC crossing is ~two orders
    of magnitude dearer than an MPK one, and a cost estimator that
    weighs them equally inverts rankings the measured path gets right.
    ``"none"``/``"direct"``/``"profile"`` crossings are plain function
    calls.

    ``"queue:<backend>"`` kinds return the *amortised per-operation*
    cost at the given ``batch`` size: the wrapped backend's crossing
    divided by the batch, plus the fixed ring traffic every operation
    pays (SQE store+load, CQE store+load).  This is what lets the
    explorer trade a sync edge against its batched variant per edge.
    """
    if cost is None:
        from repro.machine.cycles import CostModel

        cost = CostModel()
    if kind.startswith("queue:"):
        inner = kind.split(":", 1)[1]
        inner_cost = relative_crossing_cost(inner, cost, word_bytes)
        if inner in ("none", DirectChannel.KIND):
            raise GateError(
                f"queue channels wrap boundary backends; {inner!r} "
                "crosses no boundary"
            )
        ring = 2 * (cost.mem_op_ns + QueueChannel.SQE_BYTES * cost.mem_byte_ns)
        ring += 2 * (cost.mem_op_ns + QueueChannel.CQE_BYTES * cost.mem_byte_ns)
        return ring + inner_cost / max(1, batch)
    base = cost.call_ns + cost.ret_ns
    if kind in ("none", DirectChannel.KIND, ProfileChannel.KIND):
        return base
    if kind == MPKSharedStackGate.KIND:
        return base + cost.gate_dispatch_ns + 2 * cost.wrpkru_ns
    if kind == MPKSwitchedStackGate.KIND:
        copy_ns = cost.mem_op_ns + word_bytes * cost.mem_byte_ns * 2
        return (
            base
            + cost.gate_dispatch_ns
            + 2 * cost.wrpkru_ns
            + 2 * (cost.stack_switch_ns + copy_ns)
        )
    if kind == CHERIGate.KIND:
        return base + 2 * cost.cheri_crossing_ns + cost.cheri_grant_ns
    if kind == VMRPCGate.KIND:
        return base + 2 * (cost.vm_notify_ns + word_bytes * cost.vm_copy_byte_ns)
    raise GateError(
        f"unknown gate kind {kind!r}; known: "
        f"{sorted(GATE_KINDS) + ['none']} plus queue:<kind> variants"
    )


def make_channel(
    kind: str,
    machine: "Machine",
    caller: "MicroLibrary",
    callee: "MicroLibrary",
    *,
    options: GateOptions | dict | None = None,
):
    """Build the channel connecting ``caller`` to ``callee``.

    The single construction path for every channel kind — ``direct``,
    ``profile``, all isolation gates, and batched ``"queue:<backend>"``
    variants — so callers never touch gate classes.  When
    ``options.api_guards`` is set and the channel crosses a compartment
    boundary, the result is wrapped in a
    :class:`~repro.gates.guard.GuardedChannel` (paper §5 wrappers)
    checking preconditions and pointer provenance against
    ``options.shared_ranges``; guards wrap *outside* the queue so
    checks run at submission time.  Same-compartment direct channels
    never get guards.

    ``options`` may be a :class:`GateOptions` or a plain dict of field
    names; unknown names and backend-inapplicable non-default values
    raise :class:`GateError`.
    """
    queue_inner: str | None = None
    gate_kind = kind
    if kind == "queue":
        raise GateError(
            "queue channels wrap a backend: spell the kind "
            "'queue:<backend>', e.g. 'queue:mpk-shared'"
        )
    if kind.startswith("queue:"):
        queue_inner = kind.split(":", 1)[1]
        gate_kind = queue_inner
    gate_cls = GATE_KINDS.get(gate_kind)
    if gate_cls is None:
        raise GateError(
            f"unknown gate kind {gate_kind!r}; known: {sorted(GATE_KINDS)} "
            "plus queue:<kind> variants"
        )
    options = _coerce_options(kind, options)
    _FACTORY.active = True
    try:
        channel = gate_cls(machine, caller, callee, options)
        if queue_inner is not None:
            channel = QueueChannel(machine, channel, options)
    finally:
        _FACTORY.active = False
    if options.api_guards and channel.IS_BOUNDARY:
        from repro.gates.guard import GuardedChannel

        channel = GuardedChannel(
            channel, machine, callee, list(options.shared_ranges)
        )
    return channel
