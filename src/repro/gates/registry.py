"""Gate registry: backend name → gate class."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gates.base import Gate, GateOptions
from repro.gates.cheri import CHERIGate
from repro.gates.funccall import DirectChannel, ProfileChannel
from repro.gates.mpk_shared import MPKSharedStackGate
from repro.gates.mpk_switched import MPKSwitchedStackGate
from repro.gates.vm_rpc import VMRPCGate
from repro.machine.faults import GateError

if TYPE_CHECKING:
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine

#: All selectable gate backends, by configuration name.
GATE_KINDS: dict[str, type[Gate]] = {
    DirectChannel.KIND: DirectChannel,
    ProfileChannel.KIND: ProfileChannel,
    CHERIGate.KIND: CHERIGate,
    MPKSharedStackGate.KIND: MPKSharedStackGate,
    MPKSwitchedStackGate.KIND: MPKSwitchedStackGate,
    VMRPCGate.KIND: VMRPCGate,
}


def make_gate(
    kind: str,
    machine: "Machine",
    caller_lib: "MicroLibrary",
    callee_lib: "MicroLibrary",
    options: GateOptions | None = None,
) -> Gate:
    """Instantiate the gate class registered under ``kind``."""
    gate_cls = GATE_KINDS.get(kind)
    if gate_cls is None:
        raise GateError(
            f"unknown gate kind {kind!r}; known: {sorted(GATE_KINDS)}"
        )
    return gate_cls(machine, caller_lib, callee_lib, options)
