"""Gate registry: backend name → gate class, and the channel factory.

:func:`make_channel` is the one way to construct an inter-library
channel — direct calls, profile channels, and every isolation gate —
with API guards folded in via :class:`GateOptions`.  Direct gate class
instantiation (and the legacy :func:`make_gate`) is deprecated.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.gates.base import _FACTORY, Gate, GateOptions
from repro.gates.cheri import CHERIGate
from repro.gates.funccall import DirectChannel, ProfileChannel
from repro.gates.mpk_shared import MPKSharedStackGate
from repro.gates.mpk_switched import MPKSwitchedStackGate
from repro.gates.vm_rpc import VMRPCGate
from repro.machine.faults import GateError

if TYPE_CHECKING:
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine

#: All selectable gate backends, by configuration name.
GATE_KINDS: dict[str, type[Gate]] = {
    DirectChannel.KIND: DirectChannel,
    ProfileChannel.KIND: ProfileChannel,
    CHERIGate.KIND: CHERIGate,
    MPKSharedStackGate.KIND: MPKSharedStackGate,
    MPKSwitchedStackGate.KIND: MPKSwitchedStackGate,
    VMRPCGate.KIND: VMRPCGate,
}


def relative_crossing_cost(
    kind: str,
    cost=None,
    word_bytes: int = 8,
) -> float:
    """Estimated round-trip nanoseconds of one crossing through ``kind``.

    A static stand-in for what the gates actually charge at runtime
    (fixed parts only, one word of arguments, default options), so the
    analytic explorer can rank deployments consistently with the
    backend they will really run on — a VM-RPC crossing is ~two orders
    of magnitude dearer than an MPK one, and a cost estimator that
    weighs them equally inverts rankings the measured path gets right.
    ``"none"``/``"direct"``/``"profile"`` crossings are plain function
    calls.
    """
    if cost is None:
        from repro.machine.cycles import CostModel

        cost = CostModel()
    base = cost.call_ns + cost.ret_ns
    if kind in ("none", DirectChannel.KIND, ProfileChannel.KIND):
        return base
    if kind == MPKSharedStackGate.KIND:
        return base + cost.gate_dispatch_ns + 2 * cost.wrpkru_ns
    if kind == MPKSwitchedStackGate.KIND:
        copy_ns = cost.mem_op_ns + word_bytes * cost.mem_byte_ns * 2
        return (
            base
            + cost.gate_dispatch_ns
            + 2 * cost.wrpkru_ns
            + 2 * (cost.stack_switch_ns + copy_ns)
        )
    if kind == CHERIGate.KIND:
        return base + 2 * cost.cheri_crossing_ns + cost.cheri_grant_ns
    if kind == VMRPCGate.KIND:
        return base + 2 * (cost.vm_notify_ns + word_bytes * cost.vm_copy_byte_ns)
    raise GateError(
        f"unknown gate kind {kind!r}; known: {sorted(GATE_KINDS) + ['none']}"
    )


def make_channel(
    kind: str,
    machine: "Machine",
    caller: "MicroLibrary",
    callee: "MicroLibrary",
    *,
    options: GateOptions | None = None,
):
    """Build the channel connecting ``caller`` to ``callee``.

    The single construction path for every channel kind — ``direct``,
    ``profile``, and all isolation gates — so callers never touch gate
    classes.  When ``options.api_guards`` is set and the channel
    crosses a compartment boundary, the gate is wrapped in a
    :class:`~repro.gates.guard.GuardedChannel` (paper §5 wrappers)
    checking preconditions and pointer provenance against
    ``options.shared_ranges``; same-compartment direct channels never
    get guards.

    Raises :class:`GateError` for unknown kinds.
    """
    gate_cls = GATE_KINDS.get(kind)
    if gate_cls is None:
        raise GateError(
            f"unknown gate kind {kind!r}; known: {sorted(GATE_KINDS)}"
        )
    if options is None:
        options = GateOptions()
    _FACTORY.active = True
    try:
        channel = gate_cls(machine, caller, callee, options)
    finally:
        _FACTORY.active = False
    if options.api_guards and channel.IS_BOUNDARY:
        from repro.gates.guard import GuardedChannel

        channel = GuardedChannel(
            channel, machine, callee, list(options.shared_ranges)
        )
    return channel


def make_gate(
    kind: str,
    machine: "Machine",
    caller_lib: "MicroLibrary",
    callee_lib: "MicroLibrary",
    options: GateOptions | None = None,
) -> Gate:
    """Deprecated alias of :func:`make_channel` (no guard folding)."""
    warnings.warn(
        "make_gate is deprecated; use make_channel(kind, machine, caller, "
        "callee, options=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return make_channel(kind, machine, caller_lib, callee_lib, options=options)
