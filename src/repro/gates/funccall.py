"""No-hardware-isolation channels: plain function calls.

:class:`DirectChannel` serves edges whose endpoints share a compartment
— FlexOS's builder "will replace the call gates with direct function
calls" in that case.  It still enforces the export surface and
caller-side instrumentation, but performs no switch of any kind.

:class:`ProfileChannel` serves *cross-compartment* edges when the
isolation backend is "none": there is no protection-domain switch (and
no switch cost), but the callee's code was compiled with the callee
compartment's hardening, so the instrumentation profile must follow the
code — software hardening is a property of the compartment's binary,
not of the calling thread.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gates.base import Gate, GateOptions
from repro.machine.cpu import Context

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.libos.library import MicroLibrary
    from repro.machine.machine import Machine


class DirectChannel(Gate):
    """Same-compartment call: entry checks, no protection switch."""

    KIND = "direct"
    #: Not a compartment boundary: counts as a direct call, never as a
    #: gate crossing.
    IS_BOUNDARY = False
    EXTRA_COUNTER = "direct_calls"

    def _exit(self) -> None:
        self.machine.cpu.charge(self.machine.cost.ret_ns)

    def _enter_fast(self, entry, args, cpu) -> None:
        pass

    def _exit_fast(self, entry, cpu) -> None:
        cpu.charge(self._ret_ns)


class ProfileChannel(Gate):
    """Cross-compartment call without hardware isolation.

    Costs the same as a direct call but carries the callee
    compartment's instrumentation profile (so e.g. an ASAN-hardened
    LibC pays ASAN costs for its own code even when called from an
    unhardened application compartment).
    """

    KIND = "profile"
    #: A compartment boundary (just without a hardware switch): counts
    #: toward ``gate_crossings`` like every other backend, keeping the
    #: historical ``direct_calls`` counter for its call cost class.
    EXTRA_COUNTER = "direct_calls"

    def __init__(
        self,
        machine: "Machine",
        caller_lib: "MicroLibrary",
        callee_lib: "MicroLibrary",
        options: GateOptions | None = None,
    ) -> None:
        super().__init__(machine, caller_lib, callee_lib, options)
        self.callee_comp: "Compartment" = callee_lib.compartment

    def _enter(self, fn: str, args: tuple) -> None:
        self.machine.cpu.push_context(
            self.callee_comp.make_context(label=f"{self.callee_lib.NAME}.{fn}")
        )

    def _exit(self) -> None:
        self.machine.cpu.pop_context()
        self.machine.cpu.charge(self.machine.cost.ret_ns)

    def _enter_fast(self, entry, args, cpu) -> None:
        comp = self.callee_comp
        ctx = self._ctx_pool
        if ctx is None:
            ctx = Context(
                address_space=comp.address_space,
                pkru=comp.pkru_value,
                profile=comp.profile,
                label=entry.ctx_label,
                capabilities=comp.capabilities,
            )
        else:
            self._ctx_pool = None
            ctx.label = entry.ctx_label
            ctx.pkru = comp.pkru_value
        cpu.push_context(ctx)

    def _exit_fast(self, entry, cpu) -> None:
        ctx = cpu.pop_context()
        if self._ctx_pool is None:
            self._ctx_pool = ctx
        cpu.charge(self._ret_ns)
