"""Control-flow integrity: cross-library call-target checking.

Clang-style forward-edge CFI: every outgoing cross-library call from a
hardened compartment is checked against the call graph a static
analysis would compute (each library's ``TRUE_BEHAVIOR["calls"]``).  In
metadata terms this is the paper's transformation ``Call(*) →
Call(func. list)`` — see :mod:`repro.core.hardening` for the spec-level
side of the same technique.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.machine.faults import SHViolation
from repro.sh.base import HardenContext, Hardener

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment


class CFIHardener(Hardener):
    """Checks every outgoing call against the analysed call graph."""

    NAME = "cfi"
    MITIGATES = frozenset({"control-flow-hijack", "arbitrary-call"})

    def apply(self, compartment: "Compartment", context: HardenContext) -> None:
        cost = context.machine.cost
        # Allowed edges: caller library name → set of "callee::fn", from
        # each library's analysed behaviour.  A library without call
        # facts cannot be narrowed: all its calls remain allowed.
        allowed: dict[str, set[str] | None] = {}
        for library in compartment.libraries:
            calls = library.TRUE_BEHAVIOR.get("calls")
            allowed[library.NAME] = set(calls) if calls is not None else None

        def call_monitor(caller: str, callee: str, fn: str) -> None:
            context.machine.cpu.charge(cost.cfi_check_ns)
            context.machine.cpu.bump("cfi_checks")
            targets = allowed.get(caller)
            if targets is None:
                return
            if f"{callee}::{fn}" not in targets:
                raise SHViolation(
                    "cfi",
                    f"{caller} called {callee}::{fn}, outside its analysed "
                    f"call graph",
                )

        compartment.profile.call_monitors.append(call_monitor)
