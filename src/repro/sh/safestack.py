"""Clang SafeStack: split safe/unsafe stacks (cost model).

SafeStack moves address-taken locals to a separate unsafe stack so
that return addresses cannot be corrupted via local-buffer overflows.
The per-call bookkeeping cost is what end-to-end measurements see.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sh.base import HardenContext, Hardener

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment


class SafeStackHardener(Hardener):
    """Adds SafeStack's per-call cost to a compartment."""

    NAME = "safestack"
    MITIGATES = frozenset({"return-address-corruption"})

    def apply(self, compartment: "Compartment", context: HardenContext) -> None:
        cost = context.machine.cost
        compartment.profile.call_extra_ns += cost.safestack_call_ns
