"""Software hardening (SH) runtimes.

FlexOS can harden *individual compartments* instead of (or on top of)
isolating them: "we can apply hardening mechanisms per compartment
(not system-wide), allowing for fine-grained protection and
performance trade-offs" (§3).  Each hardener here mutates a
compartment's :class:`~repro.machine.cpu.DomainProfile` (instrumentation
cost factors, access/call monitors) and, where the technique demands
it, wraps the compartment's allocator — the reason FlexOS supports
per-compartment allocators at all.

Implemented techniques (the paper's list): ASAN/KASAN, CFI, DFI,
UBSAN, stack protector, SafeStack.
"""

from repro.sh.asan import AsanAllocator, AsanHardener, ShadowMap
from repro.sh.base import HardenContext, Hardener
from repro.sh.cfi import CFIHardener
from repro.sh.dfi import DFIHardener
from repro.sh.mte import MteAllocator, MteHardener
from repro.sh.registry import SH_TECHNIQUES, make_hardener
from repro.sh.safestack import SafeStackHardener
from repro.sh.stackprotector import StackProtectorHardener
from repro.sh.ubsan import UBSanHardener

__all__ = [
    "AsanAllocator",
    "AsanHardener",
    "CFIHardener",
    "DFIHardener",
    "HardenContext",
    "Hardener",
    "MteAllocator",
    "MteHardener",
    "SafeStackHardener",
    "SH_TECHNIQUES",
    "ShadowMap",
    "StackProtectorHardener",
    "UBSanHardener",
    "make_hardener",
]
