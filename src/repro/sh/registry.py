"""Software-hardening registry: technique name → hardener class."""

from __future__ import annotations

from repro.machine.faults import GateError
from repro.sh.asan import AsanHardener
from repro.sh.base import Hardener
from repro.sh.cfi import CFIHardener
from repro.sh.dfi import DFIHardener
from repro.sh.mte import MteHardener
from repro.sh.safestack import SafeStackHardener
from repro.sh.stackprotector import StackProtectorHardener
from repro.sh.ubsan import UBSanHardener

#: All selectable techniques by configuration name.  "kasan" is the
#: kernel flavour of ASAN the paper enables under GCC — same runtime.
SH_TECHNIQUES: dict[str, type[Hardener]] = {
    AsanHardener.NAME: AsanHardener,
    "kasan": AsanHardener,
    CFIHardener.NAME: CFIHardener,
    DFIHardener.NAME: DFIHardener,
    MteHardener.NAME: MteHardener,
    UBSanHardener.NAME: UBSanHardener,
    StackProtectorHardener.NAME: StackProtectorHardener,
    SafeStackHardener.NAME: SafeStackHardener,
}


def make_hardener(name: str) -> Hardener:
    """Instantiate the hardener registered under ``name``."""
    hardener_cls = SH_TECHNIQUES.get(name)
    if hardener_cls is None:
        raise GateError(
            f"unknown SH technique {name!r}; known: {sorted(SH_TECHNIQUES)}"
        )
    return hardener_cls()
