"""Data-flow integrity: write-set enforcement.

WIT/Castro-style DFI: stores from a hardened compartment are checked
against the memory the compartment may legitimately write — its own
regions plus the shared area.  The metadata-level counterpart is the
transformation ``Write(*) → Write(Own[,Shared])``
(:mod:`repro.core.hardening`).

The write-set is looked up against the compartment's mapped regions at
check time, so regions allocated after hardening are covered too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.machine.faults import SHViolation
from repro.sh.base import HardenContext, Hardener

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment


class DFIHardener(Hardener):
    """Checks every store against the compartment's legal write-set."""

    NAME = "dfi"
    MITIGATES = frozenset({"wild-write", "data-flow-hijack"})

    def apply(self, compartment: "Compartment", context: HardenContext) -> None:
        cost = context.machine.cost
        shared_ranges = list(context.shared_ranges)
        profile = compartment.profile
        profile.store_factor *= cost.dfi_store_factor

        def in_shared(vaddr: int) -> bool:
            return any(start <= vaddr < end for start, end in shared_ranges)

        def monitor(machine, kind: str, vaddr: int, size: int) -> None:
            if kind != "store":
                return
            machine.cpu.bump("dfi_checks")
            if in_shared(vaddr):
                return
            # Own memory: a region the compartment itself mapped
            # (tracked explicitly so the check also works without MPK),
            # or — with MPK — a page carrying one of its keys.
            if compartment.owns_address(vaddr):
                return
            space = compartment.address_space
            if (
                compartment.pkey is not None
                and space is not None
                and space.is_mapped(vaddr)
            ):
                entry = space.entry(vaddr)
                if entry.pkey == compartment.pkey:
                    return
                if (
                    compartment.stack_pkey is not None
                    and entry.pkey == compartment.stack_pkey
                ):
                    return
            raise SHViolation(
                "dfi",
                f"store at {vaddr:#x} outside the write-set of "
                f"compartment {compartment.name}",
            )

        profile.monitors.append(monitor)
