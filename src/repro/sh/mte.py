"""ARM MTE-style hardware memory tagging.

The paper cites ARM's Memory Tagging Extension as part of the hardware-
heterogeneity motivation [Bannister 2019].  MTE gives ASAN-class
detection at hardware-assisted cost: allocations are tagged at 16-byte
granule granularity and accesses trap when the pointer's tag no longer
matches the memory's.

Model (deterministic simplification of the 4-bit-tag lottery):

- the whole heap starts "untagged" (any access into never-allocated or
  freed space traps — use-after-free and overflow into free memory);
- ``malloc`` tags the granule-rounded block (no redzones: an overflow
  that lands inside an *adjacent live* block goes undetected, unlike
  ASAN — the honest MTE weakness);
- per-access cost is a small multiplier, far below ASAN's software
  shadow checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.machine.faults import SHViolation
from repro.sh.asan import ShadowMap
from repro.sh.base import HardenContext, Hardener

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.machine.machine import Machine

#: MTE tag granule size.
GRANULE = 16


def _round_up(size: int) -> int:
    return (size + GRANULE - 1) & ~(GRANULE - 1)


class MteAllocator:
    """Wraps a heap allocator with granule tagging.

    ``shadow`` here tracks *untagged* (trapping) space: everything is
    poisoned until allocated, re-poisoned on free.
    """

    def __init__(self, inner, machine: "Machine", shadow: ShadowMap) -> None:
        self.inner = inner
        self.machine = machine
        self.shadow = shadow
        self.name = f"mte({inner.name})"
        #: user address → rounded size.
        self._blocks: dict[int, int] = {}
        # Until tagged, the whole heap traps.
        self.shadow.poison(inner.base, inner.base + inner.size)

    def malloc(self, size: int) -> int:
        cost = self.machine.cost
        self.machine.cpu.charge(cost.mte_alloc_extra_ns)
        self.machine.cpu.bump("mte_mallocs")
        rounded = _round_up(size)
        addr = self.inner.malloc(rounded)
        # Tag the block: carve it out of the trapping region.
        self._carve(addr, addr + rounded)
        self._blocks[addr] = rounded
        return addr

    def _carve(self, start: int, end: int) -> None:
        """Unpoison [start, end) by splitting covering intervals."""
        # Collect and rebuild overlapping intervals (few per op).
        affected = []
        for interval_start in list(self.shadow._starts):
            interval_end = self.shadow._ends[interval_start]
            if interval_start < end and interval_end > start:
                affected.append((interval_start, interval_end))
        for interval_start, interval_end in affected:
            self.shadow.unpoison(interval_start)
            if interval_start < start:
                self.shadow.poison(interval_start, start)
            if interval_end > end:
                self.shadow.poison(end, interval_end)

    def free(self, addr: int) -> None:
        cost = self.machine.cost
        self.machine.cpu.charge(cost.mte_free_extra_ns)
        rounded = self._blocks.pop(addr, None)
        if rounded is None:
            raise SHViolation("mte", f"invalid or double free of {addr:#x}")
        # Retag: the block traps again until reallocated.
        self.shadow.poison(addr, addr + rounded)
        self.inner.free(addr)

    # --- passthrough introspection ----------------------------------------

    def owns(self, addr: int) -> bool:
        return addr in self._blocks

    def block_size(self, addr: int) -> int:
        return self._blocks[addr]

    def contains(self, addr: int) -> bool:
        return self.inner.contains(addr)

    @property
    def bytes_in_use(self) -> int:
        return self.inner.bytes_in_use

    @property
    def live_blocks(self) -> int:
        return len(self._blocks)


class MteHardener(Hardener):
    """Applies MTE tagging to a compartment's heap and accesses."""

    NAME = "mte"
    MITIGATES = frozenset({"heap-overflow", "use-after-free", "oob-read"})

    def apply(self, compartment: "Compartment", context: HardenContext) -> None:
        cost = context.machine.cost
        profile = compartment.profile
        profile.load_factor *= cost.mte_mem_factor
        profile.store_factor *= cost.mte_mem_factor
        inner = compartment.allocator
        if inner is None or isinstance(inner, MteAllocator):
            return
        shadow = ShadowMap()
        wrapped = MteAllocator(inner, context.machine, shadow)

        def monitor(machine, kind: str, vaddr: int, size: int) -> None:
            # Tag check is hardware-parallel: no flat per-access charge.
            if shadow.intersects(vaddr, size):
                raise SHViolation(
                    "mte",
                    f"{kind} of {size} bytes at {vaddr:#x} hits an "
                    f"untagged/retagged granule (compartment "
                    f"{compartment.name})",
                )

        profile.monitors.append(monitor)
        for other in context.compartments:
            if other.allocator is inner:
                other.allocator = wrapped
