"""Undefined-behaviour sanitizer (cost model only).

UBSAN instruments arithmetic, shifts, and pointer adjustments.  In the
simulation its detectable events don't occur mechanically (Python
arithmetic is well-defined), so this hardener models the *cost* —
a modest multiplier on memory-op-bound work — which is the component
the paper's end-to-end numbers see.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sh.base import HardenContext, Hardener

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment


class UBSanHardener(Hardener):
    """Adds UBSAN's instrumentation overhead to a compartment."""

    NAME = "ubsan"
    MITIGATES = frozenset({"integer-overflow", "invalid-shift"})

    def apply(self, compartment: "Compartment", context: HardenContext) -> None:
        cost = context.machine.cost
        compartment.profile.load_factor *= cost.ubsan_mem_factor
        compartment.profile.store_factor *= cost.ubsan_mem_factor
