"""GCC "strong" stack protector: canaries on function frames.

Charges the canary write+check per call made from the hardened
compartment, and provides the canary primitives the fault-injection
tests use to demonstrate smash detection on simulated stack frames.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.machine.faults import SHViolation
from repro.sh.base import HardenContext, Hardener

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.machine.machine import Machine

#: The canary word written below each protected frame.
CANARY = 0xDEADC0DE5AFE5AFE


def place_canary(machine: "Machine", addr: int) -> None:
    """Write the canary word at a frame boundary."""
    machine.store(addr, struct.pack("<Q", CANARY))


def verify_canary(machine: "Machine", addr: int) -> None:
    """Check the canary; raises SHViolation when it was clobbered."""
    raw = machine.load(addr, 8)
    if struct.unpack("<Q", raw)[0] != CANARY:
        raise SHViolation(
            "stack-protector", f"stack smashing detected at {addr:#x}"
        )


class StackProtectorHardener(Hardener):
    """Adds canary cost to every call from the compartment."""

    NAME = "stackprotector"
    MITIGATES = frozenset({"stack-smash"})

    def apply(self, compartment: "Compartment", context: HardenContext) -> None:
        cost = context.machine.cost
        compartment.profile.call_extra_ns += cost.stackprot_call_ns
