"""Hardener interface and application context."""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.machine.machine import Machine


@dataclasses.dataclass
class HardenContext:
    """Everything a hardener may need while instrumenting a compartment.

    ``compartments`` lists every compartment of the image so that
    techniques which wrap a *shared* object (e.g. ASAN wrapping a
    global allocator used by everyone) can propagate the wrapper to all
    referents — the exact mechanism behind the paper's Fig. 4 global-
    vs-local-allocator result.
    """

    machine: "Machine"
    compartments: list["Compartment"]
    #: (start, end) ranges of the shared heap(s), for write-set checks.
    shared_ranges: list[tuple[int, int]] = dataclasses.field(default_factory=list)


class Hardener:
    """Base class: one software-hardening technique.

    Subclasses override :meth:`apply` to instrument a compartment's
    profile/allocator, and class attributes describe the technique for
    the design-space explorer:

    - :attr:`NAME` — registry key ("asan", "cfi", ...);
    - :attr:`MITIGATES` — threat tags this technique addresses, used by
      the metadata transformations in :mod:`repro.core.hardening`.
    """

    NAME = "abstract"
    MITIGATES: frozenset[str] = frozenset()

    def apply(self, compartment: "Compartment", context: HardenContext) -> None:
        """Instrument ``compartment``; mutates its profile in place."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"
