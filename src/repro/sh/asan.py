"""Address sanitizer: redzones, quarantine, shadow checks.

The KASAN-style hardener the paper enables with GCC.  Three effects,
all of which matter to the evaluation:

1. every load/store in the hardened compartment pays the shadow-check
   cost (the dominant SH slowdown, Table 1);
2. ``malloc``/``free`` are instrumented — redzones poisoned around
   each block and freed blocks quarantined — which is why a *global*
   allocator makes the whole system pay ASAN's allocator tax even when
   only one compartment is hardened (Fig. 4);
3. out-of-bounds and use-after-free accesses are actually *caught*
   (:class:`~repro.machine.faults.SHViolation`), which the fault-
   injection tests exercise.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import TYPE_CHECKING

from repro.machine.faults import SHViolation
from repro.sh.base import HardenContext, Hardener

if TYPE_CHECKING:
    from repro.libos.compartment import Compartment
    from repro.machine.machine import Machine


class ShadowMap:
    """Poisoned-byte tracking (the ASAN shadow memory).

    Intervals are kept disjoint (redzones of distinct blocks never
    overlap), so membership is a binary search.
    """

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: dict[int, int] = {}

    def poison(self, start: int, end: int) -> None:
        """Mark [start, end) as poisoned."""
        if end <= start:
            return
        bisect.insort(self._starts, start)
        self._ends[start] = end

    def unpoison(self, start: int) -> None:
        """Remove the poisoned interval beginning at ``start``."""
        end = self._ends.pop(start, None)
        if end is None:
            return
        index = bisect.bisect_left(self._starts, start)
        if index < len(self._starts) and self._starts[index] == start:
            self._starts.pop(index)

    def intersects(self, start: int, size: int) -> bool:
        """True if [start, start+size) touches any poisoned byte."""
        if not self._starts:
            return False
        end = start + size
        index = bisect.bisect_right(self._starts, start)
        if index > 0 and self._ends[self._starts[index - 1]] > start:
            return True
        return index < len(self._starts) and self._starts[index] < end

    @property
    def poisoned_intervals(self) -> int:
        """Number of poisoned intervals (diagnostics)."""
        return len(self._starts)


class AsanAllocator:
    """Wraps a heap allocator with redzones and a free quarantine."""

    #: Redzone bytes placed before and after every allocation.
    REDZONE = 16
    #: Number of freed blocks kept poisoned before real release.
    QUARANTINE = 16

    def __init__(self, inner, machine: "Machine", shadow: ShadowMap) -> None:
        self.inner = inner
        self.machine = machine
        self.shadow = shadow
        self.name = f"asan({inner.name})"
        #: user address → (base address, user size)
        self._blocks: dict[int, tuple[int, int]] = {}
        self._quarantine: deque[tuple[int, int]] = deque()

    def malloc(self, size: int) -> int:
        cost = self.machine.cost
        self.machine.cpu.charge(cost.asan_alloc_extra_ns)
        self.machine.cpu.bump("asan_mallocs")
        base = self.inner.malloc(size + 2 * self.REDZONE)
        user = base + self.REDZONE
        self.shadow.poison(base, user)
        self.shadow.poison(user + size, user + size + self.REDZONE)
        self._blocks[user] = (base, size)
        return user

    def free(self, addr: int) -> None:
        cost = self.machine.cost
        self.machine.cpu.charge(cost.asan_free_extra_ns)
        entry = self._blocks.pop(addr, None)
        if entry is None:
            raise SHViolation("asan", f"invalid or double free of {addr:#x}")
        base, size = entry
        # Poison the whole user range: any touch until the block leaves
        # quarantine is a use-after-free.
        self.shadow.poison(addr, addr + size)
        self._quarantine.append((base, addr))
        while len(self._quarantine) > self.QUARANTINE:
            old_base, old_user = self._quarantine.popleft()
            self.shadow.unpoison(old_base)
            self.shadow.unpoison(old_user)  # user range poison
            # The trailing redzone interval starts at old_user + its
            # original size; recover it from the inner block size.
            inner_size = self.inner.block_size(old_base)
            user_size = inner_size - 2 * self.REDZONE
            self.shadow.unpoison(old_user + user_size)
            self.inner.free(old_base)

    def flush_quarantine(self) -> None:
        """Release everything still quarantined (teardown/tests)."""
        while self._quarantine:
            base, user = self._quarantine.popleft()
            self.shadow.unpoison(base)
            self.shadow.unpoison(user)
            inner_size = self.inner.block_size(base)
            self.shadow.unpoison(user + inner_size - 2 * self.REDZONE)
            self.inner.free(base)

    # --- passthrough introspection -------------------------------------------

    def owns(self, addr: int) -> bool:
        return addr in self._blocks

    def block_size(self, addr: int) -> int:
        return self._blocks[addr][1]

    def contains(self, addr: int) -> bool:
        return self.inner.contains(addr)

    @property
    def bytes_in_use(self) -> int:
        return self.inner.bytes_in_use

    @property
    def live_blocks(self) -> int:
        return len(self._blocks)


class AsanHardener(Hardener):
    """Applies ASAN to a compartment: cost factors, monitor, allocator."""

    NAME = "asan"
    MITIGATES = frozenset({"heap-overflow", "use-after-free", "oob-read"})

    def apply(self, compartment: "Compartment", context: HardenContext) -> None:
        shadow = ShadowMap()
        cost = context.machine.cost
        profile = compartment.profile
        profile.load_factor *= cost.asan_mem_factor
        profile.store_factor *= cost.asan_mem_factor

        def monitor(machine, kind: str, vaddr: int, size: int) -> None:
            machine.cpu.charge(cost.asan_check_ns)
            # No-watch fast-out: nothing poisoned → skip the interval
            # search entirely (the common case between allocations).
            if shadow._starts and shadow.intersects(vaddr, size):
                raise SHViolation(
                    "asan",
                    f"{kind} of {size} bytes at {vaddr:#x} touches poisoned "
                    f"memory (compartment {compartment.name})",
                )

        profile.monitors.append(monitor)

        inner = compartment.allocator
        if inner is None or isinstance(inner, AsanAllocator):
            return
        wrapped = AsanAllocator(inner, context.machine, shadow)
        # Propagate: any compartment sharing this allocator instance
        # (global-allocator policy) now pays the instrumented malloc —
        # the paper's Fig. 4 effect.
        for other in context.compartments:
            if other.allocator is inner:
                other.allocator = wrapped
