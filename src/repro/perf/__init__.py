"""Measurement utilities over the simulated clock."""

from repro.perf.meter import (
    BenchResult,
    Meter,
    gbps,
    mbps,
    mreq_per_s,
    percentile,
)

__all__ = ["BenchResult", "Meter", "gbps", "mbps", "mreq_per_s", "percentile"]
