"""Throughput/latency measurement over the simulated clock.

The paper measures wall-clock throughput on a testbed; here the
deterministic simulated clock plays that role, so repeated runs give
identical numbers and shapes are noise-free.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.machine.machine import Machine


def mbps(payload_bytes: float, elapsed_ns: float) -> float:
    """Megabits per second from bytes over simulated nanoseconds."""
    if elapsed_ns <= 0:
        return 0.0
    return payload_bytes * 8.0 / elapsed_ns * 1e3


def gbps(payload_bytes: float, elapsed_ns: float) -> float:
    """Gigabits per second."""
    return mbps(payload_bytes, elapsed_ns) / 1e3


def mreq_per_s(requests: float, elapsed_ns: float) -> float:
    """Million requests per second."""
    if elapsed_ns <= 0:
        return 0.0
    return requests / elapsed_ns * 1e3


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (``fraction`` in [0, 1]).

    True nearest-rank semantics: the smallest value such that at least
    ``fraction`` of the observations are ≤ it, i.e. the element at rank
    ``ceil(fraction * n)`` (1-based).  ``fraction=0`` returns the
    minimum, ``fraction=1`` the maximum.
    """
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("percentile fraction must be in [0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


@dataclasses.dataclass
class BenchResult:
    """One measurement: work done over a simulated interval."""

    label: str
    payload_bytes: float = 0.0
    requests: float = 0.0
    elapsed_ns: float = 0.0
    stats: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Per-request simulated latencies, when the workload recorded them.
    latencies_ns: list[float] = dataclasses.field(default_factory=list)

    def latency_percentile(self, fraction: float) -> float:
        """Latency percentile in ns (0 when latencies weren't recorded)."""
        return percentile(self.latencies_ns, fraction)

    @property
    def mean_latency_ns(self) -> float:
        """Mean per-request latency (0 when not recorded)."""
        if not self.latencies_ns:
            return 0.0
        return sum(self.latencies_ns) / len(self.latencies_ns)

    @property
    def throughput_mbps(self) -> float:
        """Payload throughput in Mb/s."""
        return mbps(self.payload_bytes, self.elapsed_ns)

    @property
    def throughput_gbps(self) -> float:
        """Payload throughput in Gb/s."""
        return gbps(self.payload_bytes, self.elapsed_ns)

    @property
    def mreq_s(self) -> float:
        """Request rate in Mreq/s."""
        return mreq_per_s(self.requests, self.elapsed_ns)

    @property
    def ns_per_request(self) -> float:
        """Mean simulated time per request."""
        return self.elapsed_ns / self.requests if self.requests else 0.0

    def __str__(self) -> str:  # pragma: no cover - display
        parts = [self.label]
        if self.payload_bytes:
            parts.append(f"{self.throughput_mbps:.1f} Mb/s")
        if self.requests:
            parts.append(f"{self.mreq_s:.3f} Mreq/s")
        return " ".join(parts)


class Meter:
    """Context manager capturing a clock + counter delta.

    Example::

        with Meter(machine, "iperf 1KiB") as meter:
            image.run(until=server_done)
        result = meter.result(payload_bytes=total)
    """

    def __init__(self, machine: "Machine", label: str = "") -> None:
        self.machine = machine
        self.label = label
        self._start_ns = 0.0
        self._start_stats: dict[str, float] = {}
        self.elapsed_ns = 0.0

    def __enter__(self) -> "Meter":
        self._start_ns = self.machine.cpu.clock_ns
        self._start_stats = dict(self.machine.cpu.stats)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed_ns = self.machine.cpu.clock_ns - self._start_ns

    def stats_delta(self) -> dict[str, float]:
        """Counter changes during the measured interval."""
        current = self.machine.cpu.stats
        keys = set(current) | set(self._start_stats)
        return {
            key: current.get(key, 0.0) - self._start_stats.get(key, 0.0)
            for key in sorted(keys)
        }

    def result(
        self,
        payload_bytes: float = 0.0,
        requests: float = 0.0,
        latencies_ns: Iterable[float] | None = None,
    ) -> BenchResult:
        """Package the measurement.

        Pass the workload's recorded per-request latencies so
        :meth:`BenchResult.latency_percentile` works from the Meter
        path instead of requiring callers to patch the result.
        """
        return BenchResult(
            label=self.label,
            payload_bytes=payload_bytes,
            requests=requests,
            elapsed_ns=self.elapsed_ns,
            stats=self.stats_delta(),
            latencies_ns=list(latencies_ns) if latencies_ns is not None else [],
        )
