"""The fault injector: deterministic hooks into the simulated machine.

One :class:`FaultInjector` is armed per run via :func:`arm`.  The
machine exposes it as ``machine.injector``; hook sites (gate
crossings, heap mallocs, scheduler switch-ins, VM notifications) call
in only when an injector is attached, so the common path costs one
attribute check.  Everything the injector does is a pure function of
the armed :class:`~repro.resilience.plan.InjectionPlan` and the
simulated event stream — no wall clock, no unseeded randomness — so a
seeded campaign replays bit-identically.

The injector keeps an audit trail (:attr:`events`) of every fault it
fired and what the machine did about it (``raised`` / ``trapped`` /
``landed`` / ``killed`` / ``dropped`` / ``duplicated``), which the
campaign driver turns into the containment matrix.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import random

from repro.machine.faults import InjectedFault, MachineError, PowerFailure
from repro.resilience.plan import FaultSpec, InjectionPlan

if TYPE_CHECKING:
    from repro.core.image import Image
    from repro.gates.base import Gate
    from repro.libos.sched.base import Thread
    from repro.machine.ept import VMDomain
    from repro.machine.machine import Machine

#: Bytes a wild write scribbles over the victim's canary region.
_WILD_PAYLOAD = b"\xde\xad\xbe\xef\xfa\x11\xed\x00"
#: Canary written at arm time; corruption check compares against it.
_CANARY = b"\x5a" * len(_WILD_PAYLOAD)


@dataclasses.dataclass
class InjectionEvent:
    """One fault fired by the injector (audit-trail row)."""

    site: str
    at_ns: float
    detail: str
    outcome: str


@dataclasses.dataclass
class WildWriteProbe:
    """A canary region in a victim compartment, checked after the run."""

    victim: str
    addr: int
    space: object  # AddressSpace of the victim compartment

    def intact(self, machine: "Machine") -> bool:
        """True while the canary is uncorrupted (DMA read, zero cost)."""
        return machine.dma_read(self.space, self.addr, len(_CANARY)) == _CANARY


class FaultInjector:
    """Executes an :class:`InjectionPlan` against one machine."""

    def __init__(self, plan: InjectionPlan) -> None:
        self.plan = plan
        self.machine: "Machine | None" = None
        #: Per-spec count of events its filters accepted so far.
        self._seen: dict[int, int] = {index: 0 for index in range(len(plan.specs))}
        #: Audit trail of fired faults.
        self.events: list[InjectionEvent] = []
        #: Wild-write canary probes, one per wild-write spec.
        self.probes: list[WildWriteProbe] = []
        self._probe_by_spec: dict[int, WildWriteProbe] = {}

    # --- lifecycle --------------------------------------------------------

    def attach(self, image: "Image") -> "FaultInjector":
        """Bind to the image's machine and resolve victim addresses."""
        machine = image.machine
        self.machine = machine
        for index, spec in enumerate(self.plan.specs):
            if spec.site != "wild-write":
                continue
            compartment = image.compartment_of(spec.victim)
            addr = compartment.alloc_region(len(_CANARY))
            machine.dma_write(compartment.address_space, addr, _CANARY)
            probe = WildWriteProbe(
                victim=spec.victim, addr=addr, space=compartment.address_space
            )
            self.probes.append(probe)
            self._probe_by_spec[index] = probe
        machine.injector = self
        return self

    def detach(self) -> None:
        if self.machine is not None and self.machine.injector is self:
            self.machine.injector = None

    # --- introspection ----------------------------------------------------

    @property
    def fired(self) -> int:
        """Number of faults fired so far."""
        return len(self.events)

    def probes_intact(self) -> bool:
        """True while no wild write corrupted a victim canary."""
        assert self.machine is not None
        return all(probe.intact(self.machine) for probe in self.probes)

    def _record(self, site: str, detail: str, outcome: str) -> InjectionEvent:
        assert self.machine is not None
        cpu = self.machine.cpu
        cpu.bump("resilience.injected")
        event = InjectionEvent(
            site=site, at_ns=cpu.clock_ns, detail=detail, outcome=outcome
        )
        self.events.append(event)
        tracer = self.machine.obs.tracer
        if tracer.enabled:
            tracer.instant(f"inject:{site}", "resilience", detail=detail)
        return event

    def _due(self, index: int, spec: FaultSpec) -> bool:
        """Count one matching event; True when the spec should fire."""
        self._seen[index] += 1
        seen = self._seen[index]
        return spec.nth <= seen < spec.nth + spec.count

    # --- hook: gate crossings --------------------------------------------

    def on_crossing(self, gate: "Gate", fn: str) -> None:
        """Called inside the callee's domain, before the handler runs.

        May raise :class:`InjectedFault` (site ``gate-crash``) or
        perform a wild write that the isolation backend may trap
        (``ProtectionFault``/``PageFault``) — both unwind through the
        gate's containment translation like any real callee fault.
        """
        caller = gate.caller_lib.NAME
        callee = gate.callee_lib.NAME
        for index, spec in enumerate(self.plan.specs):
            if spec.site == "gate-crash":
                if not spec.matches_edge(caller, callee, gate.KIND):
                    continue
                if not self._due(index, spec):
                    continue
                edge = f"{caller}->{callee}.{fn}"
                self._record("gate-crash", edge, "raised")
                raise InjectedFault("gate-crash", f"crossing {edge}")
            elif spec.site == "wild-write":
                if not spec.matches_edge(caller, callee, gate.KIND):
                    continue
                if not self._due(index, spec):
                    continue
                self._wild_write(index, spec, f"{caller}->{callee}.{fn}")

    def _wild_write(self, index: int, spec: FaultSpec, edge: str) -> None:
        """Stray store into the victim's canary from the current context."""
        assert self.machine is not None
        probe = self._probe_by_spec[index]
        detail = f"{edge} -> {probe.victim}@{probe.addr:#x}"
        event = self._record("wild-write", detail, "landed")
        try:
            self.machine.store(probe.addr, _WILD_PAYLOAD)
        except MachineError:
            # The isolation backend stopped the stray store.
            event.outcome = "trapped"
            raise
        if probe.intact(self.machine):
            # The store went through but hit the attacker's *own*
            # address space (VM backend: the victim's pages are not
            # mapped here at all) — the victim is untouched.
            event.outcome = "deflected"
        # Otherwise the write silently corrupted the victim (backend
        # "none" semantics) — the canary probe will report it.

    # --- hook: allocator --------------------------------------------------

    def on_malloc(self, allocator, size: int) -> None:
        """Called per malloc; may raise injected heap exhaustion."""
        for index, spec in enumerate(self.plan.specs):
            if spec.site != "alloc-exhaustion":
                continue
            if spec.heap is not None and spec.heap not in allocator.name:
                continue
            if not self._due(index, spec):
                continue
            detail = f"{allocator.name} malloc({size})"
            self._record("alloc-exhaustion", detail, "raised")
            raise InjectedFault("alloc-exhaustion", detail)

    # --- hook: scheduler --------------------------------------------------

    def should_kill(self, thread: "Thread") -> bool:
        """Called on switch-in; True tells the scheduler to kill it."""
        for index, spec in enumerate(self.plan.specs):
            if spec.site != "sched-kill":
                continue
            if spec.thread not in thread.name:
                continue
            if not self._due(index, spec):
                continue
            self._record("sched-kill", f"thread {thread.name}", "killed")
            return True
        return False

    # --- hook: block-device flush ----------------------------------------

    def on_blk_flush(self, blk, sector: int) -> None:
        """Called per sector writeback inside ``blk_flush``.

        When a ``blk-torn-write`` spec is due, the in-flight sector is
        persisted *torn* (seed-derived prefix length) and the machine
        loses power: a :class:`PowerFailure` unwinds raw through every
        gate — durability faults are whole-machine by design, not
        containable by a compartment boundary.
        """
        for index, spec in enumerate(self.plan.specs):
            if spec.site != "blk-torn-write":
                continue
            if not self._due(index, spec):
                continue
            rng = random.Random((self.plan.seed << 16) ^ sector)
            keep = blk.tear_on_medium(sector, rng)
            detail = f"sector {sector} torn at byte {keep}"
            self._record("blk-torn-write", detail, "raised")
            raise PowerFailure("blk-torn-write", detail)

    # --- hook: KV lifecycle phases ---------------------------------------

    def on_kv_phase(self, kv, phase: str) -> None:
        """Called at KV crash points (``compaction`` / ``recovery``).

        The matching ``crash-mid-*`` spec drops power mid-phase.  The
        store's own crash-consistency machinery (sector-aligned
        barriers, dual manifests, epoch-checked hints) is what must
        make the interrupted phase harmless.
        """
        site = f"crash-mid-{phase}"
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site:
                continue
            if not self._due(index, spec):
                continue
            detail = f"kv {phase} (seq {kv._seq})"
            self._record(site, detail, "raised")
            raise PowerFailure(site, detail)

    # --- hook: cluster replication ---------------------------------------

    def on_repl_op(self, primary: str, follower: str) -> str:
        """Delivery verdict for one replication doorbell on the fabric.

        ``repl-drop`` specs lose the doorbell in flight (the channel
        retries with vm-rpc-style timeout backoff); the optional
        ``caller`` filter names the primary shard.
        """
        for index, spec in enumerate(self.plan.specs):
            if spec.site != "repl-drop":
                continue
            if spec.caller is not None and spec.caller != primary:
                continue
            if not self._due(index, spec):
                continue
            self._record(
                "repl-drop", f"{primary} -> {follower}", "dropped"
            )
            return "dropped"
        return "delivered"

    def on_repl_commit(self, primary: str, follower: str) -> None:
        """Crash point between a replication doorbell and its reply.

        Called on the primary after the follower has durably applied
        the record but before the primary acks the client.  A due
        ``repl-crash-primary`` spec drops the primary's power: the
        write exists on the follower, was never acked, and failover
        must not resurrect it as an acked loss (nor lose it if a
        retried client did see an ack).
        """
        for index, spec in enumerate(self.plan.specs):
            if spec.site != "repl-crash-primary":
                continue
            if spec.caller is not None and spec.caller != primary:
                continue
            if not self._due(index, spec):
                continue
            detail = f"{primary} died before acking ({follower} applied)"
            self._record("repl-crash-primary", detail, "raised")
            raise PowerFailure("repl-crash-primary", detail)

    # --- hook: VM notifications ------------------------------------------

    def on_vm_notify(self, domain: "VMDomain") -> str:
        """Delivery verdict for one inter-VM notification."""
        for index, spec in enumerate(self.plan.specs):
            if spec.site not in ("vm-drop", "vm-dup"):
                continue
            if not self._due(index, spec):
                continue
            if spec.site == "vm-drop":
                self._record("vm-drop", f"notify -> {domain.name}", "dropped")
                return "dropped"
            self._record("vm-dup", f"notify -> {domain.name}", "duplicated")
            return "duplicated"
        return "delivered"


def arm(image: "Image", plan: InjectionPlan) -> FaultInjector:
    """Arm ``plan`` against ``image``; returns the attached injector."""
    return FaultInjector(plan).attach(image)
