"""Seeded fault-injection campaigns → the containment matrix.

A campaign runs one workload cell per (backend × fault site × seeded
schedule): build an image, arm the site's :class:`InjectionPlan`,
drive an iperf transfer with a bounded retry budget (the supervisor a
production deployment would have), and classify what the injected
fault did:

- ``recovered``  — the fault fired and the workload still completed
  (VM-RPC retries absorbed it, or the failed compartment restarted);
- ``contained``  — the fault was stopped at a boundary (typed
  ``CompartmentFailure``/trap/reaped thread) but the workload did not
  finish within the retry budget;
- ``propagated`` — the fault silently corrupted another compartment's
  memory (a wild write landed) — the outcome isolation exists to
  prevent;
- ``not-triggered`` — the site never fired under this backend (e.g.
  VM notification faults on a non-VM backend).

Everything is a pure function of the seed and the simulated machine,
so the same seed always yields the identical matrix.

**Recovery campaigns** (``--recovery``) run the durability variant:
a redis server journaling SET/DEL through a gate into the storage
compartment (``blk`` + ``kv``), power failures injected at the storage
sites (``blk-torn-write``, ``crash-mid-compaction``,
``crash-mid-recovery``), and a *recovery verdict* per cell:

- ``recovered-state``  — after crash + reboot + recovery, every
  acknowledged (flushed) write reads back exactly, and no torn record
  surfaced (CRC framing discarded them);
- ``lost-acked-write`` — an acknowledged write is missing after
  recovery (the durability contract is broken);
- ``torn-surfaced``    — recovery exposed garbage bytes (a torn record
  escaped the CRC check) — the worst verdict;
- ``not-triggered``    — the armed fault never fired.

CLI (used by the CI smoke steps)::

    python -m repro.resilience.campaign --backends mpk-shared,vm-rpc \\
        --sites wild-write --schedules 1 --seed 7 \\
        --check-contained wild-write
    python -m repro.resilience.campaign --recovery --schedules 2 \\
        --seed 11 --check-recovered blk-torn-write
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

import random

from repro.core.builder import build_image
from repro.core.config import BuildConfig
from repro.machine.faults import MachineError, PowerFailure
from repro.resilience.injector import FaultInjector, arm
from repro.resilience.plan import InjectionPlan

#: Backends a campaign sweeps by default.
DEFAULT_BACKENDS = ("none", "mpk-shared", "mpk-switched", "vm-rpc", "cheri")
#: Fault sites a campaign arms by default.
DEFAULT_SITES = (
    "gate-crash",
    "wild-write",
    "alloc-exhaustion",
    "sched-kill",
    "vm-drop",
)
#: Severity order for aggregating schedule outcomes into a matrix cell.
_SEVERITY = {"not-triggered": 0, "recovered": 1, "contained": 2, "propagated": 3}

#: Workload shape: a small iperf transfer, netstack isolated from the
#: rest (the paper's Fig. 3 two-compartment split).
_LIBRARIES = ["libc", "netstack", "iperf"]
_COMPARTMENTS = [["netstack"], ["sched", "alloc", "libc", "iperf"]]
_BUFFER_SIZE = 1024
_TOTAL_BYTES = 32 * 1024


def default_plan(site: str, seed: int) -> InjectionPlan:
    """The canonical single-fault plan for one site."""
    plan = InjectionPlan(seed=seed)
    if site == "gate-crash":
        return plan.crash_crossing(callee="netstack", nth=4)
    if site == "wild-write":
        # A hijacked netstack scribbles into the scheduler's pages —
        # the cross-compartment corruption isolation must stop.
        return plan.wild_write(victim="sched", callee="netstack", nth=4)
    if site == "alloc-exhaustion":
        return plan.exhaust_alloc(heap=None, nth=1)
    if site == "sched-kill":
        # The iperf thread gets few switch-ins under VM backends (it
        # blocks on whole rx batches), so keep the trigger early and
        # the schedule jitter tight or jittered schedules never fire.
        return plan.kill_thread(thread="iperf", nth=1, jitter=1)
    if site == "vm-drop":
        return plan.drop_vm_notify(nth=5)
    if site == "vm-dup":
        return plan.duplicate_vm_notify(nth=5)
    raise ValueError(f"unknown fault site {site!r}")


def _revive(image) -> None:
    """Between attempts: wait out restart backoffs, respawn dead drivers.

    This is the supervisor half of ``restart-with-backoff``: the gate
    restarts a failed compartment on the next crossing once its
    deadline passes, so the supervisor merely advances simulated time
    to that deadline and respawns service threads that died with the
    failure.
    """
    cpu = image.machine.cpu
    for compartment in image.compartments:
        if (
            compartment.failed
            and compartment.failure_policy == "restart-with-backoff"
            and compartment.restart_at_ns > cpu.clock_ns
        ):
            cpu.charge(compartment.restart_at_ns - cpu.clock_ns)
    if image.has_lib("netstack"):
        alive = any(
            thread.name == "netstack-rx"
            for thread in image.scheduler.threads.values()
        )
        if not alive:
            image.start_network()


def _classify(
    injector: FaultInjector,
    completed: bool,
    failures: list[str],
    thread_failures: int,
) -> str:
    if injector.fired == 0:
        return "not-triggered"
    if not injector.probes_intact():
        return "propagated"
    if completed:
        return "recovered"
    stopped = (
        thread_failures > 0
        or any(event.outcome != "landed" for event in injector.events)
        or any(
            name.startswith(("CompartmentFailure", "RPCTimeout"))
            for name in failures
        )
    )
    return "contained" if stopped else "propagated"


def run_cell(
    backend: str,
    site: str,
    plan: InjectionPlan,
    policy: str = "restart-with-backoff",
    attempts: int = 4,
    total_bytes: int = _TOTAL_BYTES,
) -> dict:
    """One campaign cell: build, arm, drive, classify."""
    from repro.apps.workload import run_iperf

    config = BuildConfig(
        libraries=list(_LIBRARIES),
        compartments=[list(group) for group in _COMPARTMENTS],
        backend=backend,
        failure_policy=policy,
        name=f"resilience:{backend}:{site}",
    )
    image = build_image(config)
    injector = arm(image, plan)
    completed = False
    failures: list[str] = []
    first_failure_ns: float | None = None
    used_attempts = 0
    for attempt in range(attempts):
        used_attempts = attempt + 1
        if attempt:
            _revive(image)
        try:
            run_iperf(image, _BUFFER_SIZE, total_bytes)
            completed = True
            break
        except (MachineError, RuntimeError) as exc:
            if isinstance(exc, RuntimeError) and injector.fired == 0:
                # A stall with no injected fault is a harness bug, not
                # a containment result — surface it.
                raise
            failures.append(f"{type(exc).__name__}: {exc}")
            if first_failure_ns is None:
                first_failure_ns = image.clock_ns
    recovery_ns = (
        image.clock_ns - first_failure_ns
        if completed and first_failure_ns is not None
        else None
    )
    thread_failures = len(image.scheduler.thread_failures)
    outcome = _classify(injector, completed, failures, thread_failures)
    counters = image.machine.cpu.metrics.counters
    cell = {
        "backend": backend,
        "site": site,
        "seed": plan.seed,
        "outcome": outcome,
        "completed": completed,
        "attempts": used_attempts,
        "injected": injector.fired,
        "events": [dataclasses.asdict(event) for event in injector.events],
        "failures": failures,
        "thread_failures": thread_failures,
        "contained": int(counters.get("resilience.contained", 0)),
        "restarts": int(counters.get("resilience.restarts", 0)),
        "vm_rpc_retries": int(counters.get("vm_rpc_retries", 0)),
        "recovery_ns": recovery_ns,
        "probes_intact": injector.probes_intact(),
    }
    injector.detach()
    try:
        image.shutdown()
    except MachineError:
        # Teardown of a deliberately-broken image may hit the same
        # failed compartment; the cell verdict is already recorded.
        pass
    return cell


@dataclasses.dataclass
class CampaignResult:
    """Everything one campaign produced."""

    seed: int
    policy: str
    schedules: int
    cells: list[dict]

    def matrix(self) -> dict[str, dict[str, str]]:
        """site → backend → worst outcome across schedules."""
        table: dict[str, dict[str, str]] = {}
        for cell in self.cells:
            row = table.setdefault(cell["site"], {})
            previous = row.get(cell["backend"])
            if (
                previous is None
                or _SEVERITY[cell["outcome"]] > _SEVERITY[previous]
            ):
                row[cell["backend"]] = cell["outcome"]
        return table

    def containment_rate(self, backend: str) -> float:
        """Fraction of triggered cells stopped (contained or recovered)."""
        triggered = [
            cell
            for cell in self.cells
            if cell["backend"] == backend and cell["outcome"] != "not-triggered"
        ]
        if not triggered:
            return 1.0
        stopped = [
            cell
            for cell in triggered
            if cell["outcome"] in ("contained", "recovered")
        ]
        return len(stopped) / len(triggered)

    def recovery_latencies(self, backend: str) -> list[float]:
        """Recovery latencies (ns) of recovered cells with a retry."""
        return [
            cell["recovery_ns"]
            for cell in self.cells
            if cell["backend"] == backend and cell["recovery_ns"] is not None
        ]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "policy": self.policy,
            "schedules": self.schedules,
            "matrix": self.matrix(),
            "containment_rate": {
                backend: self.containment_rate(backend)
                for backend in sorted({c["backend"] for c in self.cells})
            },
            "cells": self.cells,
        }


def run_campaign(
    backends=DEFAULT_BACKENDS,
    sites=DEFAULT_SITES,
    schedules: int = 2,
    seed: int = 0,
    policy: str = "restart-with-backoff",
    total_bytes: int = _TOTAL_BYTES,
) -> CampaignResult:
    """K seeded schedules per (site × backend); returns the result."""
    cells = []
    for site in sites:
        base = default_plan(site, seed)
        for schedule in base.schedules(schedules):
            for backend in backends:
                cells.append(
                    run_cell(
                        backend,
                        site,
                        InjectionPlan(schedule.seed, list(schedule.specs)),
                        policy=policy,
                        total_bytes=total_bytes,
                    )
                )
    return CampaignResult(
        seed=seed, policy=policy, schedules=schedules, cells=cells
    )


# --- recovery campaigns (durability under power failure) --------------------

#: Fault sites a recovery campaign arms by default.
DEFAULT_RECOVERY_SITES = (
    "blk-torn-write",
    "crash-mid-compaction",
    "crash-mid-recovery",
)
#: Severity order for aggregating recovery verdicts into a matrix cell.
_RECOVERY_SEVERITY = {
    "not-triggered": 0,
    "recovered-state": 1,
    "lost-acked-write": 2,
    "torn-surfaced": 3,
}

#: Workload shape: redis journaling into an isolated storage compartment.
_RECOVERY_LIBRARIES = ["libc", "netstack", "blk", "kv", "redis"]
_RECOVERY_COMPARTMENTS = [
    ["netstack"],
    ["blk", "kv"],
    ["sched", "alloc", "libc", "redis"],
]


def default_recovery_plan(site: str, seed: int) -> InjectionPlan:
    """The canonical single-fault plan for one storage site."""
    plan = InjectionPlan(seed=seed)
    if site == "blk-torn-write":
        return plan.torn_blk_flush(nth=4)
    if site == "crash-mid-compaction":
        # Exactly one compaction runs per cell, so the trigger cannot
        # jitter past it.
        return plan.crash_compaction(nth=1, jitter=0)
    if site == "crash-mid-recovery":
        # The first recovery event is the initial open of the empty
        # store; crash the *post-power-cut* recovery scan instead.  A
        # compacted log may hold a single segment — one recovery event
        # per reboot — so the trigger cannot afford jitter.
        return plan.crash_recovery(nth=2, jitter=0)
    raise ValueError(f"unknown recovery fault site {site!r}")


def _recovery_payloads(count: int) -> tuple[list[bytes], dict[bytes, bytes]]:
    """Deterministic SET requests plus the key → value ground truth."""
    requests: list[bytes] = []
    values: dict[bytes, bytes] = {}
    for index in range(count):
        key = b"rk%04d" % index
        value = (b"%04d" % (index % 10_000)) * 4
        values[key] = value
        requests.append(b"SET %s %d\n" % (key, len(value)) + value)
    return requests, values


def run_recovery_cell(
    backend: str,
    site: str,
    plan: InjectionPlan,
    sets: int = 40,
    attempts: int = 3,
) -> dict:
    """One recovery cell: run durable redis, crash, reboot, verify.

    The :class:`~repro.libos.blk.blkdev.DiskMedium` is the only state
    that survives: each reboot builds a fresh image around the same
    medium, re-attaches the same injector (its fire counters persist
    across reboots, so ``crash-mid-recovery`` can hit the scan *after*
    the crash), and replays recovery.
    """
    from repro.apps.workload import ClosedLoopSource, start_redis
    from repro.libos.blk.blkdev import DiskMedium

    medium = DiskMedium()
    injector = FaultInjector(plan)
    crash_rng = random.Random(plan.seed ^ 0x5EED)

    def build():
        config = BuildConfig(
            libraries=list(_RECOVERY_LIBRARIES),
            compartments=[list(group) for group in _RECOVERY_COMPARTMENTS],
            backend=backend,
            name=f"recovery:{backend}:{site}",
        )
        image = build_image(config)
        image.lib("blk").attach_medium(medium)
        injector.attach(image)
        return image

    def drop(image) -> None:
        """Tear an image down without simulating work (power is off)."""
        injector.detach()
        try:
            image.scheduler.kill_all()
        except MachineError:  # pragma: no cover - teardown best effort
            pass

    requests, values = _recovery_payloads(sets)
    failures: list[str] = []
    image = build()
    image.call("kv", "set_flush_policy", "every-write")
    app = start_redis(image)
    netstack = image.lib("netstack")
    source = ClosedLoopSource(
        app.PORT, requests, window=2, expect_prefix=b"+OK"
    )
    netstack.nic.rx_source = source.source
    netstack.nic.tx_sink = source.sink
    crashed = False
    try:
        image.run(
            until=lambda: source.done,
            max_switches=400 * len(requests) + 40_000,
        )
        if not source.done:
            raise RuntimeError(
                f"redis workload stalled: {source.responses}/{source.total}"
            )
        # One explicit compaction per cell — the crash-mid-compaction
        # site's deterministic target.
        image.call("kv", "compact")
        image.call("kv", "sync")
    except PowerFailure as exc:
        failures.append(f"PowerFailure: {exc}")
        # Power is off: the write-back cache dies with the image; only
        # the medium (and whatever the injector tore onto it) remains.
        medium.generation += 1
        crashed = True
    #: Every SET acknowledged before the lights went out.  Responses
    #: are FIFO (closed loop), so the first N payloads were acked, and
    #: under flush policy ``every-write`` each ack implies a completed
    #: flush barrier.
    acked = dict(list(values.items())[: source.responses])
    drop(image)
    if not crashed:
        # The armed fault never cut power mid-run (e.g. the
        # crash-mid-recovery site): pull the plug ourselves so every
        # cell exercises reboot + recovery with a dirty cache.
        image.lib("blk").crash(crash_rng)

    recover_report = None
    torn_surfaced = False
    for _ in range(attempts):
        image = build()
        try:
            recover_report = image.call("redis", "recover")
            break
        except PowerFailure as exc:
            failures.append(f"PowerFailure: {exc}")
            medium.generation += 1
            drop(image)
        except MachineError as exc:
            # Anything other than a power cut during recovery means a
            # corrupt record escaped the CRC framing.
            failures.append(f"{type(exc).__name__}: {exc}")
            torn_surfaced = True
            drop(image)
            break

    lost: list[bytes] = []
    torn: list[bytes] = []
    kv_stats: dict = {}
    if recover_report is not None:
        app = image.lib("redis")
        for key, value in values.items():
            got = app.value_of(key)
            if key in acked:
                if got is None:
                    lost.append(key)
                elif got != value:
                    torn.append(key)
            elif got is not None and got != value:
                # An unacked write may legally persist (prefix
                # durability) — but only with the exact bytes sent.
                torn.append(key)
        kv_stats = image.call("kv", "kv_stats")
        drop(image)

    if torn_surfaced or torn:
        verdict = "torn-surfaced"
    elif recover_report is None or lost:
        verdict = "lost-acked-write"
    elif injector.fired == 0:
        verdict = "not-triggered"
    else:
        verdict = "recovered-state"
    return {
        "backend": backend,
        "site": site,
        "seed": plan.seed,
        "verdict": verdict,
        "acked": len(acked),
        "restored": (recover_report or {}).get("restored", 0),
        "recover_report": recover_report,
        "injected": injector.fired,
        "events": [dataclasses.asdict(event) for event in injector.events],
        "failures": failures,
        "lost_keys": [key.decode() for key in lost],
        "torn_keys": [key.decode() for key in torn],
        "generations": medium.generation,
        "torn_records_discarded": kv_stats.get("torn_records_discarded", 0),
    }


@dataclasses.dataclass
class RecoveryCampaignResult:
    """Everything one recovery campaign produced."""

    seed: int
    schedules: int
    cells: list[dict]

    def matrix(self) -> dict[str, dict[str, str]]:
        """site → backend → worst verdict across schedules."""
        table: dict[str, dict[str, str]] = {}
        for cell in self.cells:
            row = table.setdefault(cell["site"], {})
            previous = row.get(cell["backend"])
            if (
                previous is None
                or _RECOVERY_SEVERITY[cell["verdict"]]
                > _RECOVERY_SEVERITY[previous]
            ):
                row[cell["backend"]] = cell["verdict"]
        return table

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "schedules": self.schedules,
            "matrix": self.matrix(),
            "cells": self.cells,
        }


def run_recovery_campaign(
    backends=DEFAULT_BACKENDS,
    sites=DEFAULT_RECOVERY_SITES,
    schedules: int = 2,
    seed: int = 0,
    sets: int = 40,
) -> RecoveryCampaignResult:
    """K seeded schedules per (storage site × backend)."""
    cells = []
    for site in sites:
        base = default_recovery_plan(site, seed)
        for schedule in base.schedules(schedules):
            for backend in backends:
                cells.append(
                    run_recovery_cell(
                        backend,
                        site,
                        InjectionPlan(schedule.seed, list(schedule.specs)),
                        sets=sets,
                    )
                )
    return RecoveryCampaignResult(seed=seed, schedules=schedules, cells=cells)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run a seeded fault-injection campaign"
    )
    parser.add_argument(
        "--backends",
        default=",".join(DEFAULT_BACKENDS),
        help="comma-separated isolation backends",
    )
    parser.add_argument(
        "--sites",
        default=",".join(DEFAULT_SITES),
        help="comma-separated fault sites",
    )
    parser.add_argument("--schedules", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--policy",
        default="restart-with-backoff",
        choices=("propagate", "isolate", "restart-with-backoff"),
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the result JSON ('-' = stdout)"
    )
    parser.add_argument(
        "--check-contained",
        action="append",
        default=[],
        metavar="SITE",
        help="exit non-zero unless every selected backend contains or "
        "recovers SITE (CI assertion)",
    )
    parser.add_argument(
        "--recovery",
        action="store_true",
        help="run the storage recovery campaign (durability under "
        "power failure) instead of the containment campaign",
    )
    parser.add_argument(
        "--sets",
        type=int,
        default=40,
        metavar="N",
        help="durable SETs per recovery cell",
    )
    parser.add_argument(
        "--check-recovered",
        action="append",
        default=[],
        metavar="SITE",
        help="exit non-zero unless every selected backend earns verdict "
        "'recovered-state' (or 'not-triggered') for SITE (CI assertion)",
    )
    args = parser.parse_args(argv)
    backends = tuple(b for b in args.backends.split(",") if b)
    if args.recovery:
        sites = (
            tuple(s for s in args.sites.split(",") if s)
            if args.sites != ",".join(DEFAULT_SITES)
            else DEFAULT_RECOVERY_SITES
        )
        recovery = run_recovery_campaign(
            backends=backends,
            sites=sites,
            schedules=args.schedules,
            seed=args.seed,
            sets=args.sets,
        )
        matrix = recovery.matrix()
        for site, row in matrix.items():
            for backend, verdict in row.items():
                print(f"{site:20s} x {backend:13s} -> {verdict}")
        if args.json:
            payload = json.dumps(recovery.to_dict(), indent=2, sort_keys=True)
            if args.json == "-":
                print(payload)
            else:
                with open(args.json, "w") as handle:
                    handle.write(payload + "\n")
        failed = False
        if not recovery.cells:
            print("ERROR: campaign produced no cells", file=sys.stderr)
            failed = True
        for site in args.check_recovered:
            row = matrix.get(site, {})
            for backend in backends:
                verdict = row.get(backend)
                if verdict not in ("recovered-state", "not-triggered"):
                    print(
                        f"ERROR: {backend} lost durable state at {site} "
                        f"(verdict: {verdict})",
                        file=sys.stderr,
                    )
                    failed = True
        return 1 if failed else 0
    sites = tuple(s for s in args.sites.split(",") if s)
    result = run_campaign(
        backends=backends,
        sites=sites,
        schedules=args.schedules,
        seed=args.seed,
        policy=args.policy,
    )
    matrix = result.matrix()
    for site, row in matrix.items():
        for backend, outcome in row.items():
            print(f"{site:18s} x {backend:13s} -> {outcome}")
    if args.json:
        payload = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    failed = False
    if not result.cells:
        print("ERROR: campaign produced no cells", file=sys.stderr)
        failed = True
    for site in args.check_contained:
        row = matrix.get(site, {})
        for backend in backends:
            outcome = row.get(backend)
            if outcome not in ("contained", "recovered"):
                print(
                    f"ERROR: {backend} did not contain {site} "
                    f"(outcome: {outcome})",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
