"""The injection-plan DSL: *what* fails, *where*, and *when*.

An :class:`InjectionPlan` is a seeded, declarative list of
:class:`FaultSpec` entries arming faults at named sites:

======================  ======================================================
site                    meaning
======================  ======================================================
``gate-crash``          the Nth matching gate crossing raises an
                        :class:`~repro.machine.faults.InjectedFault` inside
                        the callee's domain (a callee panic)
``wild-write``          the Nth matching crossing performs a stray store into
                        a *victim* library's private pages from the callee's
                        execution context (a compromised/buggy compartment)
``alloc-exhaustion``    the Nth matching ``malloc`` on a heap fails
``sched-kill``          the Nth switch-in of a matching thread kills it
``vm-drop``             the Nth VM-RPC notification is lost in flight
``vm-dup``              the Nth VM-RPC notification is delivered twice
``blk-torn-write``      power fails during the Nth flush writeback: the
                        in-flight sector lands *torn* on the medium and a
                        :class:`~repro.machine.faults.PowerFailure` unwinds
                        out of the machine (uncontainable by design)
``crash-mid-compaction``  power fails inside the Nth KV segment merge,
                        after the new segments hit the disk but before the
                        manifest commits
``crash-mid-recovery``  power fails during the Nth KV recovery scan —
                        crash-during-recovery must itself be recoverable
``repl-drop``           the Nth primary→follower replication doorbell is
                        lost on the fabric (the channel retries with
                        timeout backoff, like vm-rpc)
``repl-crash-primary``  power cut on the *primary* between the Nth
                        replication doorbell and its reply — the follower
                        applied the record but the primary never acked
                        the client (the failover campaign's crash point)
======================  ======================================================

Plans are built fluently::

    plan = (InjectionPlan(seed=7)
            .crash_crossing(callee="netstack", nth=5)
            .wild_write(victim="sched", callee="netstack", nth=3))

and turned into K deterministic *schedules* (plans with jittered
trigger counts) via :meth:`InjectionPlan.schedules` — same seed, same
schedules, same campaign matrix, always.
"""

from __future__ import annotations

import dataclasses
import random

#: Every site name the harness knows how to arm.
SITES = (
    "gate-crash",
    "wild-write",
    "alloc-exhaustion",
    "sched-kill",
    "vm-drop",
    "vm-dup",
    "blk-torn-write",
    "crash-mid-compaction",
    "crash-mid-recovery",
    "repl-drop",
    "repl-crash-primary",
)

#: Maximum jitter schedules() adds to a spec's ``nth``.
_NTH_JITTER = 6


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One armed fault: a site plus matching filters.

    ``nth`` counts *matching* events (1-based): the fault fires on the
    Nth event the filters accept, and on the ``count - 1`` events after
    it.  Unset filters match everything.
    """

    site: str
    nth: int = 1
    count: int = 1
    #: Gate filters (gate-crash / wild-write / vm-* sites).
    caller: str | None = None
    callee: str | None = None
    kind: str | None = None
    #: Wild writes land in this library's compartment (required).
    victim: str | None = None
    #: Allocator filter ("heap:shared", "heap:netstack", ...);
    #: substring match on the heap name.
    heap: str | None = None
    #: Thread-name substring filter (sched-kill).
    thread: str | None = None
    #: Cap on the nth-jitter :meth:`InjectionPlan.schedules` may add;
    #: ``None`` uses the default (``_NTH_JITTER``).  Sites with few
    #: matching events (e.g. switch-ins of a short-lived thread) need a
    #: small cap or jittered schedules never fire.
    jitter: int | None = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown injection site {self.site!r}; known: {SITES}"
            )
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count must be >= 1")
        if self.jitter is not None and self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.site == "wild-write" and not self.victim:
            raise ValueError("wild-write specs need a victim library")
        if self.site == "sched-kill" and not self.thread:
            raise ValueError("sched-kill specs need a thread-name filter")

    def matches_edge(self, caller: str, callee: str, kind: str) -> bool:
        """Filter check for gate-crossing sites."""
        if self.caller is not None and self.caller != caller:
            return False
        if self.callee is not None and self.callee != callee:
            return False
        if self.kind is not None and self.kind != kind:
            return False
        return True

    def to_dict(self) -> dict:
        """JSON-friendly form (``None`` filters omitted)."""
        row = dataclasses.asdict(self)
        return {key: value for key, value in row.items() if value is not None}


class InjectionPlan:
    """A seeded set of armed faults, ready for the injector."""

    def __init__(
        self, seed: int = 0, specs: tuple[FaultSpec, ...] | list[FaultSpec] = ()
    ) -> None:
        self.seed = int(seed)
        self.specs: list[FaultSpec] = list(specs)

    # --- fluent DSL -------------------------------------------------------

    def add(self, spec: FaultSpec) -> "InjectionPlan":
        self.specs.append(spec)
        return self

    def crash_crossing(
        self,
        callee: str | None = None,
        caller: str | None = None,
        kind: str | None = None,
        nth: int = 1,
    ) -> "InjectionPlan":
        """Arm a callee panic on the Nth matching crossing."""
        return self.add(
            FaultSpec(
                "gate-crash", nth=nth, caller=caller, callee=callee, kind=kind
            )
        )

    def wild_write(
        self,
        victim: str,
        callee: str | None = None,
        caller: str | None = None,
        nth: int = 1,
    ) -> "InjectionPlan":
        """Arm a stray store into ``victim``'s pages on a crossing."""
        return self.add(
            FaultSpec(
                "wild-write",
                nth=nth,
                caller=caller,
                callee=callee,
                victim=victim,
            )
        )

    def exhaust_alloc(
        self, heap: str | None = None, nth: int = 1, count: int = 1
    ) -> "InjectionPlan":
        """Arm allocator exhaustion on matching heap(s)."""
        return self.add(FaultSpec("alloc-exhaustion", nth=nth, count=count, heap=heap))

    def kill_thread(
        self, thread: str, nth: int = 1, jitter: int | None = None
    ) -> "InjectionPlan":
        """Arm a scheduler-visible thread death."""
        return self.add(
            FaultSpec("sched-kill", nth=nth, thread=thread, jitter=jitter)
        )

    def drop_vm_notify(self, nth: int = 1, count: int = 1) -> "InjectionPlan":
        """Arm loss of VM-RPC notification(s)."""
        return self.add(FaultSpec("vm-drop", nth=nth, count=count))

    def duplicate_vm_notify(self, nth: int = 1) -> "InjectionPlan":
        """Arm duplication of a VM-RPC notification."""
        return self.add(FaultSpec("vm-dup", nth=nth))

    def torn_blk_flush(
        self, nth: int = 1, jitter: int | None = None
    ) -> "InjectionPlan":
        """Arm a torn sector + power loss on the Nth flush writeback."""
        return self.add(FaultSpec("blk-torn-write", nth=nth, jitter=jitter))

    def crash_compaction(
        self, nth: int = 1, jitter: int | None = None
    ) -> "InjectionPlan":
        """Arm a power loss mid-way through the Nth KV compaction."""
        return self.add(
            FaultSpec("crash-mid-compaction", nth=nth, jitter=jitter)
        )

    def crash_recovery(
        self, nth: int = 1, jitter: int | None = None
    ) -> "InjectionPlan":
        """Arm a power loss during the Nth KV recovery scan."""
        return self.add(FaultSpec("crash-mid-recovery", nth=nth, jitter=jitter))

    def drop_repl_op(
        self, nth: int = 1, count: int = 1, caller: str | None = None
    ) -> "InjectionPlan":
        """Arm loss of replication doorbell(s); ``caller`` filters by
        the primary shard's name."""
        return self.add(
            FaultSpec("repl-drop", nth=nth, count=count, caller=caller)
        )

    def crash_repl_primary(
        self,
        nth: int = 1,
        caller: str | None = None,
        jitter: int | None = None,
    ) -> "InjectionPlan":
        """Arm a primary power cut between a replication doorbell and
        its reply (follower applied, client never acked)."""
        return self.add(
            FaultSpec(
                "repl-crash-primary", nth=nth, caller=caller, jitter=jitter
            )
        )

    # --- seeded schedules -------------------------------------------------

    def schedules(self, k: int) -> list["InjectionPlan"]:
        """Derive ``k`` deterministic schedule variants of this plan.

        Each variant keeps every spec's site and filters but jitters
        its ``nth`` (uniformly in ``[nth, nth + _NTH_JITTER]``) so a
        campaign samples different trigger points of the same fault.
        Derivation uses only ``self.seed`` — same seed, same schedules.
        """
        rng = random.Random(self.seed)
        variants = []
        for index in range(k):
            specs = [
                dataclasses.replace(
                    spec,
                    nth=spec.nth
                    + rng.randint(
                        0,
                        _NTH_JITTER if spec.jitter is None else spec.jitter,
                    ),
                )
                for spec in self.specs
            ]
            variant = InjectionPlan(seed=self.seed * 1000 + index, specs=specs)
            variants.append(variant)
        return variants

    # --- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InjectionPlan":
        return cls(
            seed=data.get("seed", 0),
            specs=[FaultSpec(**row) for row in data.get("specs", ())],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sites = ",".join(spec.site for spec in self.specs)
        return f"InjectionPlan(seed={self.seed}, [{sites}])"
