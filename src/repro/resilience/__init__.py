"""repro.resilience: seeded fault injection + containment campaigns.

The dependability half of the FlexOS story: the paper's isolation
backends differ not just in crossing cost but in *what happens when a
compartment misbehaves*.  This package makes that measurable:

- :mod:`repro.resilience.plan` — the :class:`InjectionPlan` DSL naming
  fault sites (gate crossings, heap exhaustion, wild writes, thread
  death, lost VM notifications) with seeded schedules;
- :mod:`repro.resilience.injector` — the :class:`FaultInjector` the
  machine consults at each hook site;
- :mod:`repro.resilience.campaign` — the campaign driver producing the
  site × backend containment matrix, plus *recovery campaigns* that
  crash a durable redis deployment (power failures at the storage
  sites) and verify that reboot + recovery restores every acknowledged
  write with no torn record surfacing.
"""

from repro.resilience.injector import FaultInjector, InjectionEvent, arm
from repro.resilience.plan import SITES, FaultSpec, InjectionPlan

#: Names re-exported lazily from repro.resilience.campaign — deferred
#: so `python -m repro.resilience.campaign` does not import the module
#: twice (runpy would warn).
_CAMPAIGN_EXPORTS = (
    "DEFAULT_BACKENDS",
    "DEFAULT_SITES",
    "DEFAULT_RECOVERY_SITES",
    "CampaignResult",
    "RecoveryCampaignResult",
    "default_plan",
    "default_recovery_plan",
    "run_campaign",
    "run_cell",
    "run_recovery_campaign",
    "run_recovery_cell",
)


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS:
        from repro.resilience import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DEFAULT_BACKENDS",
    "DEFAULT_RECOVERY_SITES",
    "DEFAULT_SITES",
    "SITES",
    "CampaignResult",
    "FaultInjector",
    "FaultSpec",
    "InjectionEvent",
    "InjectionPlan",
    "RecoveryCampaignResult",
    "arm",
    "default_plan",
    "default_recovery_plan",
    "run_campaign",
    "run_cell",
    "run_recovery_campaign",
    "run_recovery_cell",
]
