"""repro — a reproduction of FlexOS: Making OS Isolation Flexible (HotOS'21).

Quick start::

    from repro import BuildConfig, build_image
    from repro.apps import run_iperf

    config = BuildConfig(
        libraries=["libc", "netstack", "iperf"],
        compartments=[["netstack"], ["sched", "alloc", "libc", "iperf"]],
        backend="mpk-shared",
    )
    image = build_image(config)
    result = run_iperf(image, buffer_size=1024, total_bytes=1 << 20)
    print(result.throughput_mbps, "Mb/s")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import BuildConfig, Image, build_image

__version__ = "0.1.0"

__all__ = ["BuildConfig", "Image", "build_image", "__version__"]
