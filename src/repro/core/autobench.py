"""Simulation-backed performance estimation for the explorer.

The paper's exploration strategies need a performance number per
candidate deployment.  The analytic estimator
(:func:`repro.core.explorer.estimate_crossing_cost`) is cheap but
unit-free; this module provides the accurate alternative: **build the
candidate image and run a representative workload in it**, returning
simulated nanoseconds per request (lower is better).  Expensive by
comparison (tens of milliseconds of host time per candidate), fine for
micro-library design spaces with a handful of SH combinations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.config import BuildConfig

if TYPE_CHECKING:
    from repro.core.hardening import Deployment


def build_for_deployment(
    deployment: "Deployment",
    libraries: list[str],
    backend: str = "mpk-shared",
    **config_overrides,
):
    """Materialise a deployment into a bootable image.

    The deployment's coloring becomes the compartment grouping and its
    SH choices become the hardening map.  ``backend`` applies when the
    deployment has more than one compartment; a single-compartment
    deployment needs no isolation hardware.
    """
    from repro.core.builder import build_image

    groups = deployment.compartments
    config = BuildConfig(
        libraries=libraries,
        compartments=groups,
        backend=backend if len(groups) > 1 else "none",
        hardening={
            lib: techniques
            for lib, techniques in deployment.choices.items()
            if techniques
        },
        **config_overrides,
    )
    return build_image(config)


def simulated_perf_fn(
    libraries: list[str],
    workload: str = "iperf",
    backend: str = "mpk-shared",
    scale: int = 1,
    **config_overrides,
) -> Callable[["Deployment"], float]:
    """A ``perf_fn`` for :class:`repro.core.explorer.Explorer`.

    Returns simulated **ns per unit of work** (per byte for iperf, per
    request for redis) for each candidate deployment; results are
    memoised per coloring+choices so repeated strategy queries don't
    rebuild images.

    The returned callable carries a ``snapshots`` dict mapping each
    measured deployment key to the image's full metrics snapshot
    (counters, crossing edges, histograms, clock), so an exploration
    run can be dissected afterwards — which candidate burned its time
    on gate crossings vs. hardening overhead — without re-running.
    """
    if workload not in ("iperf", "redis"):
        raise ValueError(f"unknown workload {workload!r}")
    cache: dict = {}
    snapshots: dict = {}

    def measure(deployment: "Deployment") -> float:
        key = (
            tuple(sorted(deployment.coloring.items())),
            tuple(sorted(deployment.choices.items())),
        )
        if key in cache:
            return cache[key]
        image = build_for_deployment(
            deployment, libraries, backend, **config_overrides
        )
        if workload == "iperf":
            from repro.apps import run_iperf

            total = scale * (1 << 17)
            result = run_iperf(image, 1024, total)
            cost = result.elapsed_ns / total
        else:
            from repro.apps import (
                make_get_payloads,
                make_set_payloads,
                run_redis_phase,
                start_redis,
            )

            start_redis(image)
            run_redis_phase(
                image,
                make_set_payloads(32, 50, keyspace=32),
                window=8,
                expect_prefix=b"+OK",
            )
            result = run_redis_phase(
                image,
                make_get_payloads(scale * 200, 32),
                window=8,
                expect_prefix=b"$",
            )
            cost = result.ns_per_request
        cache[key] = cost
        snapshots[key] = image.metrics_snapshot()
        return cost

    measure.snapshots = snapshots
    return measure
