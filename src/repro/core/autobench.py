"""Simulation-backed performance estimation for the explorer.

The paper's exploration strategies need a performance number per
candidate deployment.  The analytic estimator
(:func:`repro.core.explorer.estimate_crossing_cost`) is cheap but
unit-free; this module provides the accurate alternative: **build the
candidate image and run a representative workload in it**, returning
simulated nanoseconds per request (lower is better).  Expensive by
comparison (tens of milliseconds of host time per candidate), so three
layers keep repeated exploration cheap:

1. an in-process memo keyed by :meth:`Deployment.key` — the partition
   plus sorted choices, so colorings differing only by a color
   permutation share one measurement;
2. an optional persistent :class:`repro.core.perfcache.PerfCache`
   (``cache_path=``) keyed additionally by workload/backend/config, so
   a warm second run builds **zero** images;
3. :func:`measure_many` / ``perf_fn.measure_many`` — fan unmeasured
   candidates out over a ``concurrent.futures`` executor (each
   candidate simulates on its own private machine, so measurements are
   independent and deterministic regardless of schedule).

Build counts and cache traffic land in
:func:`repro.obs.exploration_metrics` (``explore.builds``,
``explore.perfcache.*``, ``explore.measure.*``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.config import BuildConfig
from repro.core.perfcache import PerfCache, candidate_key
from repro.obs.metrics import exploration_metrics

if TYPE_CHECKING:
    from repro.core.hardening import Deployment


def build_for_deployment(
    deployment: "Deployment",
    libraries: list[str],
    backend: str = "mpk-shared",
    **config_overrides,
):
    """Materialise a deployment into a bootable image.

    The deployment's coloring becomes the compartment grouping and its
    SH choices become the hardening map.  ``backend`` applies when the
    deployment has more than one compartment; a single-compartment
    deployment needs no isolation hardware.
    """
    from repro.core.builder import build_image

    exploration_metrics().inc("explore.builds")
    groups = deployment.compartments
    config = BuildConfig(
        libraries=libraries,
        compartments=groups,
        backend=backend if len(groups) > 1 else "none",
        hardening={
            lib: techniques
            for lib, techniques in deployment.choices.items()
            if techniques
        },
        **config_overrides,
    )
    return build_image(config)


def simulated_perf_fn(
    libraries: list[str],
    workload: str = "iperf",
    backend: str = "mpk-shared",
    scale: int = 1,
    cache_path: str | None = None,
    estimator: str = "measured",
    **config_overrides,
) -> Callable[["Deployment"], float]:
    """A ``perf_fn`` for :class:`repro.core.explorer.Explorer`.

    Returns simulated **ns per unit of work** (per byte for iperf, per
    request for redis) for each candidate deployment; results are
    memoised per :meth:`Deployment.key` so repeated strategy queries —
    and deployments whose colorings differ only by a color
    permutation — don't rebuild images.  With ``cache_path``, the memo
    additionally persists across processes (see module docstring).

    The returned callable carries:

    - ``snapshots`` — deployment key → the image's full metrics
      snapshot (counters, crossing edges, histograms, clock) for every
      candidate *actually simulated this process*, so an exploration
      run can be dissected afterwards; persistent-cache hits skip the
      build and therefore have no snapshot;
    - ``perf_cache`` — the backing :class:`PerfCache`;
    - ``measure_many(deployments, workers=None)`` — pre-measure a
      batch in parallel (see :func:`measure_many`).

    ``estimator`` names the cost model in persistent-cache keys
    (default ``"measured"`` — these really are measured runs); override
    only when persisting scores produced by a *different* model through
    the same cache, so they can never collide (see
    :func:`repro.core.perfcache.candidate_key`).
    """
    if workload not in ("iperf", "redis"):
        raise ValueError(f"unknown workload {workload!r}")
    perf_cache = PerfCache(cache_path)
    memo: dict = {}
    snapshots: dict = {}

    def simulate(deployment: "Deployment") -> float:
        image = build_for_deployment(
            deployment, libraries, backend, **config_overrides
        )
        if workload == "iperf":
            from repro.apps import run_iperf

            total = scale * (1 << 17)
            result = run_iperf(image, 1024, total)
            cost = result.elapsed_ns / total
        else:
            from repro.apps import (
                make_get_payloads,
                make_set_payloads,
                run_redis_phase,
                start_redis,
            )

            start_redis(image)
            run_redis_phase(
                image,
                make_set_payloads(32, 50, keyspace=32),
                window=8,
                expect_prefix=b"+OK",
            )
            result = run_redis_phase(
                image,
                make_get_payloads(scale * 200, 32),
                window=8,
                expect_prefix=b"$",
            )
            cost = result.ns_per_request
        snapshots[deployment.key()] = image.metrics_snapshot()
        return cost

    def measure(deployment: "Deployment") -> float:
        key = deployment.key()
        if key in memo:
            exploration_metrics().inc("explore.measure.memo_hits")
            return memo[key]
        persistent_key = candidate_key(
            deployment, workload, backend, scale, config_overrides,
            estimator=estimator,
        )
        cost = perf_cache.get(persistent_key)
        if cost is None:
            cost = simulate(deployment)
            perf_cache.put(persistent_key, cost)
        memo[key] = cost
        return cost

    def batch(
        deployments: Iterable["Deployment"], workers: int | None = None
    ) -> list[float]:
        return measure_many(measure, deployments, workers=workers)

    measure.snapshots = snapshots
    measure.perf_cache = perf_cache
    measure.measure_many = batch
    return measure


def measure_many(
    perf_fn: Callable[["Deployment"], float],
    deployments: Iterable["Deployment"],
    workers: int | None = None,
) -> list[float]:
    """Measure a batch of candidates concurrently; returns their costs
    in input order.

    Candidates sharing a :meth:`Deployment.key` are measured once: the
    batch is deduplicated before dispatch so two threads never build
    the same image.  Each simulation runs on its own private machine
    and the memo/cache writes are plain dict stores, so results are
    identical to sequential measurement.
    """
    deployments = list(deployments)
    unique: dict = {}
    for deployment in deployments:
        unique.setdefault(deployment.key(), deployment)
    exploration_metrics().inc("explore.measure.batches")
    if len(unique) <= 1 or workers == 1:
        costs = {key: perf_fn(d) for key, d in unique.items()}
    else:
        with ThreadPoolExecutor(max_workers=workers) as executor:
            futures = {
                key: executor.submit(perf_fn, d) for key, d in unique.items()
            }
            costs = {key: future.result() for key, future in futures.items()}
    return [costs[deployment.key()] for deployment in deployments]
