"""Parser for the FlexOS metadata DSL.

Accepts the notation of the paper's examples::

    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] alloc::malloc, alloc::free
    [API] thread_add(...); thread_rm(...); yield(...)
    [Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add), *...

Rules:

- ``[Memory access]`` is mandatory; ``Read``/``Write`` take a
  comma-separated region list out of ``Own``, ``Shared``, ``*``.
- ``[Call]`` is optional; *absent* means unknown and is treated as
  ``*`` (conservative), while *present but empty* means "calls
  nothing".  Targets must be qualified ``lib::fn``.
- ``[API]`` lists exported entry points; parameter lists are ignored.
- ``[Requires]`` holds allowance clauses ``*(Read,R)``, ``*(Write,R)``,
  ``*(Call, fn)``; a trailing ``*...`` ellipsis (as in the paper's
  scheduler example) is tolerated and ignored.
"""

from __future__ import annotations

import re

from repro.core.errors import SpecError
from repro.core.metadata import LibrarySpec, Region, Requires

_SECTION_RE = re.compile(r"\[(Memory access|Call|API|Requires)\]", re.IGNORECASE)
_ACCESS_RE = re.compile(r"(Read|Write)\s*\(\s*([^)]*)\s*\)", re.IGNORECASE)
_REQUIRES_CLAUSE_RE = re.compile(
    r"\*\s*\(\s*(Read|Write|Call)\s*,\s*([^)]+?)\s*\)", re.IGNORECASE
)
_ELLIPSIS_RE = re.compile(r"\*\s*(\.\s*){3}")

_REGION_NAMES = {
    "own": Region.OWN,
    "shared": Region.SHARED,
    "*": Region.ALL,
}


def _split_sections(text: str) -> dict[str, str]:
    sections: dict[str, str] = {}
    matches = list(_SECTION_RE.finditer(text))
    if not matches:
        raise SpecError("no metadata sections found")
    head = text[: matches[0].start()].strip()
    if head:
        raise SpecError(f"unexpected text before first section: {head!r}")
    for index, match in enumerate(matches):
        name = match.group(1).lower()
        end = matches[index + 1].start() if index + 1 < len(matches) else len(text)
        body = text[match.end() : end].strip()
        if name in sections:
            raise SpecError(f"duplicate section [{match.group(1)}]")
        sections[name] = body
    return sections


def _parse_region_list(raw: str, where: str) -> frozenset[Region]:
    regions = set()
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        region = _REGION_NAMES.get(token.lower())
        if region is None:
            raise SpecError(f"unknown region {token!r} in {where}")
        regions.add(region)
    if not regions:
        raise SpecError(f"empty region list in {where}")
    return frozenset(regions)


def _parse_memory_access(body: str) -> tuple[frozenset[Region], frozenset[Region]]:
    reads: frozenset[Region] | None = None
    writes: frozenset[Region] | None = None
    for kind, raw in _ACCESS_RE.findall(body):
        regions = _parse_region_list(raw, f"{kind}(...)")
        if kind.lower() == "read":
            if reads is not None:
                raise SpecError("duplicate Read(...) clause")
            reads = regions
        else:
            if writes is not None:
                raise SpecError("duplicate Write(...) clause")
            writes = regions
    if reads is None or writes is None:
        raise SpecError("[Memory access] must declare both Read(...) and Write(...)")
    return reads, writes


def _parse_calls(body: str) -> frozenset[str] | None:
    body = body.strip()
    if body == "*":
        return None
    targets = set()
    for token in body.split(","):
        token = token.strip()
        if not token:
            continue
        if "::" not in token:
            raise SpecError(
                f"call target {token!r} must be qualified as lib::fn"
            )
        targets.add(token)
    return frozenset(targets)


def _parse_api(body: str) -> tuple[str, ...]:
    names = []
    for token in body.split(";"):
        token = token.strip()
        if not token:
            continue
        name = token.split("(", 1)[0].strip()
        if not name.isidentifier():
            raise SpecError(f"invalid API entry {token!r}")
        names.append(name)
    return tuple(names)


def _parse_requires(body: str) -> Requires:
    remainder = _ELLIPSIS_RE.sub("", body)
    reads: set[Region] | None = None
    writes: set[Region] | None = None
    calls: set[str] | None = None
    matched_spans = []
    for match in _REQUIRES_CLAUSE_RE.finditer(remainder):
        matched_spans.append(match.span())
        kind = match.group(1).lower()
        value = match.group(2).strip()
        if kind == "call":
            if calls is None:
                calls = set()
            calls.add(value)
            continue
        region = _REGION_NAMES.get(value.lower())
        if region is None:
            raise SpecError(f"unknown region {value!r} in Requires clause")
        if kind == "read":
            reads = (reads or set()) | {region}
        else:
            writes = (writes or set()) | {region}
    leftovers = _REQUIRES_CLAUSE_RE.sub("", remainder).replace(",", "").strip()
    if leftovers:
        raise SpecError(f"unparsed Requires text: {leftovers!r}")
    return Requires(
        reads=frozenset(reads) if reads is not None else None,
        writes=frozenset(writes) if writes is not None else None,
        calls=frozenset(calls) if calls is not None else None,
    )


def parse_spec(name: str, text: str) -> LibrarySpec:
    """Parse a DSL document into a :class:`LibrarySpec`."""
    sections = _split_sections(text)
    if "memory access" not in sections:
        raise SpecError(f"{name}: missing [Memory access] section")
    reads, writes = _parse_memory_access(sections["memory access"])
    calls = (
        _parse_calls(sections["call"]) if "call" in sections else None
    )
    api = _parse_api(sections.get("api", ""))
    requires = (
        _parse_requires(sections["requires"]) if "requires" in sections else None
    )
    return LibrarySpec(
        name=name,
        reads=reads,
        writes=writes,
        calls=calls,
        api=api,
        requires=requires,
    )
