"""Build configuration: everything FlexOS decides at build time.

"FlexOS's build system extends Unikraft's to allow specifying how many
compartments the resulting image should have, how they should be
isolated, and whether SH techniques should be applied to one or
multiple of these" (§2).
"""

from __future__ import annotations

import dataclasses

from repro.core.errors import BuildError
from repro.machine.cycles import CostModel

#: Valid isolation backends (gate kinds between compartments).
BACKENDS = ("none", "mpk-shared", "mpk-switched", "vm-rpc", "cheri")
#: Valid allocator policies.
ALLOC_POLICIES = ("per-compartment", "global")
#: Valid scheduler flavours.
SCHEDULERS = ("coop", "verified")
#: Valid compartment failure policies (see repro.libos.compartment).
FAILURE_POLICIES = ("propagate", "isolate", "restart-with-backoff")

def parse_queue_policy(policy: str) -> tuple[int, float]:
    """Parse a queue-edge flush policy: ``"batch:N[,delay:NS]"``.

    Returns ``(batch, max_delay_ns)``; ``delay`` defaults to 0 (flush
    on batch/explicit/sync boundaries only).  Raises
    :class:`BuildError` on malformed policies so config files fail at
    validation, not at link time.
    """
    batch: int | None = None
    delay = 0.0
    for part in policy.split(","):
        part = part.strip()
        key, _, value = part.partition(":")
        try:
            if key == "batch":
                batch = int(value)
            elif key == "delay":
                delay = float(value)
            else:
                raise ValueError(key)
        except ValueError:
            raise BuildError(
                f"malformed queue policy {policy!r}; expected "
                f"'batch:N[,delay:NS]'"
            ) from None
    if batch is None or batch < 1 or delay < 0:
        raise BuildError(
            f"malformed queue policy {policy!r}; expected 'batch:N[,delay:NS]' "
            f"with batch >= 1 and delay >= 0"
        )
    return batch, delay


#: MPK protection key reserved for the shared-data domain.
SHARED_PKEY = 14
#: MPK protection key reserved for the shared stack domain.
STACK_PKEY = 15
#: First key handed to compartments (0 stays the untagged default).
FIRST_COMPARTMENT_PKEY = 1
#: Maximum number of compartments under the MPK backend.
MAX_MPK_COMPARTMENTS = SHARED_PKEY - FIRST_COMPARTMENT_PKEY


@dataclasses.dataclass
class BuildConfig:
    """One point in the FlexOS design space.

    Attributes:
        libraries: micro-libraries/apps to link (by registry name).
            ``sched`` and ``alloc`` are always included implicitly.
        compartments: explicit grouping of library names; ``None``
            derives the grouping automatically from the libraries'
            metadata via compatibility analysis + graph coloring.
        backend: isolation mechanism between compartments.
        hardening: library name → SH techniques; techniques apply to
            the whole compartment holding that library (SH is a
            compile-time property of a protection domain).
        allocator_policy: one allocator per compartment, or a single
            global one (only legal without hardware isolation).
        scheduler: ``coop`` (C scheduler) or ``verified`` (contract-
            checked, the paper's Dafny scheduler).
        clear_registers: scrub registers at MPK gate crossings.
        rx_batch: packets the network rx thread processes per quantum.
        failure_policy: what happens when a fault escapes a
            compartment — ``propagate`` (raw fault, whole-image crash,
            the default), ``isolate`` (translate to
            ``CompartmentFailure``, fail fast afterwards) or
            ``restart-with-backoff`` (isolate + revive the compartment
            after an exponential backoff).  Applied image-wide;
            individual compartments can be overridden programmatically.
    """

    libraries: list[str] = dataclasses.field(default_factory=list)
    compartments: list[list[str]] | None = None
    backend: str = "none"
    hardening: dict[str, tuple[str, ...]] = dataclasses.field(default_factory=dict)
    allocator_policy: str = "per-compartment"
    scheduler: str = "coop"
    clear_registers: bool = True
    #: Generate API boundary guards (precondition + pointer checks) on
    #: cross-compartment calls — the paper's §5 "isolation alone is not
    #: enough" wrappers, included only where a trust boundary exists.
    api_guards: bool = False
    heap_size: int = 4 * 1024 * 1024
    shared_heap_size: int = 8 * 1024 * 1024
    phys_bytes: int = 128 * 1024 * 1024
    cost: CostModel | None = None
    rx_batch: int | None = None
    failure_policy: str = "propagate"
    #: Cross-compartment edges to serve through batched queue channels
    #: (``"caller->callee"`` → ``"batch:N[,delay:NS]"``).  Each listed
    #: edge gets an async submission/completion ring pair over the
    #: image backend (kind ``queue:<backend>``); unlisted edges stay
    #: synchronous.  Same-compartment edges cannot be queued.
    queue_edges: dict[str, str] = dataclasses.field(default_factory=dict)
    name: str = ""

    def to_dict(self) -> dict:
        """JSON-friendly form (cost model omitted; it stays in code)."""
        return {
            "libraries": list(self.libraries),
            "compartments": (
                [list(group) for group in self.compartments]
                if self.compartments is not None
                else None
            ),
            "backend": self.backend,
            "hardening": {
                lib: list(techniques)
                for lib, techniques in self.hardening.items()
            },
            "allocator_policy": self.allocator_policy,
            "scheduler": self.scheduler,
            "clear_registers": self.clear_registers,
            "api_guards": self.api_guards,
            "heap_size": self.heap_size,
            "shared_heap_size": self.shared_heap_size,
            "phys_bytes": self.phys_bytes,
            "rx_batch": self.rx_batch,
            "failure_policy": self.failure_policy,
            "queue_edges": dict(self.queue_edges),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BuildConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise BuildError(f"unknown config keys: {sorted(unknown)}")
        payload = dict(data)
        if "hardening" in payload:
            payload["hardening"] = {
                lib: tuple(techniques)
                for lib, techniques in payload["hardening"].items()
            }
        if payload.get("compartments") is not None:
            payload["compartments"] = [
                list(group) for group in payload["compartments"]
            ]
        return cls(**payload)

    def all_libraries(self) -> list[str]:
        """Requested libraries plus the implicit sched/alloc."""
        names = list(self.libraries)
        for implicit in ("sched", "alloc"):
            if implicit not in names:
                names.append(implicit)
        return names

    def validate(self) -> None:
        """Raise :class:`BuildError` on inconsistent configurations."""
        if self.backend not in BACKENDS:
            raise BuildError(
                f"unknown backend {self.backend!r}; valid: {BACKENDS}"
            )
        if self.allocator_policy not in ALLOC_POLICIES:
            raise BuildError(
                f"unknown allocator policy {self.allocator_policy!r}; "
                f"valid: {ALLOC_POLICIES}"
            )
        if self.scheduler not in SCHEDULERS:
            raise BuildError(
                f"unknown scheduler {self.scheduler!r}; valid: {SCHEDULERS}"
            )
        if self.failure_policy not in FAILURE_POLICIES:
            raise BuildError(
                f"unknown failure policy {self.failure_policy!r}; "
                f"valid: {FAILURE_POLICIES}"
            )
        if self.allocator_policy == "global" and self.backend != "none":
            raise BuildError(
                "a global allocator requires backend 'none': with hardware "
                "isolation each compartment's heap must live in its own "
                "protection domain (paper §3)"
            )
        if self.heap_size <= 0 or self.shared_heap_size <= 0:
            raise BuildError("heap sizes must be positive")
        if self.compartments is not None:
            named = [lib for group in self.compartments for lib in group]
            if len(named) != len(set(named)):
                raise BuildError("a library appears in two compartments")
            missing = set(self.all_libraries()) - set(named)
            if missing:
                raise BuildError(
                    f"compartment grouping misses libraries: {sorted(missing)}"
                )
            extra = set(named) - set(self.all_libraries())
            if extra:
                raise BuildError(
                    f"compartment grouping names unknown libraries: "
                    f"{sorted(extra)}"
                )
            if (
                self.backend in ("mpk-shared", "mpk-switched")
                and len(self.compartments) > MAX_MPK_COMPARTMENTS
            ):
                raise BuildError(
                    f"MPK supports at most {MAX_MPK_COMPARTMENTS} "
                    f"compartments (16 keys minus reserved)"
                )
        for lib in self.hardening:
            if lib not in self.all_libraries():
                raise BuildError(
                    f"hardening names library {lib!r} not in the image"
                )
        for edge, policy in self.queue_edges.items():
            caller, sep, callee = edge.partition("->")
            if not sep or not caller or not callee:
                raise BuildError(
                    f"malformed queue edge {edge!r}; expected 'caller->callee'"
                )
            if caller not in self.all_libraries():
                raise BuildError(
                    f"queue edge {edge!r} names library {caller!r} not in "
                    f"the image"
                )
            parse_queue_policy(policy)
