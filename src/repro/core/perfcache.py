"""Persistent cache of measured candidate-deployment costs.

Simulation-backed exploration pays tens of milliseconds of host time
per candidate to build and run an image.  The measurement is a pure
function of *what gets built and driven*: the compartment partition,
the SH choices, the workload, the backend, and the build-config
overrides.  This module persists that function's graph to a JSON file
so repeated benchmark/report runs — or two explorations sharing
candidates — never re-simulate a known candidate.

Keys are canonical JSON strings built from
:meth:`repro.core.hardening.Deployment.key` (partition + sorted
choices), so colorings that differ only by a color permutation share
an entry.  Hits/misses/stores are counted in the shared
:func:`repro.obs.exploration_metrics` registry under
``explore.perfcache.*``.

Keys also carry the **cost-estimator identity** (``estimator=`` in
:func:`candidate_key`): a measured simulation score, an analytic
static estimate, and a profile-guided score (keyed by the profile's
content hash) of the same candidate are three distinct entries that
can never alias.

The file format is a flat ``{"version": 2, "entries": {key: cost}}``
object.  Bump :data:`PerfCache.VERSION` to invalidate on disk-format
or cost-model changes; a version mismatch (or unreadable file) is
treated as an empty cache, never an error.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
from typing import TYPE_CHECKING

from repro.obs.metrics import exploration_metrics

if TYPE_CHECKING:
    from repro.core.hardening import Deployment


def candidate_key(
    deployment: "Deployment",
    workload: str,
    backend: str,
    scale: int = 1,
    config_overrides: dict | None = None,
    estimator: str = "measured",
) -> str:
    """Canonical string key for one measured candidate.

    Partition and choices come from ``Deployment.key()``; everything
    else that shapes the built image or the driven workload is folded
    in.  Stable across processes and color permutations.

    ``estimator`` identifies the cost model that produced the score:
    ``"measured"`` for real simulation runs (the default, and the only
    value :mod:`repro.core.autobench` writes), ``"static"`` for
    analytic edge-count estimates, or ``"profiled:<hash>:<backend>"``
    for profile-guided scores (see
    :func:`repro.core.explorer.profiled_cost_fn`).  Folding the
    identity into the key means a profile-guided score can never
    collide with a cached static or measured entry — or with a score
    from a *different* profile of the same workload.
    """
    partition, choices = deployment.key()
    payload = {
        "partition": sorted(sorted(members) for members in partition),
        "choices": [[name, list(techs)] for name, techs in choices],
        "workload": workload,
        "backend": backend,
        "scale": scale,
        "estimator": estimator,
        "config": {
            key: repr(value)
            for key, value in sorted((config_overrides or {}).items())
        },
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class PerfCache:
    """On-disk JSON memo: candidate key → measured cost (float).

    Write-through: every :meth:`put` rewrites the file via an atomic
    rename, so a crashed exploration never corrupts the cache and a
    concurrent reader sees either the old or the new file, whole.
    ``path=None`` degrades to a process-local dict (no persistence) so
    callers can treat the cache as always-present.
    """

    # v2: keys carry the cost-estimator identity (candidate_key's
    # ``estimator`` field), so pre-estimator caches are discarded
    # rather than read through mismatched keys.
    VERSION = 2

    def __init__(self, path: str | os.PathLike | None) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self._entries: dict[str, float] = {}
        # Serialises entry-update + file-write so parallel measurement
        # (measure_many) can't persist a stale snapshot that drops a
        # concurrent put's entry.
        self._lock = threading.Lock()
        if self.path is not None and self.path.exists():
            try:
                data = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):
                data = None
            if (
                isinstance(data, dict)
                and data.get("version") == self.VERSION
                and isinstance(data.get("entries"), dict)
            ):
                self._entries = {
                    key: float(value)
                    for key, value in data["entries"].items()
                }

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> float | None:
        """Cached cost for ``key``; counts the hit/miss."""
        cost = self._entries.get(key)
        metrics = exploration_metrics()
        if cost is None:
            metrics.inc("explore.perfcache.misses")
        else:
            metrics.inc("explore.perfcache.hits")
        return cost

    def put(self, key: str, cost: float) -> None:
        """Store and (if backed by a file) persist one measurement."""
        with self._lock:
            self._entries[key] = float(cost)
            self._save()
        exploration_metrics().inc("explore.perfcache.stores")

    def _save(self) -> None:
        if self.path is None:
            return
        payload = json.dumps(
            {"version": self.VERSION, "entries": self._entries},
            indent=2,
            sort_keys=True,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(payload)
            os.replace(temp_name, self.path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
