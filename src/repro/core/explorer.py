"""Design-space exploration (paper §2, "Design Overview").

The two strategies the paper sketches:

1. "Given a performance target and a set of predefined compartments,
   find the combination of isolation primitives that maximizes security
   within a certain performance budget" —
   :meth:`Explorer.max_security_within_budget`.
2. "Given a set of safety requirements, find a compliant instantiation
   that yields the best performance" —
   :meth:`Explorer.best_performance_meeting`.

Performance can be estimated analytically (:func:`estimate_crossing_cost`,
cheap, good for ranking) or measured by actually building and running
the image (pass a simulation-backed ``perf_fn``; the benchmarks do
this).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.core.coloring import ColoringCache
from repro.core.errors import CompatibilityError
from repro.core.hardening import (
    Deployment,
    LibraryDef,
    iter_deployments,
    sh_variants,
)
from repro.obs.metrics import exploration_metrics

if TYPE_CHECKING:
    from repro.obs.profile import WorkloadProfile

#: Relative runtime weight of each SH technique (used by the analytic
#: estimator; roughly proportional to the measured Table-1 overheads).
SH_WEIGHTS = {
    "asan": 3.0,
    "kasan": 3.0,
    "mte": 0.8,
    "dfi": 2.0,
    "ubsan": 1.0,
    "cfi": 0.5,
    "stackprotector": 0.3,
    "safestack": 0.2,
}


def estimate_crossing_cost(
    deployment: Deployment,
    libdefs: list[LibraryDef],
    crossing_weight: float = 1.0,
    sh_weight: float = 1.0,
    backend: str | None = None,
) -> float:
    """Analytic cost: boundary call-graph edges + SH instrumentation.

    Counts the (static) call-graph edges that end up crossing a
    compartment boundary — each such edge becomes a gate at runtime —
    plus a weight for every hardened library.  Unit-free: useful for
    ranking candidate deployments, not for absolute predictions.

    ``backend`` optionally scales the crossing term by the gate
    registry's relative per-crossing cost (normalised to ``mpk-shared``
    = 1), so the analytic ranking agrees with what a measured run on
    that backend would find — a VM-RPC crossing is far dearer relative
    to SH instrumentation than an MPK one.  The default (no backend)
    keeps the historical unit weight.
    """
    return crossing_cost_fn(libdefs, crossing_weight, sh_weight, backend)(
        deployment
    )


def crossing_cost_fn(
    libdefs: list[LibraryDef],
    crossing_weight: float = 1.0,
    sh_weight: float = 1.0,
    backend: str | None = None,
) -> Callable[[Deployment], float]:
    """:func:`estimate_crossing_cost` pre-bound to one library set.

    Resolves the per-library callee lists and the backend weight once,
    so evaluating tens of thousands of enumeration candidates doesn't
    rebuild them per call.  Same numbers as the plain function.
    """
    if backend is not None:
        from repro.gates.registry import relative_crossing_cost

        crossing_weight = crossing_weight * (
            relative_crossing_cost(backend)
            / relative_crossing_cost("mpk-shared")
        )
    callees_by_name = {
        libdef.name: tuple(
            target.split("::", 1)[0]
            for target in (libdef.true_behavior.get("calls") or [])
        )
        for libdef in libdefs
    }

    def cost(deployment: Deployment) -> float:
        coloring = deployment.coloring
        crossings = 0
        for name, color in coloring.items():
            for callee in callees_by_name.get(name, ()):
                if callee in coloring and coloring[callee] != color:
                    crossings += 1
        sh_cost = sum(
            SH_WEIGHTS.get(technique, 1.0)
            for techniques in deployment.choices.values()
            for technique in techniques
        )
        return crossing_weight * crossings + sh_weight * sh_cost

    return cost


#: Fraction of a library's measured CPU time each SH technique is
#: assumed to add at runtime, derived from the simulator's
#: :class:`repro.machine.cycles.CostModel` factors (ASAN multiplies
#: memory-op cost by 4.4 and memory ops are roughly a third of library
#: time → ~+70%; DFI scales only stores by 2.1 → ~+10%; CFI is a flat
#: few ns per cross-library call → ~+2%).  Finer-grained than
#: :data:`SH_WEIGHTS` (whose asan:dfi ratio of 1.5 is an order of
#: magnitude off the measured ratio) because the profiled estimator is
#: judged in measured nanoseconds, not unit-free ranks.
SH_TIME_FRACTIONS = {
    "asan": 0.70,
    "kasan": 0.70,
    "mte": 0.08,
    "dfi": 0.10,
    "ubsan": 0.12,
    "cfi": 0.02,
    "stackprotector": 0.01,
    "safestack": 0.01,
}
#: Fallback fraction for techniques absent from the table.
SH_TIME_FRACTION_DEFAULT = 0.10


def queue_recommendations(
    profile: "WorkloadProfile",
    backend: str | None = None,
    batch: int = 8,
    min_crossings: int = 64,
) -> dict[str, dict[str, float]]:
    """Edges worth converting to queue channels, from a measured profile.

    For every measured caller→callee edge with at least
    ``min_crossings`` crossings, compares the backend's synchronous
    per-crossing cost against the amortised cost of a ``queue:<backend>``
    channel at the given batch size
    (:func:`repro.gates.registry.relative_crossing_cost`).  Returns the
    edges where batching wins, keyed ``"caller->callee"`` (the exact
    form :attr:`repro.core.config.BuildConfig.queue_edges` takes),
    largest projected saving first.  Empty when the backend has no
    queue variant (``direct``/``none``: nothing to amortise).
    """
    from repro.gates.registry import relative_crossing_cost

    effective_backend = backend if backend is not None else profile.backend
    if effective_backend in ("none", "direct"):
        return {}
    sync_ns = relative_crossing_cost(effective_backend)
    queued_ns = relative_crossing_cost(
        f"queue:{effective_backend}", batch=batch
    )
    if queued_ns >= sync_ns:
        return {}
    rows = []
    for caller, callee, count in profile.edge_items():
        if count < min_crossings:
            continue
        saved = count * (sync_ns - queued_ns)
        rows.append(
            (
                f"{caller}->{callee}",
                {
                    "crossings": float(count),
                    "sync_ns": sync_ns,
                    "queued_ns": queued_ns,
                    "saved_ns": saved,
                },
            )
        )
    rows.sort(key=lambda row: -row[1]["saved_ns"])
    return dict(rows)


def auto_tune_queue_edges(
    profile: "WorkloadProfile",
    backend: str | None = None,
    queue_depth: int = 64,
    min_crossings: int = 64,
    marginal_fraction: float = 0.05,
) -> dict[str, str]:
    """Pick per-edge queue batch sizes from a measured profile.

    The missing half of :func:`queue_recommendations`: that function
    says *which* edges to batch at a fixed batch size; this one also
    says *how deep*.  For each hot measured edge (at least
    ``min_crossings`` crossings in the window) it walks doubling batch
    candidates 2, 4, ... up to ``queue_depth`` and stops as soon as the
    next doubling would shave less than ``marginal_fraction`` of the
    backend's synchronous crossing cost off the amortised
    per-operation cost — past that knee, deeper batching buys latency
    exposure (a fuller ring between doorbells) without meaningful
    amortisation.  An edge's batch is additionally capped at its
    measured crossing count: a ring deeper than the traffic never
    fills.

    Returns ``{"caller->callee": "batch:N"}`` — exactly the form
    :attr:`repro.core.config.BuildConfig.queue_edges` takes, so the
    result can be dropped into a config verbatim.  Empty when the
    backend has no queue variant or batching never beats the
    synchronous gate.
    """
    from repro.gates.registry import relative_crossing_cost

    effective_backend = backend if backend is not None else profile.backend
    if effective_backend in ("none", "direct"):
        return {}
    sync_ns = relative_crossing_cost(effective_backend)
    kind = f"queue:{effective_backend}"

    def per_op_ns(batch: int) -> float:
        return relative_crossing_cost(kind, batch=batch)

    # The amortisation curve depends only on the backend, so the knee
    # is found once; per-edge caps are applied below.
    knee = 2
    while knee * 2 <= max(2, queue_depth):
        if per_op_ns(knee) - per_op_ns(knee * 2) < marginal_fraction * sync_ns:
            break
        knee *= 2
    rows = []
    for caller, callee, count in profile.edge_items():
        if count < min_crossings:
            continue
        batch = knee
        while batch > 2 and batch > count:
            batch //= 2
        queued_ns = per_op_ns(batch)
        if queued_ns >= sync_ns:
            continue
        rows.append((count * (sync_ns - queued_ns), f"{caller}->{callee}", batch))
    rows.sort(key=lambda row: (-row[0], row[1]))
    return {edge: f"batch:{batch}" for _, edge, batch in rows}


def profiled_cost_fn(
    profile: "WorkloadProfile",
    backend: str | None = None,
    crossing_weight: float = 1.0,
    sh_weight: float = 1.0,
    queue_edges: Iterable[str | tuple[str, str]] | None = None,
    queue_batch: int = 8,
) -> Callable[[Deployment], float]:
    """Measured-workload cost estimator: profile in, ``perf_fn`` out.

    Replaces :func:`estimate_crossing_cost`'s static call-graph edge
    count with what the workload actually did: each measured
    caller→callee crossing that lands on a compartment boundary in the
    candidate coloring is charged the backend's per-crossing cost
    (:func:`repro.gates.registry.relative_crossing_cost`, round-trip
    ns), and SH techniques are charged a fraction of their library's
    *measured* CPU time (:data:`SH_TIME_FRACTIONS`) — hardening a hot
    library costs more than hardening an idle one.  The
    result is an estimate of the isolation + hardening overhead, in
    simulated nanoseconds, this deployment would add to the profiled
    window, so candidate rankings follow measured frequencies instead
    of static edge counts.

    ``backend`` defaults to the profile's own backend.  Measured edges
    naming libraries absent from a candidate's coloring contribute
    nothing (they cannot cross a boundary that no longer exists).

    ``queue_edges`` — ``"caller->callee"`` strings (or pairs), the same
    form as :attr:`repro.core.config.BuildConfig.queue_edges` — marks
    edges carried by a queue channel: their boundary crossings are
    charged the amortised ``queue:<backend>`` cost at ``queue_batch``
    instead of the synchronous cost, so the explorer can trade sync
    against batched crossings per edge (see
    :func:`queue_recommendations` for deriving the set from a profile).

    The returned callable carries ``profile_hash`` and ``estimator``
    attributes so caching layers can key scores by estimator identity
    (see :func:`repro.core.perfcache.candidate_key`).
    """
    from repro.gates.registry import relative_crossing_cost

    effective_backend = backend if backend is not None else profile.backend
    crossing_ns = relative_crossing_cost(effective_backend)
    queued: set[tuple[str, str]] = set()
    if queue_edges and effective_backend not in ("none", "direct"):
        for edge in queue_edges:
            if isinstance(edge, str):
                caller, _, callee = edge.partition("->")
                queued.add((caller, callee))
            else:
                queued.add((edge[0], edge[1]))
    queue_ns = (
        relative_crossing_cost(f"queue:{effective_backend}", batch=queue_batch)
        if queued
        else 0.0
    )
    pairs = [
        ((caller, callee), count)
        for caller, callee, count in profile.edge_items()
    ]
    lib_time = profile.lib_cpu_time_ns()

    def cost(deployment: Deployment) -> float:
        coloring = deployment.coloring
        boundary_crossings = 0
        queued_crossings = 0
        for (caller, callee), count in pairs:
            caller_color = coloring.get(caller)
            callee_color = coloring.get(callee)
            if (
                caller_color is not None
                and callee_color is not None
                and caller_color != callee_color
            ):
                if (caller, callee) in queued:
                    queued_crossings += count
                else:
                    boundary_crossings += count
        sh_ns = sum(
            lib_time.get(name, 0.0)
            * sum(
                SH_TIME_FRACTIONS.get(technique, SH_TIME_FRACTION_DEFAULT)
                for technique in techniques
            )
            for name, techniques in deployment.choices.items()
        )
        return (
            crossing_weight
            * (boundary_crossings * crossing_ns + queued_crossings * queue_ns)
            + sh_weight * sh_ns
        )

    cost.profile_hash = profile.profile_hash()
    cost.estimator = f"profiled:{cost.profile_hash}:{effective_backend}"
    if queued:
        edge_tags = ",".join(sorted(f"{a}->{b}" for a, b in queued))
        cost.estimator += f":queue[{edge_tags}]@{queue_batch}"
    return cost


def security_score(deployment: Deployment) -> float:
    """Heuristic security value of a deployment (higher = safer).

    Rewards separation (each additional compartment is a hardware
    boundary an attacker must cross), SH coverage, and penalises
    libraries whose effective spec still allows wild writes while
    sharing a compartment with anyone.
    """
    score = 5.0 * (deployment.num_compartments - 1)
    for techniques in deployment.choices.values():
        score += 2.0 * len(techniques)
    sizes: dict[int, int] = {}
    for color in deployment.coloring.values():
        sizes[color] = sizes.get(color, 0) + 1
    for name, spec in deployment.specs.items():
        if spec.writes_everything and sizes[deployment.coloring[name]] > 1:
            score -= 4.0
    return score


def requirement_satisfied(
    deployment: Deployment, requirement: str, libdefs: list[LibraryDef]
) -> bool:
    """Evaluate one safety requirement against a deployment.

    Supported vocabulary:

    - ``isolated:<lib>`` — the library sits alone in its compartment;
    - ``write-protected:<lib>`` — no co-resident library's effective
      spec can write the library's private memory;
    - ``cfi:<lib>`` — the library's effective calls are bounded;
    - ``no-wild-writes`` — every library with unbounded writes is
      either hardened out of them or isolated alone (the paper's
      "no buffer overflows" style requirement).
    """
    coloring = deployment.coloring
    sizes: dict[int, int] = {}
    for color in coloring.values():
        sizes[color] = sizes.get(color, 0) + 1

    if requirement == "no-wild-writes":
        return all(
            not spec.writes_everything or sizes[coloring[name]] == 1
            for name, spec in deployment.specs.items()
        )
    if ":" not in requirement:
        raise CompatibilityError(f"unknown requirement {requirement!r}")
    kind, lib = requirement.split(":", 1)
    if lib not in coloring:
        raise CompatibilityError(f"requirement names unknown library {lib!r}")
    if kind == "isolated":
        return sizes[coloring[lib]] == 1
    if kind == "write-protected":
        return all(
            not spec.writes_everything
            for name, spec in deployment.specs.items()
            if name != lib and coloring[name] == coloring[lib]
        )
    if kind == "cfi":
        return deployment.specs[lib].calls is not None
    raise CompatibilityError(f"unknown requirement kind {kind!r}")


#: Device classes and the isolation backends their hardware supports
#: (paper §2: deployments should be able to "run on the largest number
#: of devices (based on the availability of hardware-based
#: mechanisms)").  SH-only deployments (one compartment) run anywhere.
DEVICE_PROFILES: dict[str, frozenset[str]] = {
    "x86-mpk-kvm": frozenset({"none", "mpk-shared", "mpk-switched", "vm-rpc"}),
    "x86-legacy-kvm": frozenset({"none", "vm-rpc"}),
    "arm-virt": frozenset({"none", "vm-rpc"}),
    "cheri-morello": frozenset({"none", "cheri"}),
    "embedded-no-virt": frozenset({"none"}),
}

#: Isolating backends ordered by crossing cost (cheapest first), used
#: to pick the fastest mechanism a device offers.
_BACKEND_PREFERENCE = ("cheri", "mpk-shared", "mpk-switched", "vm-rpc")


def backend_for_device(
    deployment: Deployment, device_backends: frozenset[str]
) -> str | None:
    """The cheapest backend that realises ``deployment`` on a device.

    Single-compartment deployments need no isolation hardware; multi-
    compartment ones need some isolating mechanism.  ``None`` means the
    device cannot host the deployment.
    """
    if deployment.num_compartments <= 1:
        return "none"
    for backend in _BACKEND_PREFERENCE:
        if backend in device_backends:
            return backend
    return None


class Explorer:
    """Enumerates and ranks feasible deployments for a library set.

    Enumeration is **lazy**: candidates stream out of
    :func:`repro.core.hardening.iter_deployments` (pairwise variant
    matrix + coloring memo) and are materialized incrementally, so a
    strategy query that short-circuits never pays for the tail of the
    variant product.  Materialized candidates are kept, so repeated
    queries never re-enumerate.

    ``prune_dominated=True`` applies the cost-dominance filter from
    :func:`iter_deployments` to the whole exploration — correct for
    cost-minimizing queries, *not* for ``max_security_within_budget``
    (see the pruning note there).

    Per-phase host timings and cache statistics land in the shared
    :func:`repro.obs.exploration_metrics` registry
    (``explore.enumerate_host_ns``, ``explore.query_host_ns``, …).
    """

    def __init__(
        self,
        libdefs: list[LibraryDef],
        alternatives: bool = False,
        isolate: tuple[str, ...] = (),
        prune_dominated: bool = False,
    ) -> None:
        self.libdefs = libdefs
        self._alternatives = alternatives
        self._stats: dict = {}
        self.coloring_cache = ColoringCache()
        self._source = iter_deployments(
            libdefs,
            alternatives,
            isolate=isolate,
            prune_dominated=prune_dominated,
            coloring_cache=self.coloring_cache,
            stats=self._stats,
        )
        self._materialized: list[Deployment] = []
        self._exhausted = False
        self._default_perf: Callable[[Deployment], float] | None = None

    def _iter(self) -> Iterator[Deployment]:
        """Reentrant lazy iteration over all deployments."""
        metrics = exploration_metrics()
        index = 0
        while True:
            while index < len(self._materialized):
                yield self._materialized[index]
                index += 1
            if self._exhausted:
                return
            started = time.perf_counter_ns()
            try:
                deployment = next(self._source)
            except StopIteration:
                self._exhausted = True
                deployment = None
            metrics.inc(
                "explore.enumerate_host_ns", time.perf_counter_ns() - started
            )
            if deployment is not None:
                self._materialized.append(deployment)

    @property
    def deployments(self) -> list[Deployment]:
        """Every feasible deployment (SH combination × coloring)."""
        return list(self._iter())

    def exploration_stats(self) -> dict:
        """Matrix/memo/pruning counters for the enumeration so far."""
        return {
            **self._stats,
            "materialized": len(self._materialized),
            "exhausted": self._exhausted,
            "coloring_memo_size": len(self.coloring_cache),
        }

    def default_perf(self, deployment: Deployment) -> float:
        """The analytic cost estimator bound to this library set."""
        if self._default_perf is None:
            self._default_perf = crossing_cost_fn(self.libdefs)
        return self._default_perf(deployment)

    def _security_upper_bound(self) -> float:
        """No deployment of this library set can score higher."""
        max_techniques = sum(
            max(len(variant) for variant in sh_variants(libdef, self._alternatives))
            for libdef in self.libdefs
        )
        return 5.0 * (len(self.libdefs) - 1) + 2.0 * max_techniques

    def _timed_query(self, name: str):
        """Context manager charging query host-time to the obs registry."""

        class _Timer:
            def __enter__(timer):
                timer.started = time.perf_counter_ns()
                return timer

            def __exit__(timer, *exc) -> None:
                metrics = exploration_metrics()
                elapsed = time.perf_counter_ns() - timer.started
                metrics.inc("explore.query_host_ns", elapsed)
                metrics.inc(f"explore.queries.{name}")
                metrics.histogram("explore.query_ns").observe(elapsed)

        return _Timer()

    def max_security_within_budget(
        self,
        budget: float,
        perf_fn: Callable[[Deployment], float] | None = None,
    ) -> Deployment | None:
        """Strategy 1: the safest deployment whose cost fits the budget.

        Streams over the lazy enumeration and stops early when a
        candidate within budget reaches the library set's security
        upper bound — the rest of the product cannot beat it.
        """
        perf = perf_fn if perf_fn is not None else self.default_perf
        bound = self._security_upper_bound()
        best: Deployment | None = None
        best_score = float("-inf")
        with self._timed_query("max_security_within_budget"):
            for deployment in self._iter():
                if perf(deployment) > budget:
                    continue
                score = security_score(deployment)
                if score > best_score:
                    best, best_score = deployment, score
                    if best_score >= bound:
                        break
        return best

    def best_performance_meeting(
        self,
        requirements: list[str],
        perf_fn: Callable[[Deployment], float] | None = None,
        stop_at: float | None = None,
    ) -> Deployment | None:
        """Strategy 2: the cheapest deployment meeting all requirements.

        ``stop_at`` optionally short-circuits the scan: the first
        compliant candidate at or below that cost is returned
        immediately (useful when any deployment under a known floor —
        e.g. zero boundary crossings — is good enough).
        """
        perf = perf_fn if perf_fn is not None else self.default_perf
        best: Deployment | None = None
        best_cost = float("inf")
        with self._timed_query("best_performance_meeting"):
            for deployment in self._iter():
                if not all(
                    requirement_satisfied(deployment, requirement, self.libdefs)
                    for requirement in requirements
                ):
                    continue
                cost = perf(deployment)
                if cost < best_cost:
                    best, best_cost = deployment, cost
                    if stop_at is not None and best_cost <= stop_at:
                        break
        return best

    def most_portable(
        self,
        requirements: list[str],
        devices: dict[str, frozenset[str]] | None = None,
        perf_fn: Callable[[Deployment], float] | None = None,
    ) -> tuple[Deployment, dict[str, str]] | None:
        """Strategy 2b: the requirement-compliant deployment that runs
        on the most devices.

        Returns ``(deployment, {device: backend})`` covering the widest
        slice of ``devices`` (default: :data:`DEVICE_PROFILES`); ties
        break toward the better-performing deployment.  Deployments
        whose safety comes from software hardening rather than hardware
        isolation naturally win here — the paper's argument for keeping
        the mechanism choice open until deployment time.
        """
        device_map = devices if devices is not None else DEVICE_PROFILES
        perf = perf_fn if perf_fn is not None else self.default_perf
        best: tuple[Deployment, dict[str, str]] | None = None
        best_key: tuple[int, float] | None = None
        with self._timed_query("most_portable"):
            for deployment in self._iter():
                if not all(
                    requirement_satisfied(deployment, requirement, self.libdefs)
                    for requirement in requirements
                ):
                    continue
                placements = {}
                for device, backends in device_map.items():
                    backend = backend_for_device(deployment, backends)
                    if backend is not None:
                        placements[device] = backend
                key = (-len(placements), perf(deployment))
                if best_key is None or key < best_key:
                    best_key = key
                    best = (deployment, placements)
        return best
