"""Design-space exploration (paper §2, "Design Overview").

The two strategies the paper sketches:

1. "Given a performance target and a set of predefined compartments,
   find the combination of isolation primitives that maximizes security
   within a certain performance budget" —
   :meth:`Explorer.max_security_within_budget`.
2. "Given a set of safety requirements, find a compliant instantiation
   that yields the best performance" —
   :meth:`Explorer.best_performance_meeting`.

Performance can be estimated analytically (:func:`estimate_crossing_cost`,
cheap, good for ranking) or measured by actually building and running
the image (pass a simulation-backed ``perf_fn``; the benchmarks do
this).
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import CompatibilityError
from repro.core.hardening import Deployment, LibraryDef, enumerate_deployments

#: Relative runtime weight of each SH technique (used by the analytic
#: estimator; roughly proportional to the measured Table-1 overheads).
SH_WEIGHTS = {
    "asan": 3.0,
    "kasan": 3.0,
    "mte": 0.8,
    "dfi": 2.0,
    "ubsan": 1.0,
    "cfi": 0.5,
    "stackprotector": 0.3,
    "safestack": 0.2,
}


def estimate_crossing_cost(
    deployment: Deployment,
    libdefs: list[LibraryDef],
    crossing_weight: float = 1.0,
    sh_weight: float = 1.0,
) -> float:
    """Analytic cost: boundary call-graph edges + SH instrumentation.

    Counts the (static) call-graph edges that end up crossing a
    compartment boundary — each such edge becomes a gate at runtime —
    plus a weight for every hardened library.  Unit-free: useful for
    ranking candidate deployments, not for absolute predictions.
    """
    by_name = {libdef.name: libdef for libdef in libdefs}
    crossings = 0
    for name, color in deployment.coloring.items():
        calls = by_name[name].true_behavior.get("calls") or []
        for target in calls:
            callee = target.split("::", 1)[0]
            if callee in deployment.coloring and deployment.coloring[callee] != color:
                crossings += 1
    sh_cost = sum(
        SH_WEIGHTS.get(technique, 1.0)
        for techniques in deployment.choices.values()
        for technique in techniques
    )
    return crossing_weight * crossings + sh_weight * sh_cost


def security_score(deployment: Deployment) -> float:
    """Heuristic security value of a deployment (higher = safer).

    Rewards separation (each additional compartment is a hardware
    boundary an attacker must cross), SH coverage, and penalises
    libraries whose effective spec still allows wild writes while
    sharing a compartment with anyone.
    """
    score = 5.0 * (deployment.num_compartments - 1)
    for techniques in deployment.choices.values():
        score += 2.0 * len(techniques)
    sizes: dict[int, int] = {}
    for color in deployment.coloring.values():
        sizes[color] = sizes.get(color, 0) + 1
    for name, spec in deployment.specs.items():
        if spec.writes_everything and sizes[deployment.coloring[name]] > 1:
            score -= 4.0
    return score


def requirement_satisfied(
    deployment: Deployment, requirement: str, libdefs: list[LibraryDef]
) -> bool:
    """Evaluate one safety requirement against a deployment.

    Supported vocabulary:

    - ``isolated:<lib>`` — the library sits alone in its compartment;
    - ``write-protected:<lib>`` — no co-resident library's effective
      spec can write the library's private memory;
    - ``cfi:<lib>`` — the library's effective calls are bounded;
    - ``no-wild-writes`` — every library with unbounded writes is
      either hardened out of them or isolated alone (the paper's
      "no buffer overflows" style requirement).
    """
    coloring = deployment.coloring
    sizes: dict[int, int] = {}
    for color in coloring.values():
        sizes[color] = sizes.get(color, 0) + 1

    if requirement == "no-wild-writes":
        return all(
            not spec.writes_everything or sizes[coloring[name]] == 1
            for name, spec in deployment.specs.items()
        )
    if ":" not in requirement:
        raise CompatibilityError(f"unknown requirement {requirement!r}")
    kind, lib = requirement.split(":", 1)
    if lib not in coloring:
        raise CompatibilityError(f"requirement names unknown library {lib!r}")
    if kind == "isolated":
        return sizes[coloring[lib]] == 1
    if kind == "write-protected":
        return all(
            not spec.writes_everything
            for name, spec in deployment.specs.items()
            if name != lib and coloring[name] == coloring[lib]
        )
    if kind == "cfi":
        return deployment.specs[lib].calls is not None
    raise CompatibilityError(f"unknown requirement kind {kind!r}")


#: Device classes and the isolation backends their hardware supports
#: (paper §2: deployments should be able to "run on the largest number
#: of devices (based on the availability of hardware-based
#: mechanisms)").  SH-only deployments (one compartment) run anywhere.
DEVICE_PROFILES: dict[str, frozenset[str]] = {
    "x86-mpk-kvm": frozenset({"none", "mpk-shared", "mpk-switched", "vm-rpc"}),
    "x86-legacy-kvm": frozenset({"none", "vm-rpc"}),
    "arm-virt": frozenset({"none", "vm-rpc"}),
    "cheri-morello": frozenset({"none", "cheri"}),
    "embedded-no-virt": frozenset({"none"}),
}

#: Isolating backends ordered by crossing cost (cheapest first), used
#: to pick the fastest mechanism a device offers.
_BACKEND_PREFERENCE = ("cheri", "mpk-shared", "mpk-switched", "vm-rpc")


def backend_for_device(
    deployment: Deployment, device_backends: frozenset[str]
) -> str | None:
    """The cheapest backend that realises ``deployment`` on a device.

    Single-compartment deployments need no isolation hardware; multi-
    compartment ones need some isolating mechanism.  ``None`` means the
    device cannot host the deployment.
    """
    if deployment.num_compartments <= 1:
        return "none"
    for backend in _BACKEND_PREFERENCE:
        if backend in device_backends:
            return backend
    return None


class Explorer:
    """Enumerates and ranks feasible deployments for a library set."""

    def __init__(
        self,
        libdefs: list[LibraryDef],
        alternatives: bool = False,
        isolate: tuple[str, ...] = (),
    ) -> None:
        self.libdefs = libdefs
        self._deployments = enumerate_deployments(
            libdefs, alternatives, isolate=isolate
        )

    @property
    def deployments(self) -> list[Deployment]:
        """Every feasible deployment (SH combination × coloring)."""
        return list(self._deployments)

    def default_perf(self, deployment: Deployment) -> float:
        """The analytic cost estimator bound to this library set."""
        return estimate_crossing_cost(deployment, self.libdefs)

    def max_security_within_budget(
        self,
        budget: float,
        perf_fn: Callable[[Deployment], float] | None = None,
    ) -> Deployment | None:
        """Strategy 1: the safest deployment whose cost fits the budget."""
        perf = perf_fn if perf_fn is not None else self.default_perf
        candidates = [d for d in self._deployments if perf(d) <= budget]
        if not candidates:
            return None
        return max(candidates, key=security_score)

    def best_performance_meeting(
        self,
        requirements: list[str],
        perf_fn: Callable[[Deployment], float] | None = None,
    ) -> Deployment | None:
        """Strategy 2: the cheapest deployment meeting all requirements."""
        perf = perf_fn if perf_fn is not None else self.default_perf
        candidates = [
            d
            for d in self._deployments
            if all(
                requirement_satisfied(d, requirement, self.libdefs)
                for requirement in requirements
            )
        ]
        if not candidates:
            return None
        return min(candidates, key=perf)

    def most_portable(
        self,
        requirements: list[str],
        devices: dict[str, frozenset[str]] | None = None,
        perf_fn: Callable[[Deployment], float] | None = None,
    ) -> tuple[Deployment, dict[str, str]] | None:
        """Strategy 2b: the requirement-compliant deployment that runs
        on the most devices.

        Returns ``(deployment, {device: backend})`` covering the widest
        slice of ``devices`` (default: :data:`DEVICE_PROFILES`); ties
        break toward the better-performing deployment.  Deployments
        whose safety comes from software hardening rather than hardware
        isolation naturally win here — the paper's argument for keeping
        the mechanism choice open until deployment time.
        """
        device_map = devices if devices is not None else DEVICE_PROFILES
        perf = perf_fn if perf_fn is not None else self.default_perf
        best: tuple[Deployment, dict[str, str]] | None = None
        best_key: tuple[int, float] | None = None
        for deployment in self._deployments:
            if not all(
                requirement_satisfied(deployment, requirement, self.libdefs)
                for requirement in requirements
            ):
                continue
            placements = {}
            for device, backends in device_map.items():
                backend = backend_for_device(deployment, backends)
                if backend is not None:
                    placements[device] = backend
            key = (-len(placements), perf(deployment))
            if best_key is None or key < best_key:
                best_key = key
                best = (deployment, placements)
        return best
