"""The FlexOS builder: configuration → runnable image.

"Using this information, FlexOS's builder will generate the required
protection domains (one per compartment) and replace the call gate
placeholders with the relevant code.  For libraries in the same
compartment, it will replace the call gates with direct function
calls.  For inter-compartment crossings, it will use the appropriate
gate for switching protection domains." (§2)

Build pipeline:

1. resolve library classes from the registry;
2. decide the compartment grouping (explicit, or automatically via the
   metadata compatibility analysis + graph coloring);
3. create protection domains per backend (MPK keys in one address
   space / one VM per compartment / a flat domain);
4. carve heaps (shared area + per-compartment or global allocators);
5. instantiate and install libraries (replicating the allocator per
   compartment when required);
6. wire the linker: direct channels within a compartment, backend
   gates across;
7. apply per-compartment software hardening;
8. boot.
"""

from __future__ import annotations

from repro.core.compatibility import conflict_graph
from repro.core.coloring import color_classes, minimum_coloring
import dataclasses

from repro.core.config import (
    FIRST_COMPARTMENT_PKEY,
    SHARED_PKEY,
    STACK_PKEY,
    BuildConfig,
    parse_queue_policy,
)
from repro.core.errors import BuildError
from repro.core.hardening import LibraryDef, transform_spec
from repro.core.image import Image
from repro.core.spec_parser import parse_spec
from repro.gates.base import GateOptions
from repro.gates.registry import make_channel
from repro.libos.alloc.allocator import HeapAllocator
from repro.libos.alloc.liballoc import AllocLibrary
from repro.libos.blk.blkdev import BlockDeviceLibrary
from repro.libos.compartment import Compartment
from repro.libos.fs.ramfs import FileSystemLibrary
from repro.libos.kv.store import KVStoreLibrary
from repro.libos.library import Linker, MicroLibrary
from repro.libos.libc.libc import LibCLibrary
from repro.libos.mq.mq import MessageQueueLibrary
from repro.libos.net.stack import NetstackLibrary
from repro.libos.sched.coop import CoopScheduler
from repro.libos.time.uktime import TimeLibrary
from repro.libos.sched.verified import VerifiedScheduler
from repro.machine.machine import Machine
from repro.machine.mpk import pkru_for_keys

#: Library registry: config name → micro-library class.  Applications
#: add themselves via :func:`register_library` (see repro.apps).
LIBRARY_TYPES: dict[str, type[MicroLibrary]] = {
    "alloc": AllocLibrary,
    "blk": BlockDeviceLibrary,
    "kv": KVStoreLibrary,
    "libc": LibCLibrary,
    "mq": MessageQueueLibrary,
    "netstack": NetstackLibrary,
    "time": TimeLibrary,
    "vfs": FileSystemLibrary,
}


def register_library(name: str, library_cls: type[MicroLibrary]) -> None:
    """Register an application/library class under a config name."""
    LIBRARY_TYPES[name] = library_cls


def _ensure_apps_registered() -> None:
    """Import the bundled applications so they self-register."""
    import repro.apps  # noqa: F401  (import has registration side effect)


def _library_class(name: str, config: BuildConfig) -> type[MicroLibrary]:
    if name == "sched":
        return VerifiedScheduler if config.scheduler == "verified" else CoopScheduler
    library_cls = LIBRARY_TYPES.get(name)
    if library_cls is None:
        raise BuildError(
            f"unknown library {name!r}; known: "
            f"{sorted(LIBRARY_TYPES) + ['sched']}"
        )
    return library_cls


def library_defs(config: BuildConfig) -> list[LibraryDef]:
    """Parse every selected library's metadata into LibraryDefs."""
    _ensure_apps_registered()
    defs = []
    for name in config.all_libraries():
        library_cls = _library_class(name, config)
        if not library_cls.SPEC.strip():
            raise BuildError(f"library {name!r} has no FlexOS metadata")
        spec = parse_spec(name, library_cls.SPEC)
        defs.append(
            LibraryDef(
                name=name,
                spec=spec,
                true_behavior=dict(library_cls.TRUE_BEHAVIOR),
            )
        )
    return defs


def auto_compartments(config: BuildConfig) -> list[list[str]]:
    """Derive the compartment grouping from the libraries' metadata.

    Applies the configured SH techniques' spec transformations first —
    a hardened library may legally share a compartment it otherwise
    could not — then minimally colors the conflict graph.
    """
    defs = library_defs(config)
    specs = []
    for libdef in defs:
        techniques = tuple(config.hardening.get(libdef.name, ()))
        specs.append(transform_spec(libdef, techniques).with_requires(
            libdef.spec.requires
        ))
    nodes, edges = conflict_graph(specs)
    coloring = minimum_coloring(nodes, edges)
    return color_classes(coloring)


def build_image(config: BuildConfig) -> Image:
    """Build and boot a FlexOS image for ``config``."""
    _ensure_apps_registered()
    config.validate()
    machine = Machine(cost=config.cost, phys_bytes=config.phys_bytes)
    groups = (
        [list(group) for group in config.compartments]
        if config.compartments is not None
        else auto_compartments(config)
    )

    # --- protection domains -------------------------------------------------
    compartments: list[Compartment] = []
    mpk = config.backend in ("mpk-shared", "mpk-switched")
    if config.backend == "vm-rpc":
        for index, group in enumerate(groups):
            compartment = Compartment(index, "+".join(group), machine)
            domain = machine.new_vm_domain(f"comp{index}")
            compartment.vm_domain = domain
            compartment.address_space = domain.space
            compartments.append(compartment)
        shared_base = machine.map_shared_window(
            [c.vm_domain for c in compartments], config.shared_heap_size
        )
    else:
        space = machine.new_address_space("main")
        for index, group in enumerate(groups):
            compartment = Compartment(index, "+".join(group), machine)
            compartment.address_space = space
            if mpk:
                compartment.pkey = FIRST_COMPARTMENT_PKEY + index
                writable = {compartment.pkey, SHARED_PKEY}
                if config.backend == "mpk-shared":
                    compartment.stack_pkey = STACK_PKEY
                    writable.add(STACK_PKEY)
                compartment.pkru_value = pkru_for_keys(writable=writable)
            compartments.append(compartment)
        shared_base = space.map_new(
            config.shared_heap_size,
            pkey=SHARED_PKEY if mpk else 0,
        )

    shared_allocator = HeapAllocator(
        "heap:shared", machine, shared_base, config.shared_heap_size
    )
    shared_ranges = [(shared_base, shared_base + config.shared_heap_size)]

    # --- heaps -------------------------------------------------------------------
    if config.allocator_policy == "global":
        # One allocator for the entire system (only legal without
        # hardware isolation — validated by BuildConfig).
        heap_base = compartments[0].address_space.map_new(config.heap_size)
        global_heap = HeapAllocator("heap:global", machine, heap_base, config.heap_size)
        # The global heap is writable system-wide: write-set checks
        # (DFI) must treat it like the shared area.
        shared_ranges.append((heap_base, heap_base + config.heap_size))
        for compartment in compartments:
            compartment.allocator = global_heap
            compartment.shared_allocator = shared_allocator
    else:
        for compartment in compartments:
            heap_base = compartment.alloc_region(config.heap_size)
            compartment.allocator = HeapAllocator(
                f"heap:{compartment.name}", machine, heap_base, config.heap_size
            )
            compartment.shared_allocator = shared_allocator

    # --- libraries -----------------------------------------------------------------
    # Services replicated into every compartment instead of gated:
    # the allocator under the per-compartment policy, and — under the
    # VM backend — LibC as well ("images contain the minimum set of
    # micro-libraries necessary to run the VM independently", §3).
    replicated_services = set()
    if config.allocator_policy == "per-compartment":
        replicated_services.add("alloc")
    if config.backend == "vm-rpc":
        replicated_services.add("libc")

    linker = Linker()
    libraries: dict[str, MicroLibrary] = {}
    all_instances: list[MicroLibrary] = []
    for compartment, group in zip(compartments, groups):
        for name in group:
            if name in replicated_services:
                continue  # replicas created below
            library = _library_class(name, config)()
            library.install(machine, compartment, linker)
            libraries[name] = library
            all_instances.append(library)
    replicas: dict[str, dict[int, MicroLibrary]] = {}
    for service in sorted(replicated_services):
        per_comp: dict[int, MicroLibrary] = {}
        for compartment in compartments:
            replica = _library_class(service, config)()
            replica.install(machine, compartment, linker)
            per_comp[compartment.index] = replica
            all_instances.append(replica)
        replicas[service] = per_comp
        home = next(
            (c.index for c, group in zip(compartments, groups) if service in group),
            compartments[0].index,
        )
        libraries[service] = per_comp[home]

    # --- linking ----------------------------------------------------------------------
    gate_kind = {
        # Backend "none": no protection switch, but hardening profiles
        # still follow the callee's compartment (ProfileChannel).
        "none": "profile",
        "mpk-shared": "mpk-shared",
        "mpk-switched": "mpk-switched",
        "vm-rpc": "vm-rpc",
        "cheri": "cheri",
    }[config.backend]

    if config.backend == "cheri":
        # Capability backend: one address space, no pkeys; each
        # compartment's reach is defined by its capability set.
        from repro.machine.capabilities import base_capabilities

        for compartment in compartments:
            compartment.capabilities = base_capabilities(
                compartment, shared_ranges
            )
    options = GateOptions(
        clear_registers=config.clear_registers,
        # Auto-generated trust-boundary wrappers (paper §5): checks
        # included only where the call actually crosses a domain —
        # make_channel never wraps same-compartment direct channels.
        api_guards=config.api_guards,
        shared_ranges=tuple(shared_ranges),
    )

    # Group-scoped shared heaps (per-pair shared regions): queue
    # channels allocate their rings here; installed before linking so
    # member PKRU updates land before any thread context is created.
    from repro.libos.alloc.groupheap import GroupSharedHeaps

    machine.group_heaps = GroupSharedHeaps(
        machine, compartments=compartments, shared_ranges=shared_ranges
    )
    queue_policies = {
        edge: parse_queue_policy(policy)
        for edge, policy in config.queue_edges.items()
    }

    def connect(caller: MicroLibrary, service: str, target: MicroLibrary) -> None:
        kind = (
            "direct" if target.compartment is caller.compartment else gate_kind
        )
        if service == "sched" and config.backend == "vm-rpc":
            # Each VM runs its own scheduler instance (paper §3: VM
            # images contain their own scheduler), so scheduling
            # operations never cross a VM boundary.  The reproduction
            # keeps one run loop but makes its operations VM-local.
            kind = "direct"
        edge_options = options
        queue_policy = queue_policies.get(f"{caller.NAME}->{service}")
        if queue_policy is not None and kind != "direct":
            # Batched submission/completion rings over the backend
            # gate: one doorbell crossing per batch instead of one per
            # call.  Same-compartment edges stay direct — there is no
            # crossing to amortise.
            batch, delay_ns = queue_policy
            kind = f"queue:{kind}"
            edge_options = dataclasses.replace(
                options, queue_batch=batch, queue_max_delay_ns=delay_ns
            )
        channel = make_channel(
            kind, machine, caller, target, options=edge_options
        )
        linker.connect(caller.NAME, service, channel)

    for caller in all_instances:
        for service, target in libraries.items():
            if service == caller.NAME:
                continue
            if service in replicated_services:
                # Resolve to the caller-local replica.
                connect(
                    caller, service, replicas[service][caller.compartment.index]
                )
            else:
                connect(caller, service, target)

    # --- software hardening ---------------------------------------------------------------
    from repro.sh.base import HardenContext
    from repro.sh.registry import make_hardener

    context = HardenContext(
        machine=machine, compartments=compartments, shared_ranges=shared_ranges
    )
    for compartment in compartments:
        techniques: list[str] = []
        for library in compartment.libraries:
            for technique in config.hardening.get(library.NAME, ()):
                if technique not in techniques:
                    techniques.append(technique)
        for technique in techniques:
            make_hardener(technique).apply(compartment, context)

    # --- failure policy ---------------------------------------------------------------------
    for compartment in compartments:
        compartment.failure_policy = config.failure_policy

    # --- image ------------------------------------------------------------------------------
    scheduler = libraries.get("sched")
    if scheduler is None:
        raise BuildError("image has no scheduler")  # pragma: no cover
    cost = machine.cost
    if config.backend == "mpk-shared":
        scheduler.domain_crossing_ns = cost.gate_dispatch_ns + cost.wrpkru_ns + (
            cost.reg_clear_ns if config.clear_registers else 0.0
        )
    elif config.backend == "mpk-switched":
        scheduler.domain_crossing_ns = (
            cost.gate_dispatch_ns
            + cost.wrpkru_ns
            + cost.stack_switch_ns
            + (cost.reg_clear_ns if config.clear_registers else 0.0)
        )
    elif config.backend == "cheri":
        scheduler.domain_crossing_ns = cost.cheri_crossing_ns
    # backend "none": no protection switch; "vm-rpc": each VM runs its
    # own scheduler, so switches never leave the VM.
    image = Image(
        machine=machine,
        config=config,
        compartments=compartments,
        linker=linker,
        libraries=libraries,
        all_instances=all_instances,
        scheduler=scheduler,
    )
    image.boot()
    return image
