"""Semi-automatic metadata generation from execution traces (paper §5).

"The process of writing metadata is error prone, and methods for
(semi-)automatically generating them should be explored."  This module
is one such method, in the spirit of SOAAP's dynamic analysis: run the
library under a representative workload in a *profiling image* (one
compartment per library, no isolation cost), record every memory
access and cross-library call, and emit:

- an observed :class:`~repro.core.metadata.LibrarySpec` (memory
  regions actually touched, calls actually made);
- ``TRUE_BEHAVIOR``-shaped facts usable by the SH transformations;
- a validation report comparing observations against the developer's
  declared metadata — a declared spec *narrower* than observed
  behaviour is exactly the metadata bug the paper worries about
  ("who verifies the specification/metadata?").

Inferred metadata is a lower bound (a trace only shows what the
workload exercised), so the report treats "observed ⊄ declared" as an
error and "declared broader than observed" as potential
over-approximation worth reviewing.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.core.metadata import LibrarySpec, Region

if TYPE_CHECKING:
    from repro.core.image import Image


@dataclasses.dataclass
class Observation:
    """Everything recorded about one library during profiling."""

    name: str
    reads: set[Region] = dataclasses.field(default_factory=set)
    writes: set[Region] = dataclasses.field(default_factory=set)
    calls: set[str] = dataclasses.field(default_factory=set)
    entry_points: set[str] = dataclasses.field(default_factory=set)
    access_count: int = 0

    def spec(self) -> LibrarySpec:
        """The observed behaviour as a LibrarySpec (no Requires)."""
        return LibrarySpec(
            name=self.name,
            reads=frozenset(self.reads) or frozenset({Region.OWN}),
            writes=frozenset(self.writes) or frozenset({Region.OWN}),
            calls=frozenset(self.calls),
            api=tuple(sorted(self.entry_points)),
        )

    def behavior_facts(self) -> dict:
        """TRUE_BEHAVIOR-shaped facts for the SH transformations."""
        return {
            "reads": sorted(str(region) for region in self.reads) or ["Own"],
            "writes": sorted(str(region) for region in self.writes) or ["Own"],
            "calls": sorted(self.calls),
        }


@dataclasses.dataclass
class SpecFinding:
    """One discrepancy between declared and observed metadata."""

    library: str
    severity: str  # "error" (unsound declaration) or "note" (over-approx)
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display
        return f"[{self.severity}] {self.library}: {self.detail}"


class MetadataRecorder:
    """Records per-library behaviour while an image runs.

    Intended for *profiling images* in which every library sits in its
    own compartment (so compartment-level monitors are library-level),
    e.g. built by :func:`profiling_image`.
    """

    def __init__(self, image: "Image") -> None:
        self.image = image
        self.observations: dict[str, Observation] = {}
        self._attached = False

    def _classify(self, compartment, vaddr: int) -> Region:
        if compartment.owns_address(vaddr):
            return Region.OWN
        shared = compartment.shared_allocator
        if shared is not None and shared.contains(vaddr):
            return Region.SHARED
        return Region.ALL  # reaches foreign memory: unbounded

    def attach(self) -> None:
        """Install access and call monitors on every compartment."""
        if self._attached:
            return
        self._attached = True
        for compartment in self.image.compartments:
            # Per-compartment allocator replicas live everywhere; they
            # perform no machine accesses of their own, so attribute
            # the compartment to its substantive library.
            names = [
                name
                for name in compartment.library_names()
                if name != "alloc"
            ] or ["alloc"]
            label = names[0] if len(names) == 1 else "+".join(names)
            observation = self.observations.setdefault(
                label, Observation(name=label)
            )

            def monitor(
                machine,
                kind,
                vaddr,
                size,
                observation=observation,
                compartment=compartment,
            ):
                region = self._classify(compartment, vaddr)
                observation.access_count += 1
                if kind == "load":
                    observation.reads.add(region)
                else:
                    observation.writes.add(region)

            def call_monitor(caller, callee, fn, observation=observation):
                observation.calls.add(f"{callee}::{fn}")
                target = self.observations.setdefault(
                    callee, Observation(name=callee)
                )
                target.entry_points.add(fn)

            compartment.profile.monitors.append(monitor)
            compartment.profile.call_monitors.append(call_monitor)

    def observed(self, library: str) -> Observation:
        """The observation record for a library (empty if never seen)."""
        return self.observations.get(library, Observation(name=library))

    # --- validation against declared metadata ----------------------------------

    def validate_declared(self, library: str) -> list[SpecFinding]:
        """Compare a library's declared SPEC against its observations."""
        from repro.core.spec_parser import parse_spec

        instance = self.image.lib(library)
        declared = parse_spec(library, instance.SPEC)
        observation = self.observed(library)
        findings: list[SpecFinding] = []

        for kind, observed_set, declared_ok in (
            ("read", observation.reads, declared.reads_region),
            ("write", observation.writes, declared.writes_region),
        ):
            for region in sorted(observed_set, key=str):
                if not declared_ok(region):
                    findings.append(
                        SpecFinding(
                            library,
                            "error",
                            f"observed {kind} of {region} memory not covered "
                            f"by the declared spec",
                        )
                    )
        if declared.calls is not None:
            undeclared = observation.calls - set(declared.calls)
            for target in sorted(undeclared):
                findings.append(
                    SpecFinding(
                        library,
                        "error",
                        f"observed call to {target} not in declared call list",
                    )
                )
        # Over-approximation notes.
        if declared.writes_everything and Region.ALL not in observation.writes:
            findings.append(
                SpecFinding(
                    library,
                    "note",
                    "declares Write(*) but only bounded writes were observed "
                    "— an SH-hardened variant could be co-located "
                    "(see repro.core.hardening)",
                )
            )
        if declared.calls is None and observation.calls:
            findings.append(
                SpecFinding(
                    library,
                    "note",
                    f"declares Call * but only "
                    f"{len(observation.calls)} concrete targets were observed",
                )
            )
        return findings


def profiling_image(libraries: list[str], **config_overrides):
    """Build a one-compartment-per-library image with a recorder.

    Returns ``(image, recorder)``; the recorder is already attached.
    Backend "none" keeps the profiling run cheap and non-intrusive.
    """
    from repro.core.builder import build_image
    from repro.core.config import BuildConfig

    config = BuildConfig(
        libraries=libraries, backend="none", **config_overrides
    )
    config.compartments = [[name] for name in config.all_libraries()]
    image = build_image(config)
    recorder = MetadataRecorder(image)
    recorder.attach()
    return image, recorder
