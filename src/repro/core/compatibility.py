"""Pairwise compartment-sharing compatibility (paper §2).

"Given two libraries and their metadata, we now have enough information
to automatically decide whether they can run in the same compartment.
If both libraries have no Requires clause, the answer is yes.  If any
of the libraries has such clauses, each clause can be automatically
checked in the presence of the other library."

The check is directional — :func:`violations` lists how ``actor``'s
(adversarial) behaviour breaks ``owner``'s allowances — and symmetric
compatibility requires both directions to be clean.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.metadata import LibrarySpec, Region


@dataclasses.dataclass(frozen=True)
class Violation:
    """One way ``actor`` breaks an allowance of ``owner``."""

    actor: str
    owner: str
    category: str  # "read", "write", or "call"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display
        return f"{self.actor} vs {self.owner} [{self.category}]: {self.detail}"


def violations(actor: LibrarySpec, owner: LibrarySpec) -> list[Violation]:
    """How ``actor``'s behaviour violates ``owner.requires``."""
    requires = owner.requires
    if requires is None or requires.empty:
        return []
    found: list[Violation] = []

    # --- writes: what of owner's view does actor write? -----------------
    if requires.writes is not None:
        needed: set[Region] = set()
        if actor.writes_everything:
            # A hijacked actor writes everything reachable, including
            # the owner's private memory.
            needed = {Region.OWN, Region.SHARED}
        elif Region.SHARED in actor.writes:
            needed = {Region.SHARED}
        for region in sorted(needed - set(requires.writes), key=str):
            found.append(
                Violation(
                    actor.name,
                    owner.name,
                    "write",
                    f"may write {region} memory of {owner.name}, which only "
                    f"allows writes to "
                    f"{sorted(str(r) for r in requires.writes) or 'nothing'}",
                )
            )

    # --- reads (write allowances imply read allowances) -----------------------
    allowed_reads = requires.allowed_reads()
    if allowed_reads is not None:
        needed = set()
        if actor.reads_everything:
            needed = {Region.OWN, Region.SHARED}
        elif Region.SHARED in actor.reads:
            needed = {Region.SHARED}
        for region in sorted(needed - set(allowed_reads), key=str):
            found.append(
                Violation(
                    actor.name,
                    owner.name,
                    "read",
                    f"may read {region} memory of {owner.name} without an "
                    f"allowance",
                )
            )

    # --- calls: control transfers into owner ---------------------------------
    if requires.calls is not None:
        into = actor.calls_into(owner.name)
        if into is None:
            found.append(
                Violation(
                    actor.name,
                    owner.name,
                    "call",
                    f"may execute arbitrary code, bypassing {owner.name}'s "
                    f"entry points",
                )
            )
        else:
            for fn in sorted(into - set(requires.calls)):
                found.append(
                    Violation(
                        actor.name,
                        owner.name,
                        "call",
                        f"calls {owner.name}::{fn}, not an allowed entry point",
                    )
                )
    return found


def can_share(a: LibrarySpec, b: LibrarySpec) -> bool:
    """May ``a`` and ``b`` be placed in the same compartment?"""
    return not violations(a, b) and not violations(b, a)


def explain_conflict(a: LibrarySpec, b: LibrarySpec) -> list[Violation]:
    """All violations in both directions (empty = compatible)."""
    return violations(a, b) + violations(b, a)


def conflict_graph(
    specs: list[LibrarySpec],
) -> tuple[list[str], set[frozenset[str]]]:
    """Build the incompatibility graph over a set of library specs.

    Returns (node names, edges) where an edge joins two libraries that
    must not share a compartment — the input to graph coloring
    (paper §2: "each library is a vertex, and an edge connects two
    incompatible libraries").
    """
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError("duplicate library names in spec list")
    edges: set[frozenset[str]] = set()
    for a, b in itertools.combinations(specs, 2):
        if not can_share(a, b):
            edges.add(frozenset({a.name, b.name}))
    return names, edges
