"""Pairwise compartment-sharing compatibility (paper §2).

"Given two libraries and their metadata, we now have enough information
to automatically decide whether they can run in the same compartment.
If both libraries have no Requires clause, the answer is yes.  If any
of the libraries has such clauses, each clause can be automatically
checked in the presence of the other library."

The check is directional — :func:`violations` lists how ``actor``'s
(adversarial) behaviour breaks ``owner``'s allowances — and symmetric
compatibility requires both directions to be clean.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.metadata import LibrarySpec, Region


@dataclasses.dataclass(frozen=True)
class Violation:
    """One way ``actor`` breaks an allowance of ``owner``."""

    actor: str
    owner: str
    category: str  # "read", "write", or "call"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display
        return f"{self.actor} vs {self.owner} [{self.category}]: {self.detail}"


def violations(actor: LibrarySpec, owner: LibrarySpec) -> list[Violation]:
    """How ``actor``'s behaviour violates ``owner.requires``."""
    requires = owner.requires
    if requires is None or requires.empty:
        return []
    found: list[Violation] = []

    # --- writes: what of owner's view does actor write? -----------------
    if requires.writes is not None:
        needed: set[Region] = set()
        if actor.writes_everything:
            # A hijacked actor writes everything reachable, including
            # the owner's private memory.
            needed = {Region.OWN, Region.SHARED}
        elif Region.SHARED in actor.writes:
            needed = {Region.SHARED}
        for region in sorted(needed - set(requires.writes), key=str):
            found.append(
                Violation(
                    actor.name,
                    owner.name,
                    "write",
                    f"may write {region} memory of {owner.name}, which only "
                    f"allows writes to "
                    f"{sorted(str(r) for r in requires.writes) or 'nothing'}",
                )
            )

    # --- reads (write allowances imply read allowances) -----------------------
    allowed_reads = requires.allowed_reads()
    if allowed_reads is not None:
        needed = set()
        if actor.reads_everything:
            needed = {Region.OWN, Region.SHARED}
        elif Region.SHARED in actor.reads:
            needed = {Region.SHARED}
        for region in sorted(needed - set(allowed_reads), key=str):
            found.append(
                Violation(
                    actor.name,
                    owner.name,
                    "read",
                    f"may read {region} memory of {owner.name} without an "
                    f"allowance",
                )
            )

    # --- calls: control transfers into owner ---------------------------------
    if requires.calls is not None:
        into = actor.calls_into(owner.name)
        if into is None:
            found.append(
                Violation(
                    actor.name,
                    owner.name,
                    "call",
                    f"may execute arbitrary code, bypassing {owner.name}'s "
                    f"entry points",
                )
            )
        else:
            for fn in sorted(into - set(requires.calls)):
                found.append(
                    Violation(
                        actor.name,
                        owner.name,
                        "call",
                        f"calls {owner.name}::{fn}, not an allowed entry point",
                    )
                )
    return found


def can_share(a: LibrarySpec, b: LibrarySpec) -> bool:
    """May ``a`` and ``b`` be placed in the same compartment?"""
    return not violations(a, b) and not violations(b, a)


def explain_conflict(a: LibrarySpec, b: LibrarySpec) -> list[Violation]:
    """All violations in both directions (empty = compatible)."""
    return violations(a, b) + violations(b, a)


def conflict_graph(
    specs: list[LibrarySpec],
) -> tuple[list[str], set[frozenset[str]]]:
    """Build the incompatibility graph over a set of library specs.

    Returns (node names, edges) where an edge joins two libraries that
    must not share a compartment — the input to graph coloring
    (paper §2: "each library is a vertex, and an edge connects two
    incompatible libraries").
    """
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError("duplicate library names in spec list")
    edges: set[frozenset[str]] = set()
    for a, b in itertools.combinations(specs, 2):
        if not can_share(a, b):
            edges.add(frozenset({a.name, b.name}))
    return names, edges


class CompatibilityMatrix:
    """Pairwise ``can_share`` precomputed over per-library *variants*.

    ``can_share(a, b)`` depends only on the two specs, yet the naive
    enumeration recomputes it for every combination of the *other*
    libraries' variants — O(combos · n²) pair checks.  This matrix
    computes each cross-library variant pair exactly once
    (O((Σ variants)²) checks total) and then assembles the conflict
    edge set of any variant selection by table lookup.

    ``variant_specs`` maps library name → list of that library's
    effective specs, one per SH variant, in variant order.
    """

    def __init__(self, variant_specs: dict[str, list[LibrarySpec]]) -> None:
        if not all(variant_specs.values()):
            raise ValueError("every library needs at least one variant spec")
        self.names: list[str] = list(variant_specs)
        self.variant_specs = {
            name: list(specs) for name, specs in variant_specs.items()
        }
        self.pairs_checked = 0
        # (name_a, name_b) → variant_a → variant_b → conflict?, stored
        # once per unordered pair in ``self.names`` order.  A pair whose
        # table is all-False is dropped entirely: most library pairs
        # never conflict, and ``edges_for`` skips them for free.
        self._tables: dict[tuple[str, str], list[list[bool]]] = {}
        self._pair_edges: dict[tuple[str, str], frozenset[str]] = {}
        for (a, specs_a), (b, specs_b) in itertools.combinations(
            self.variant_specs.items(), 2
        ):
            table = [
                [not can_share(spec_a, spec_b) for spec_b in specs_b]
                for spec_a in specs_a
            ]
            self.pairs_checked += len(specs_a) * len(specs_b)
            if any(any(row) for row in table):
                self._tables[(a, b)] = table
                self._pair_edges[(a, b)] = frozenset({a, b})

    def conflicts(self, a: str, i: int, b: str, j: int) -> bool:
        """Do variant ``i`` of ``a`` and variant ``j`` of ``b`` conflict?"""
        table = self._tables.get((a, b))
        if table is not None:
            return table[i][j]
        table = self._tables.get((b, a))
        if table is not None:
            return table[j][i]
        return False

    def edges_for(self, selection: dict[str, int]) -> set[frozenset[str]]:
        """Conflict edges of one variant selection (name → variant index).

        O(conflicting library pairs) table lookups — no ``can_share``
        evaluation, no scan over non-conflicting pairs.
        """
        edges: set[frozenset[str]] = set()
        for (a, b), table in self._tables.items():
            if table[selection[a]][selection[b]]:
                edges.add(self._pair_edges[(a, b)])
        return edges

    def edges_for_indices(self, indices: tuple[int, ...]) -> set[frozenset[str]]:
        """Conflict edges for a variant-index tuple in ``names`` order."""
        selection = dict(zip(self.names, indices))
        return self.edges_for(selection)

    def conflict_graph(
        self, selection: dict[str, int]
    ) -> tuple[list[str], set[frozenset[str]]]:
        """(nodes, edges) for a selection — same contract as
        :func:`conflict_graph` on the selected specs."""
        return list(self.names), self.edges_for(selection)
