"""A built FlexOS image: compartments wired, ready to boot and run."""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.core.config import BuildConfig
from repro.core.errors import BuildError
from repro.libos.compartment import Compartment
from repro.libos.library import Linker, MicroLibrary
from repro.libos.sched.base import Thread
from repro.libos.sched.coop import CoopScheduler
from repro.machine.machine import Machine

#: Boot precedence: services come up before their consumers; apps last.
_BOOT_ORDER = {
    "alloc": 0,
    "sched": 1,
    "libc": 2,
    "mq": 3,
    "netstack": 4,
    "blk": 5,
    "kv": 6,
}


def _boot_rank(library: MicroLibrary) -> int:
    return _BOOT_ORDER.get(library.NAME, 10)


class Image:
    """The runnable result of :func:`repro.core.builder.build_image`."""

    def __init__(
        self,
        machine: Machine,
        config: BuildConfig,
        compartments: list[Compartment],
        linker: Linker,
        libraries: dict[str, MicroLibrary],
        all_instances: list[MicroLibrary],
        scheduler: CoopScheduler,
    ) -> None:
        self.machine = machine
        self.config = config
        self.compartments = compartments
        self.linker = linker
        self._libraries = libraries
        self._all_instances = all_instances
        self.scheduler = scheduler
        self._booted = False

    # --- access -----------------------------------------------------------

    def lib(self, name: str) -> MicroLibrary:
        """The primary instance of the named library."""
        library = self._libraries.get(name)
        if library is None:
            raise BuildError(f"image has no library {name!r}")
        return library

    def has_lib(self, name: str) -> bool:
        """True if the image links the named library."""
        return name in self._libraries

    def compartment_of(self, name: str) -> Compartment:
        """The compartment holding the named library."""
        return self.lib(name).compartment

    @property
    def clock_ns(self) -> float:
        """Current simulated time."""
        return self.machine.cpu.clock_ns

    @property
    def obs(self):
        """The machine's observability bundle (tracer + metrics)."""
        return self.machine.obs

    def enable_tracing(self):
        """Turn on span recording; returns the tracer for exporting."""
        return self.machine.obs.tracer.enable()

    # --- lifecycle ----------------------------------------------------------

    def boot(self) -> None:
        """Run every library's post-link initialisation, start drivers."""
        if self._booted:
            raise BuildError("image already booted")
        for library in sorted(self._all_instances, key=_boot_rank):
            context = library.compartment.make_context(
                label=f"boot:{library.NAME}"
            )
            self.machine.cpu.push_context(context)
            try:
                library.on_boot()
            finally:
                self.machine.cpu.pop_context()
        self._booted = True
        if "netstack" in self._libraries:
            self.start_network()

    def start_network(self) -> Thread:
        """Spawn the network driver thread."""
        netstack = self.lib("netstack")
        body = netstack.make_rx_loop(self.config.rx_batch)
        return self.spawn("netstack-rx", body, netstack)

    def spawn(
        self,
        name: str,
        body_factory: Callable[[], Generator],
        library: MicroLibrary,
    ) -> Thread:
        """Create a thread homed in ``library``'s compartment."""
        return self.scheduler.spawn(name, body_factory, library.compartment)

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_switches: int | None = None,
    ) -> int:
        """Run the scheduler inside its compartment's context."""
        context = self.scheduler.compartment.make_context(label="sched:run")
        self.machine.cpu.push_context(context)
        try:
            return self.scheduler.run(until=until, max_switches=max_switches)
        finally:
            self.machine.cpu.pop_context()

    def call(self, lib_name: str, fn: str, *args: Any) -> Any:
        """Host-side call into a library export, in its own context.

        Used by workload harnesses for control operations (``stop``,
        ``net_stats``); regular inter-library traffic goes through
        gates instead.
        """
        library = self.lib(lib_name)
        handler = library.exports.get(fn)
        if handler is None:
            raise BuildError(f"{lib_name} has no export {fn!r}")
        context = library.compartment.make_context(label=f"host:{lib_name}.{fn}")
        self.machine.cpu.push_context(context)
        try:
            return handler(*args)
        finally:
            self.machine.cpu.pop_context()

    def shutdown(self) -> None:
        """Graceful teardown: stop drivers, destroy remaining threads.

        Optional — images are plain objects and can simply be dropped —
        but shutting down lets parked threads unwind their gate chains
        inside valid protection contexts instead of at garbage
        collection time.
        """
        if "netstack" in self._libraries:
            self.call("netstack", "stop")
            self.run(max_switches=10_000)
        self.scheduler.kill_all()

    # --- reporting ----------------------------------------------------------

    def layout(self) -> str:
        """Human-readable compartment layout."""
        lines = []
        for compartment in self.compartments:
            backend = (
                f"pkey={compartment.pkey}"
                if compartment.pkey is not None
                else (
                    f"vm={compartment.vm_domain.name}"
                    if compartment.vm_domain
                    else "flat"
                )
            )
            lines.append(
                f"compartment {compartment.index} ({backend}): "
                + ", ".join(compartment.library_names())
            )
        return "\n".join(lines)

    def stats(self) -> dict[str, float]:
        """CPU counters plus the clock."""
        return self.machine.cpu.snapshot()

    def memory_report(self) -> list[dict]:
        """Per-compartment memory accounting (diagnostics).

        One row per compartment: mapped private bytes, heap usage, and
        the (global) shared-heap usage.
        """
        rows = []
        for compartment in self.compartments:
            owned = sum(end - start for start, end in compartment.owned_ranges)
            allocator = compartment.allocator
            shared = compartment.shared_allocator
            rows.append(
                {
                    "compartment": compartment.name,
                    "owned_bytes": owned,
                    "heap_in_use": getattr(allocator, "bytes_in_use", 0),
                    "heap_live_blocks": getattr(allocator, "live_blocks", 0),
                    "shared_in_use": getattr(shared, "bytes_in_use", 0),
                }
            )
        return rows

    def metrics_snapshot(self) -> dict:
        """JSON-ready dump of every metric, stamped with the clock."""
        snapshot = self.machine.obs.metrics.snapshot()
        snapshot["clock_ns"] = self.machine.cpu.clock_ns
        return snapshot

    def crossing_matrix(self) -> dict[str, dict[str, int]]:
        """caller → callee → crossing counts from the metrics registry."""
        return self.machine.obs.metrics.crossing_matrix()

    def crossing_report(self) -> list[tuple[str, str, str, int]]:
        """Per-edge channel usage: (caller, callee, kind, crossings).

        This is how you see *where* isolation cost comes from — e.g.
        the paper's Fig. 5 diagnosis that semaphore traffic into LibC
        dominates — without instrumenting anything: every channel
        counts its own invocations.  Sorted busiest-first; unused edges
        are omitted.
        """
        from repro.gates.guard import GuardedChannel

        rows = []
        for (caller, callee), channel in self.linker._channels.items():
            # Unwrap guards only: a queue channel is the edge's real
            # kind ("queue:mpk-shared"), its crossings the doorbells.
            while isinstance(channel, GuardedChannel):
                channel = channel.inner
            crossings = getattr(channel, "crossings", 0)
            if crossings:
                rows.append((caller, callee, channel.KIND, crossings))
        rows.sort(key=lambda row: -row[3])
        return rows
