"""Graph coloring for compartment minimization (paper §2).

"Selecting the smallest number of compartments in a FlexOS image can be
reduced to the classical graph coloring problem. ... In the worst case
where all libraries have conflicts, each library will be instantiated
in its own compartment."

Two solvers:

- :func:`dsatur_coloring` — the DSATUR greedy heuristic, fast and
  good for the small conflict graphs micro-library sets produce;
- :func:`exact_coloring` — branch-and-bound that provably minimizes
  the color count (feasible up to a few dozen vertices).

:func:`minimum_coloring` uses the exact solver when the graph is small
and falls back to DSATUR otherwise.
"""

from __future__ import annotations

from typing import Iterable

Edge = frozenset


def _adjacency(
    nodes: list[str], edges: Iterable[frozenset[str]]
) -> dict[str, set[str]]:
    adjacency: dict[str, set[str]] = {node: set() for node in nodes}
    for edge in edges:
        pair = sorted(edge)
        if len(pair) != 2:
            raise ValueError(f"edge must join two distinct nodes: {edge}")
        a, b = pair
        if a not in adjacency or b not in adjacency:
            raise ValueError(f"edge {edge} references unknown node")
        adjacency[a].add(b)
        adjacency[b].add(a)
    return adjacency


def verify_coloring(
    edges: Iterable[frozenset[str]], coloring: dict[str, int]
) -> bool:
    """True if no edge joins two same-colored nodes."""
    for edge in edges:
        a, b = sorted(edge)
        if coloring[a] == coloring[b]:
            return False
    return True


def dsatur_coloring(
    nodes: list[str], edges: Iterable[frozenset[str]]
) -> dict[str, int]:
    """DSATUR greedy coloring (Brélaz): color by saturation degree."""
    adjacency = _adjacency(nodes, edges)
    coloring: dict[str, int] = {}
    uncolored = set(nodes)
    saturation: dict[str, set[int]] = {node: set() for node in nodes}
    while uncolored:
        # Most saturated first; break ties by degree, then name for
        # determinism.
        pick = max(
            uncolored,
            key=lambda n: (len(saturation[n]), len(adjacency[n]), n),
        )
        used = saturation[pick]
        color = 0
        while color in used:
            color += 1
        coloring[pick] = color
        uncolored.discard(pick)
        for neighbour in adjacency[pick]:
            saturation[neighbour].add(color)
    return coloring


def _max_clique_lower_bound(adjacency: dict[str, set[str]]) -> int:
    """A greedy clique gives a lower bound on the chromatic number."""
    best = 0
    for start in adjacency:
        clique = {start}
        for candidate in sorted(
            adjacency[start], key=lambda n: -len(adjacency[n])
        ):
            if all(candidate in adjacency[member] for member in clique):
                clique.add(candidate)
        best = max(best, len(clique))
    return max(best, 1 if adjacency else 0)


def exact_coloring(
    nodes: list[str], edges: Iterable[frozenset[str]]
) -> dict[str, int]:
    """Provably minimum coloring via branch-and-bound.

    Seeds the upper bound with DSATUR and prunes with a greedy-clique
    lower bound; exponential in the worst case, fine for micro-library
    conflict graphs.
    """
    if not nodes:
        return {}
    edges = list(edges)
    adjacency = _adjacency(nodes, edges)
    best = dsatur_coloring(nodes, edges)
    best_count = max(best.values()) + 1
    lower = _max_clique_lower_bound(adjacency)
    if best_count == lower:
        return best
    # Order nodes by degree (descending) for tighter early pruning.
    order = sorted(nodes, key=lambda n: -len(adjacency[n]))

    def backtrack(index: int, coloring: dict[str, int], used: int) -> None:
        nonlocal best, best_count
        if used >= best_count:
            return
        if index == len(order):
            best = dict(coloring)
            best_count = used
            return
        node = order[index]
        neighbour_colors = {
            coloring[n] for n in adjacency[node] if n in coloring
        }
        for color in range(min(used + 1, best_count)):
            if color in neighbour_colors:
                continue
            coloring[node] = color
            backtrack(index + 1, coloring, max(used, color + 1))
            del coloring[node]
            if best_count == lower:
                return

    backtrack(0, {}, 0)
    return best


def minimum_coloring(
    nodes: list[str], edges: Iterable[frozenset[str]], exact_limit: int = 24
) -> dict[str, int]:
    """Best-effort minimum coloring (exact below ``exact_limit`` nodes)."""
    edges = list(edges)
    if len(nodes) <= exact_limit:
        return exact_coloring(nodes, edges)
    return dsatur_coloring(nodes, edges)


class ColoringCache:
    """Memoizes :func:`minimum_coloring` by conflict-graph signature.

    Many SH-variant combinations induce *identical* conflict edge sets
    (hardening one library often leaves every other pair untouched), so
    the exponential enumeration keeps re-coloring the same graph.  The
    canonical signature is the node tuple plus the frozenset of edges:
    equal signatures get the exact same (cached) coloring back, so the
    memoized path is bit-identical to calling the solver directly.
    """

    def __init__(self, exact_limit: int = 24) -> None:
        self.exact_limit = exact_limit
        self.hits = 0
        self.misses = 0
        self._memo: dict[
            tuple[tuple[str, ...], frozenset[frozenset[str]]], dict[str, int]
        ] = {}

    def __len__(self) -> int:
        return len(self._memo)

    def minimum_coloring(
        self, nodes: list[str], edges: Iterable[frozenset[str]]
    ) -> dict[str, int]:
        """Cached :func:`minimum_coloring` (returns a fresh dict copy)."""
        signature = (tuple(nodes), frozenset(edges))
        cached = self._memo.get(signature)
        if cached is None:
            self.misses += 1
            cached = self._memo[signature] = minimum_coloring(
                nodes, signature[1], exact_limit=self.exact_limit
            )
        else:
            self.hits += 1
        return dict(cached)


def color_classes(coloring: dict[str, int]) -> list[list[str]]:
    """Group nodes by color: the compartment contents, sorted stably."""
    classes: dict[int, list[str]] = {}
    for node, color in coloring.items():
        classes.setdefault(color, []).append(node)
    return [sorted(classes[color]) for color in sorted(classes)]
