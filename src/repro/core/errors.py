"""Errors raised by the FlexOS core (spec language, build system).

This module also re-exports the full machine fault taxonomy from
:mod:`repro.machine.faults`, so callers have a single import point for
every error the reproduction can raise::

    from repro.core.errors import BuildError, CompartmentFailure

See the taxonomy notes in :mod:`repro.machine.faults` for which type
to catch where (``GateError`` = wiring bug, ``CompartmentFailure`` =
contained crash, ``ProtectionFault`` = raw hardware fault, ...).
"""

from __future__ import annotations

from repro.machine.faults import (  # noqa: F401  (re-exported taxonomy)
    CONTAINABLE_FAULTS,
    BoundaryViolation,
    CompartmentFailure,
    ContractViolation,
    GateError,
    InjectedFault,
    MachineError,
    OutOfMemoryError,
    PageFault,
    ProtectionFault,
    RPCTimeout,
    SHViolation,
)

__all__ = [
    "FlexOSError",
    "SpecError",
    "CompatibilityError",
    "BuildError",
    # Re-exported machine fault taxonomy:
    "MachineError",
    "OutOfMemoryError",
    "PageFault",
    "ProtectionFault",
    "SHViolation",
    "ContractViolation",
    "GateError",
    "BoundaryViolation",
    "InjectedFault",
    "RPCTimeout",
    "CompartmentFailure",
    "CONTAINABLE_FAULTS",
]


class FlexOSError(Exception):
    """Base class for core-level errors."""


class SpecError(FlexOSError):
    """Malformed library metadata (DSL syntax or semantic errors)."""


class CompatibilityError(FlexOSError):
    """A configuration violates the libraries' compatibility constraints."""


class BuildError(FlexOSError):
    """Invalid build configuration or failed image construction."""
