"""Errors raised by the FlexOS core (spec language, build system)."""

from __future__ import annotations


class FlexOSError(Exception):
    """Base class for core-level errors."""


class SpecError(FlexOSError):
    """Malformed library metadata (DSL syntax or semantic errors)."""


class CompatibilityError(FlexOSError):
    """A configuration violates the libraries' compatibility constraints."""


class BuildError(FlexOSError):
    """Invalid build configuration or failed image construction."""
