"""FlexOS core: the paper's primary contribution.

- the metadata/spec language (:mod:`metadata`, :mod:`spec_parser`);
- pairwise compatibility + conflict graph (:mod:`compatibility`);
- compartment minimization by graph coloring (:mod:`coloring`);
- SH spec transformations + deployment enumeration (:mod:`hardening`);
- design-space exploration strategies (:mod:`explorer`);
- the build system (:mod:`config`, :mod:`builder`, :mod:`image`).
"""

from repro.core.autobench import build_for_deployment, simulated_perf_fn
from repro.core.builder import (
    LIBRARY_TYPES,
    auto_compartments,
    build_image,
    library_defs,
    register_library,
)
from repro.core.coloring import (
    color_classes,
    dsatur_coloring,
    exact_coloring,
    minimum_coloring,
    verify_coloring,
)
from repro.core.compatibility import (
    Violation,
    can_share,
    conflict_graph,
    explain_conflict,
    violations,
)
from repro.core.config import BuildConfig
from repro.core.errors import BuildError, CompatibilityError, FlexOSError, SpecError
from repro.core.explorer import (
    DEVICE_PROFILES,
    Explorer,
    backend_for_device,
    estimate_crossing_cost,
    requirement_satisfied,
    security_score,
)
from repro.core.hardening import (
    Deployment,
    LibraryDef,
    enumerate_deployments,
    sh_variants,
    transform_spec,
)
from repro.core.image import Image
from repro.core.inference import (
    MetadataRecorder,
    Observation,
    SpecFinding,
    profiling_image,
)
from repro.core.metadata import LibrarySpec, Region, Requires
from repro.core.spec_parser import parse_spec

__all__ = [
    "BuildConfig",
    "BuildError",
    "CompatibilityError",
    "DEVICE_PROFILES",
    "Deployment",
    "Explorer",
    "FlexOSError",
    "Image",
    "LIBRARY_TYPES",
    "LibraryDef",
    "LibrarySpec",
    "MetadataRecorder",
    "Observation",
    "Region",
    "Requires",
    "SpecError",
    "SpecFinding",
    "Violation",
    "auto_compartments",
    "backend_for_device",
    "build_for_deployment",
    "build_image",
    "can_share",
    "color_classes",
    "conflict_graph",
    "dsatur_coloring",
    "enumerate_deployments",
    "estimate_crossing_cost",
    "exact_coloring",
    "explain_conflict",
    "library_defs",
    "minimum_coloring",
    "parse_spec",
    "profiling_image",
    "register_library",
    "requirement_satisfied",
    "security_score",
    "sh_variants",
    "simulated_perf_fn",
    "transform_spec",
    "verify_coloring",
    "violations",
]
