"""The FlexOS library metadata model (the paper's spec language).

Each micro-library's API is complemented with metadata specifying
(§2 of the paper):

1. the areas of memory the library can access in normal *and
   adversarial* operation (``[Memory access]``);
2. the functions it calls (``[Call]``);
3. the API it exposes (``[API]``);
4. ``[Requires]`` — the expected behaviour of *other* components
   sharing its compartment, without which its safety properties do not
   hold.

Semantics used throughout:

- Memory regions are :class:`Region`: ``OWN`` (the library's private
  memory), ``SHARED`` (the designated shared area), or ``ALL`` (``*`` —
  anything reachable in the compartment, i.e. the library's behaviour
  cannot be bounded: a hijacked execution may read/write everything).
- ``calls`` is either a frozenset of ``"lib::fn"`` targets or ``None``
  meaning ``*`` (may execute arbitrary code / call anything).
- :class:`Requires` clauses are *allowances*: for each category that
  appears, anything not allowed is forbidden.  A category that never
  appears is unconstrained.  Allowing a write to a region implies
  allowing the read.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable


class Region(enum.Enum):
    """Memory areas a library may touch."""

    OWN = "Own"
    SHARED = "Shared"
    ALL = "*"

    def __str__(self) -> str:  # pragma: no cover - display
        return self.value


def normalize_regions(regions: Iterable[Region]) -> frozenset[Region]:
    """Collapse region sets: ``ALL`` absorbs everything else."""
    regions = frozenset(regions)
    if Region.ALL in regions:
        return frozenset({Region.ALL})
    return regions


@dataclasses.dataclass(frozen=True)
class Requires:
    """Allowances a library demands of its compartment neighbours.

    Each field is ``None`` when that category is unconstrained:

    - ``reads``: regions of *this library's view* others may read —
      ``OWN`` means "my private memory", ``SHARED`` the shared area;
    - ``writes``: regions others may write;
    - ``calls``: names of this library's entry points others may call
      (``None`` = any control transfer tolerated).
    """

    reads: frozenset[Region] | None = None
    writes: frozenset[Region] | None = None
    calls: frozenset[str] | None = None

    def allowed_reads(self) -> frozenset[Region] | None:
        """Read allowances, including those implied by write allowances."""
        if self.reads is None:
            return None
        implied = self.writes if self.writes is not None else frozenset()
        return self.reads | implied

    @property
    def empty(self) -> bool:
        """True if no category is constrained."""
        return self.reads is None and self.writes is None and self.calls is None


@dataclasses.dataclass(frozen=True)
class LibrarySpec:
    """Complete FlexOS metadata for one micro-library."""

    name: str
    reads: frozenset[Region] = frozenset({Region.OWN, Region.SHARED})
    writes: frozenset[Region] = frozenset({Region.OWN, Region.SHARED})
    #: ``None`` means ``Call *``; else explicit ``lib::fn`` targets.
    calls: frozenset[str] | None = None
    api: tuple[str, ...] = ()
    requires: Requires | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "reads", normalize_regions(self.reads))
        object.__setattr__(self, "writes", normalize_regions(self.writes))

    # --- adversarial behaviour queries ------------------------------------------

    @property
    def writes_everything(self) -> bool:
        """True if the library's writes cannot be bounded (``Write(*)``)."""
        return Region.ALL in self.writes

    @property
    def reads_everything(self) -> bool:
        """True if the library's reads cannot be bounded (``Read(*)``)."""
        return Region.ALL in self.reads

    @property
    def calls_anything(self) -> bool:
        """True if the library may execute arbitrary calls (``Call *``)."""
        return self.calls is None

    def writes_region(self, region: Region) -> bool:
        """May this library write ``region`` (directly or via ALL)?"""
        return region in self.writes or self.writes_everything

    def reads_region(self, region: Region) -> bool:
        """May this library read ``region`` (directly or via ALL)?"""
        return region in self.reads or self.reads_everything

    def calls_into(self, other: str) -> frozenset[str] | None:
        """Functions of ``other`` this library calls (None = unbounded)."""
        if self.calls is None:
            return None
        return frozenset(
            target.split("::", 1)[1]
            for target in self.calls
            if target.split("::", 1)[0] == other
        )

    def with_requires(self, requires: Requires | None) -> "LibrarySpec":
        """Copy with a different Requires section."""
        return dataclasses.replace(self, requires=requires)

    def describe(self) -> str:
        """Render back into the paper's DSL form.

        Note one lossy corner: the DSL has no syntax for an *empty*
        allowance list (e.g. ``Requires(calls=frozenset())`` — "no call
        may enter"), so such clauses render as absent and re-parse as
        unconstrained.  Construct such specs programmatically.
        """
        reads = ",".join(sorted(str(r) for r in self.reads))
        writes = ",".join(sorted(str(w) for w in self.writes))
        lines = [f"[Memory access] Read({reads}); Write({writes})"]
        lines.append(
            "[Call] " + ("*" if self.calls is None else ", ".join(sorted(self.calls)))
        )
        if self.api:
            lines.append("[API] " + "; ".join(self.api))
        if self.requires is not None and not self.requires.empty:
            clauses = []
            if self.requires.reads is not None:
                clauses += [f"*(Read,{r})" for r in sorted(str(x) for x in self.requires.reads)]
            if self.requires.writes is not None:
                clauses += [f"*(Write,{w})" for w in sorted(str(x) for x in self.requires.writes)]
            if self.requires.calls is not None:
                clauses += [f"*(Call, {c})" for c in sorted(self.requires.calls)]
            lines.append("[Requires] " + ", ".join(clauses))
        return "\n".join(lines)


#: Spec of a maximally-unsafe component (the paper's unsafe-C example).
UNSAFE_SPEC_TEMPLATE = LibrarySpec(
    name="unsafe",
    reads=frozenset({Region.ALL}),
    writes=frozenset({Region.ALL}),
    calls=None,
)
