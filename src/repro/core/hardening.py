"""Metadata-level software-hardening transformations (paper §2).

"We first create in FlexOS a machine-readable description of the impact
each SH technique has on the safety behavior of a library.  This is a
transformation that takes as input a library definition and outputs a
changed definition describing the safety behavior of the library when
the SH technique is enabled."

- CFI: ``Call(*)`` → ``Call(func. list)`` populated via a standard
  control-flow analysis (here: the library's ``TRUE_BEHAVIOR`` facts);
- DFI: if the data-flow graph shows all writes go to own data,
  ``Write(*)`` → ``Write(Own[,Shared])``;
- ASAN: like DFI for writes, and additionally bounds reads.

"The result of this step will be a list of libraries that have two
versions: one with SH, and one without.  We then iterate through all
combinations of such library versions and run the graph coloring
algorithm" — :func:`enumerate_deployments`.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.compatibility import CompatibilityMatrix, conflict_graph
from repro.core.coloring import ColoringCache, color_classes, minimum_coloring
from repro.core.errors import SpecError
from repro.core.metadata import LibrarySpec, Region

#: Region-name strings accepted in TRUE_BEHAVIOR facts.
_REGION_BY_NAME = {"Own": Region.OWN, "Shared": Region.SHARED, "*": Region.ALL}


def _regions_from_names(names: list[str]) -> frozenset[Region]:
    regions = set()
    for name in names:
        region = _REGION_BY_NAME.get(name)
        if region is None:
            raise SpecError(f"unknown region name {name!r} in behaviour facts")
        regions.add(region)
    return frozenset(regions)


@dataclasses.dataclass(frozen=True)
class LibraryDef:
    """A library as the design-space tooling sees it.

    ``spec`` is the developer-declared (conservative) metadata;
    ``true_behavior`` holds the facts a static control/data-flow
    analysis would establish, used by the transformations to narrow the
    spec when an SH technique enforces those facts at runtime.
    """

    name: str
    spec: LibrarySpec
    true_behavior: dict = dataclasses.field(default_factory=dict)


class SpecTransformation:
    """Base class: how one SH technique rewrites a library spec."""

    technique = "abstract"

    def applicable(self, libdef: LibraryDef) -> bool:
        """Would applying this technique change the library's spec?"""
        raise NotImplementedError

    def transform(self, libdef: LibraryDef, spec: LibrarySpec) -> LibrarySpec:
        """Rewrite ``spec`` assuming the technique is enforced."""
        raise NotImplementedError


class CFITransformation(SpecTransformation):
    """``Call(*)`` → the analysed call list."""

    technique = "cfi"

    def applicable(self, libdef: LibraryDef) -> bool:
        return (
            libdef.spec.calls is None
            and libdef.true_behavior.get("calls") is not None
        )

    def transform(self, libdef: LibraryDef, spec: LibrarySpec) -> LibrarySpec:
        calls = libdef.true_behavior.get("calls")
        if calls is None or spec.calls is not None:
            return spec
        return dataclasses.replace(spec, calls=frozenset(calls))


class DFITransformation(SpecTransformation):
    """``Write(*)`` → the analysed write regions."""

    technique = "dfi"

    def applicable(self, libdef: LibraryDef) -> bool:
        return (
            libdef.spec.writes_everything
            and libdef.true_behavior.get("writes") is not None
        )

    def transform(self, libdef: LibraryDef, spec: LibrarySpec) -> LibrarySpec:
        writes = libdef.true_behavior.get("writes")
        if writes is None or not spec.writes_everything:
            return spec
        return dataclasses.replace(spec, writes=_regions_from_names(writes))


class ASANTransformation(SpecTransformation):
    """Bounds both writes and reads to the analysed regions."""

    technique = "asan"

    def applicable(self, libdef: LibraryDef) -> bool:
        has_write_facts = libdef.true_behavior.get("writes") is not None
        has_read_facts = libdef.true_behavior.get("reads") is not None
        return (libdef.spec.writes_everything and has_write_facts) or (
            libdef.spec.reads_everything and has_read_facts
        )

    def transform(self, libdef: LibraryDef, spec: LibrarySpec) -> LibrarySpec:
        writes = libdef.true_behavior.get("writes")
        reads = libdef.true_behavior.get("reads")
        if spec.writes_everything and writes is not None:
            spec = dataclasses.replace(spec, writes=_regions_from_names(writes))
        if spec.reads_everything and reads is not None:
            spec = dataclasses.replace(spec, reads=_regions_from_names(reads))
        return spec


#: Transformation registry, by technique name.  "kasan" and "mte"
#: bound memory behaviour the same way ASAN does (they enforce the same
#: facts at runtime, by software shadow or hardware tags respectively).
TRANSFORMATIONS: dict[str, SpecTransformation] = {
    t.technique: t
    for t in (CFITransformation(), DFITransformation(), ASANTransformation())
}
TRANSFORMATIONS["kasan"] = TRANSFORMATIONS["asan"]
TRANSFORMATIONS["mte"] = TRANSFORMATIONS["asan"]


def transform_spec(libdef: LibraryDef, techniques: tuple[str, ...]) -> LibrarySpec:
    """Apply each technique's transformation to the library's spec."""
    spec = libdef.spec
    for technique in techniques:
        transformation = TRANSFORMATIONS.get(technique)
        if transformation is None:
            # Cost-only techniques (ubsan, stackprotector, safestack)
            # don't change the safety spec.
            continue
        spec = transformation.transform(libdef, spec)
    return spec


def sh_variants(libdef: LibraryDef, alternatives: bool = False) -> list[tuple[str, ...]]:
    """The SH versions a library can be built in (paper's enumeration).

    "1) for each library that writes to all memory, enable DFI / ASAN;
    2) for each library that can execute arbitrary code, enable CFI."
    Returns technique tuples, always starting with the unhardened
    ``()`` variant.  With ``alternatives=True``, both the ASAN- and the
    DFI-flavoured fix for unbounded writes are emitted.
    """
    variants: list[tuple[str, ...]] = [()]
    needs_write_fix = TRANSFORMATIONS["asan"].applicable(libdef) or TRANSFORMATIONS[
        "dfi"
    ].applicable(libdef)
    needs_call_fix = TRANSFORMATIONS["cfi"].applicable(libdef)
    call_part = ("cfi",) if needs_call_fix else ()
    if needs_write_fix:
        variants.append(("asan",) + call_part)
        if alternatives and TRANSFORMATIONS["dfi"].applicable(libdef):
            variants.append(("dfi",) + call_part)
    elif needs_call_fix:
        variants.append(call_part)
    return variants


@dataclasses.dataclass(frozen=True)
class Deployment:
    """One feasible build: SH choices + resulting compartment layout."""

    #: library name → techniques applied ("" tuple = unhardened).
    choices: dict[str, tuple[str, ...]]
    #: library name → effective (possibly transformed) spec.
    specs: dict[str, LibrarySpec]
    #: library name → compartment color.
    coloring: dict[str, int]

    @property
    def num_compartments(self) -> int:
        """Number of compartments the coloring produced."""
        return max(self.coloring.values()) + 1 if self.coloring else 0

    @property
    def compartments(self) -> list[list[str]]:
        """Compartment contents, one sorted list per color."""
        return color_classes(self.coloring)

    def hardened_libraries(self) -> list[str]:
        """Libraries built with at least one SH technique."""
        return sorted(name for name, techs in self.choices.items() if techs)

    def partition(self) -> frozenset[frozenset[str]]:
        """The compartment layout as an unordered set partition.

        Color *labels* are an artefact of the solver: two colorings
        that differ only by a color permutation describe the same
        physical layout.  The partition is the label-free form.
        """
        return frozenset(
            frozenset(members) for members in color_classes(self.coloring)
        )

    def key(self) -> tuple:
        """Stable, hashable identity: partition + sorted SH choices.

        Two deployments with the same key build the same image (same
        compartment grouping, same hardening), so this is the one
        cache/equality key every layer should use — the perf memo, the
        persistent cache, and result comparisons across enumeration
        paths.
        """
        return (
            self.partition(),
            tuple(sorted(self.choices.items())),
        )

    def describe(self) -> str:
        """Human-readable one-paragraph summary."""
        parts = []
        for index, members in enumerate(self.compartments):
            decorated = [
                name
                + (
                    f"[{'+'.join(self.choices[name])}]"
                    if self.choices[name]
                    else ""
                )
                for name in members
            ]
            parts.append(f"compartment {index}: {', '.join(decorated)}")
        return "; ".join(parts)


def _validate_isolate(
    libdefs: list[LibraryDef], isolate: tuple[str, ...]
) -> None:
    names = {libdef.name for libdef in libdefs}
    for name in isolate:
        if name not in names:
            raise SpecError(f"isolate names unknown library {name!r}")


def _isolate_edges(
    names: list[str], isolate: tuple[str, ...]
) -> set[frozenset[str]]:
    return {
        frozenset({name, other})
        for name in isolate
        for other in names
        if other != name
    }


def iter_deployments(
    libdefs: list[LibraryDef],
    alternatives: bool = False,
    isolate: tuple[str, ...] = (),
    prune_dominated: bool = False,
    coloring_cache: ColoringCache | None = None,
    stats: dict | None = None,
):
    """Lazily yield all SH-variant combinations, each minimally colored.

    The fast path behind :func:`enumerate_deployments`: the pairwise
    compatibility matrix is computed once over all library *variants*
    (each ``can_share`` depends only on the two specs), each distinct
    conflict-graph signature is colored once (``coloring_cache``), and
    deployments stream out so strategy queries can short-circuit
    without materializing the full variant product.  Yields the exact
    deployments the eager path produces, in the same order.

    ``prune_dominated=True`` additionally skips any deployment whose
    effective specs are identical to an earlier-yielded one with a
    pointwise subset of its SH techniques: the extra techniques changed
    no spec, so the layout, requirement satisfaction, and conflict
    structure are identical while every cost model charges at least as
    much.  Valid for cost-minimizing queries; **not** for security
    maximization (``security_score`` rewards technique count).

    ``stats``, when given, is filled with matrix/memo/pruning counters.
    """
    _validate_isolate(libdefs, isolate)
    names = [libdef.name for libdef in libdefs]
    if len(set(names)) != len(names):
        raise SpecError("duplicate library names in libdef list")
    return _iter_deployments(
        libdefs, names, alternatives, isolate, prune_dominated,
        coloring_cache, stats,
    )


def _iter_deployments(
    libdefs: list[LibraryDef],
    names: list[str],
    alternatives: bool,
    isolate: tuple[str, ...],
    prune_dominated: bool,
    coloring_cache: ColoringCache | None,
    stats: dict | None,
):
    """Generator body of :func:`iter_deployments` (validation is eager
    in the wrapper so bad arguments raise at call time, not first
    ``next()``)."""
    option_lists = [sh_variants(libdef, alternatives) for libdef in libdefs]
    variant_specs = {
        libdef.name: [
            transform_spec(libdef, techniques) for techniques in options
        ]
        for libdef, options in zip(libdefs, option_lists)
    }
    matrix = CompatibilityMatrix(variant_specs)
    cache = coloring_cache if coloring_cache is not None else ColoringCache()
    extra_edges = _isolate_edges(names, isolate)
    if stats is not None:
        stats["pairs_checked"] = matrix.pairs_checked
        stats["combos"] = 0
        stats["pruned"] = 0
    # spec tuple → technique choices already yielded with those specs,
    # for dominance pruning.  Variant lists start with ``()`` so a
    # dominating (subset) combination always precedes the dominated one
    # in product order.
    yielded_for_specs: dict[tuple, list[tuple]] = {}
    index_ranges = [range(len(options)) for options in option_lists]
    for indices in itertools.product(*index_ranges):
        choices = {
            name: option_lists[position][index]
            for position, (name, index) in enumerate(zip(names, indices))
        }
        specs = {
            name: variant_specs[name][index]
            for name, index in zip(names, indices)
        }
        if prune_dominated:
            spec_signature = tuple(specs[name] for name in names)
            seen = yielded_for_specs.setdefault(spec_signature, [])
            technique_sets = tuple(
                frozenset(choices[name]) for name in names
            )
            if any(
                all(
                    earlier_set <= current_set
                    for earlier_set, current_set in zip(earlier, technique_sets)
                )
                for earlier in seen
            ):
                if stats is not None:
                    stats["pruned"] += 1
                continue
            seen.append(technique_sets)
        edges = matrix.edges_for(dict(zip(names, indices)))
        if extra_edges:
            edges |= extra_edges
        coloring = cache.minimum_coloring(names, edges)
        if stats is not None:
            stats["combos"] += 1
            stats["coloring_hits"] = cache.hits
            stats["coloring_misses"] = cache.misses
        yield Deployment(choices=choices, specs=specs, coloring=coloring)


def enumerate_deployments(
    libdefs: list[LibraryDef],
    alternatives: bool = False,
    isolate: tuple[str, ...] = (),
    eager: bool = False,
) -> list[Deployment]:
    """All SH-variant combinations, each minimally colored.

    "This will result in as many colorings as there are possible
    combinations of libraries."

    ``isolate`` names libraries the user wants in their own
    compartments regardless of metadata compatibility — the paper's
    "set of predefined compartments (e.g. isolate the application and
    the network stack from everything else)".  Implemented as extra
    conflict edges, so the coloring still minimises everything else.

    By default this materializes :func:`iter_deployments` (pairwise
    matrix + coloring memo).  ``eager=True`` runs the original
    per-combination pipeline — a full ``conflict_graph`` and a fresh
    ``minimum_coloring`` per combo — kept as the reference
    implementation the fast path is benchmarked and property-tested
    against.
    """
    if not eager:
        return list(iter_deployments(libdefs, alternatives, isolate=isolate))
    _validate_isolate(libdefs, isolate)
    option_lists = [sh_variants(libdef, alternatives) for libdef in libdefs]
    deployments = []
    for combo in itertools.product(*option_lists):
        choices = {
            libdef.name: techs for libdef, techs in zip(libdefs, combo)
        }
        specs = {
            libdef.name: transform_spec(libdef, techs)
            for libdef, techs in zip(libdefs, combo)
        }
        nodes, edges = conflict_graph(list(specs.values()))
        for name in isolate:
            for other in nodes:
                if other != name:
                    edges.add(frozenset({name, other}))
        coloring = minimum_coloring(nodes, edges)
        deployments.append(
            Deployment(choices=choices, specs=specs, coloring=coloring)
        )
    return deployments
