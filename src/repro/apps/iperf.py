"""The iperf server application (paper §4, "Safe iperf").

A bulk-receive loop: accept a stream, ``recv`` into a fixed-size buffer
(the paper's x-axis in Figure 3 is this buffer size), discard the
payload, count bytes.  The receive buffer is annotated shared data —
it must be writable from the LibC compartment that performs the copy —
so it is allocated from the shared heap, exactly the porting step the
paper describes ("programmers also annotate data shared with other
micro-libs").
"""

from __future__ import annotations

from typing import Generator

from repro.libos.library import MicroLibrary, export


class IperfServerApp(MicroLibrary):
    """iperf-like bulk TCP sink."""

    NAME = "iperf"
    SPEC = """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] netstack::listen, netstack::recv, alloc::malloc_shared, \
alloc::free_shared
    [API] iperf_stats()
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": [
            "netstack::listen",
            "netstack::recv",
            "alloc::malloc_shared",
            "alloc::free_shared",
        ],
    }

    #: Default iperf control port; each server instance bumps from here.
    BASE_PORT = 5001

    def __init__(self) -> None:
        super().__init__()
        self._net = None
        self._alloc = None
        self._next_port = self.BASE_PORT
        self.received = 0
        self.recv_calls = 0
        self.done = False

    def on_install(self) -> None:
        # Application-private statistics block (bytes/intervals), the
        # app's own instrumentable memory traffic per recv.
        self._stats_block = self.alloc_static(64)

    def on_boot(self) -> None:
        self._net = self.stub("netstack")
        self._alloc = self.stub("alloc")

    def _account(self, count: int) -> None:
        """Update the in-memory transfer counters (as real iperf does)."""
        raw = self.machine.load(self._stats_block, 8)
        total = int.from_bytes(raw, "little") + count
        self.machine.store(self._stats_block, total.to_bytes(8, "little"))

    def next_port(self) -> int:
        """Fresh port for a new server instance (one per measurement)."""
        port = self._next_port
        self._next_port += 1
        return port

    def make_server(self, port: int, buffer_size: int, target_bytes: int):
        """Body factory: receive ``target_bytes`` then finish."""
        if buffer_size <= 0 or target_bytes <= 0:
            raise ValueError("buffer and target sizes must be positive")

        def body() -> Generator:
            sockfd = self._net.call("listen", port)
            buffer = self._alloc.call("malloc_shared", buffer_size)
            self.received = 0
            self.recv_calls = 0
            self.done = False
            while self.received < target_bytes:
                count = yield from self._net.call_gen(
                    "recv", sockfd, buffer, buffer_size
                )
                if count == 0:
                    break
                self._account(count)
                self.received += count
                self.recv_calls += 1
            self._alloc.call("free_shared", buffer)
            self.done = True

        return body

    @export
    def iperf_stats(self) -> dict[str, int]:
        """Bytes and recv-call counters."""
        return {
            "received": self.received,
            "recv_calls": self.recv_calls,
            "done": int(self.done),
        }
