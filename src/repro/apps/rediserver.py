"""A Redis-like key/value server (paper §4, Redis experiments).

Implements a minimal text protocol over the simulated TCP-lite stream:

- ``SET <key> <len>\\n<len value bytes>`` → ``+OK\\n``
- ``GET <key>\\n`` → ``$<len>\\n<value>`` or ``$-1\\n`` on miss

Request parsing is a proper byte-stream parser: partial commands at the
end of a receive are shifted to the front of the request buffer and
completed by the next ``recv``, so pipelined clients (the closed-loop
workload, like redis-benchmark) work at any window size.

Structure relevant to the paper's numbers:

- values live in the *private* heap (``alloc.malloc``), copied in/out of
  the shared I/O buffers by the application's own code — an app cannot
  ask LibC to write app-private memory across an MPK boundary (the
  confused-deputy issue §5 discusses);
- each request allocates and frees a small reply object, so allocator
  instrumentation (ASAN's malloc tax) is paid per request — the
  mechanism behind the global-vs-local allocator gap in Figure 4.

Durability: when the image links the ``kv`` micro-library, SET and DEL
are journaled through the gate into the storage compartment (AOF-style:
the value travels straight from the shared request buffer), and
:meth:`RedisServerApp.recover` replays the log into the in-memory store
after a reboot.  Whether an acknowledged SET survives a power failure
then depends on the kv flush policy — ``every-write`` is redis
``appendfsync always``; ``batch:N`` is ``everysec``-style batching.
INCR/APPEND stay volatile (scope of the durability study is SET/DEL).
"""

from __future__ import annotations

from typing import Generator

from repro.libos.kv.store import MAX_VALUE as KV_MAX_VALUE
from repro.libos.library import MicroLibrary, export
from repro.machine.faults import GateError


class DumpTruncatedError(GateError):
    """A dump file ended mid-record during ``load``.

    The pre-fix behaviour silently accepted short ``vfs.read`` returns
    mid-record and rebuilt a corrupt store from whatever bytes happened
    to be in the staging buffer; now a truncated or torn dump is a
    typed, observable failure.
    """

    def __init__(self, context: str, expected: int, got: int) -> None:
        self.context = context
        self.expected = expected
        self.got = got
        super().__init__(
            f"dump truncated in {context}: wanted {expected} bytes, got {got}"
        )


class RedisServerApp(MicroLibrary):
    """Minimal pipelining-capable key/value server."""

    NAME = "redis"
    SPEC = """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] netstack::listen, netstack::recv, netstack::send, \
alloc::malloc, alloc::free, alloc::malloc_shared, alloc::free_shared, \
vfs::open, vfs::read, vfs::write, vfs::close, \
kv::put, kv::get, kv::delete, kv::sync, kv::recover, kv::kv_keys
    [API] redis_stats(); dbsize(); save(path); load(path); recover()
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": [
            "netstack::listen",
            "netstack::recv",
            "netstack::send",
            "alloc::malloc",
            "alloc::free",
            "alloc::malloc_shared",
            "alloc::free_shared",
            "vfs::open",
            "vfs::read",
            "vfs::write",
            "vfs::close",
            "kv::put",
            "kv::get",
            "kv::delete",
            "kv::sync",
            "kv::recover",
            "kv::kv_keys",
        ],
    }

    PORT = 6379
    #: Request/response staging buffer sizes.
    BUF_SIZE = 4096
    #: Size of the per-request reply object (redis robj analogue).
    REPLY_OBJ_SIZE = 64

    def __init__(self) -> None:
        super().__init__()
        self._net = None
        self._alloc = None
        self._kv = None
        #: key (bytes) → (value address in private heap, length)
        self._store: dict[bytes, tuple[int, int]] = {}
        self.sets = 0
        self.gets = 0
        self.misses = 0
        self.errors = 0
        self.responses = 0
        #: SET/DEL journaled into the kv compartment (durable mode only).
        self.kv_writes = 0
        self.running = False

    def on_boot(self) -> None:
        self._net = self.stub("netstack")
        self._alloc = self.stub("alloc")
        if self.linker is not None and self.linker.has_link(self, "kv"):
            # Optional durability: journal through the gate into the
            # storage compartment whenever the image links kv.
            self._kv = self.stub("kv")

    @property
    def durable(self) -> bool:
        """True when SET/DEL are journaled into the kv compartment."""
        return self._kv is not None

    # --- server loop ----------------------------------------------------------

    def make_server(self, port: int | None = None):
        """Body factory for the server thread (runs until stack stop)."""
        bind_port = port if port is not None else self.PORT

        def body() -> Generator:
            sockfd = self._net.call("listen", bind_port)
            req_buf = self._alloc.call("malloc_shared", self.BUF_SIZE)
            resp_buf = self._alloc.call("malloc_shared", self.BUF_SIZE)
            self.running = True
            pending = 0
            # Durable deployment over a batched (queue) kv channel:
            # journal the whole request buffer's SET/DELs in one
            # doorbell crossing and ack each only on its completion.
            # The deferred variant is a generator — it parks on the kv
            # channel's completion queue instead of forcing the flush.
            deferred = self._kv is not None and self._kv.supports_async
            while True:
                count = yield from self._net.call_gen(
                    "recv", sockfd, req_buf + pending, self.BUF_SIZE - pending
                )
                if count == 0:
                    break
                total = pending + count
                raw = self.machine.load(req_buf, total)
                if deferred:
                    consumed = yield from self._process_deferred(
                        raw, req_buf, resp_buf, sockfd
                    )
                else:
                    consumed = self._process(raw, req_buf, resp_buf, sockfd)
                if consumed < total:
                    # Shift the partial trailing command to the front.
                    self.machine.copy(req_buf, req_buf + consumed, total - consumed)
                pending = total - consumed
            self._alloc.call("free_shared", req_buf)
            self._alloc.call("free_shared", resp_buf)
            self.running = False

        return body

    def _process(
        self, raw: bytes, req_buf: int, resp_buf: int, sockfd: int
    ) -> int:
        """Execute every complete command in ``raw``; returns bytes consumed."""
        consumed = 0
        while True:
            newline = raw.find(b"\n", consumed)
            if newline < 0:
                break
            line = raw[consumed:newline]
            if line.startswith(b"SET "):
                parsed = self._parse_set(line)
                if parsed is None:
                    reply_len = self._reply_error(resp_buf)
                    consumed = newline + 1
                else:
                    key, length = parsed
                    value_start = newline + 1
                    if value_start + length > len(raw):
                        break  # value not fully received yet
                    self._do_set(key, req_buf + value_start, length)
                    reply_len = self._reply_ok(resp_buf)
                    consumed = value_start + length
            elif line.startswith(b"GET "):
                reply_len = self._do_get(line[4:].strip(), resp_buf)
                consumed = newline + 1
            elif line.startswith(b"DEL "):
                reply_len = self._do_del(line[4:].strip(), resp_buf)
                consumed = newline + 1
            elif line.startswith(b"EXISTS "):
                reply_len = self._do_exists(line[7:].strip(), resp_buf)
                consumed = newline + 1
            elif line.startswith(b"INCR "):
                reply_len = self._do_incr(line[5:].strip(), resp_buf)
                consumed = newline + 1
            elif line.startswith(b"APPEND "):
                parsed = self._parse_set(b"SET " + line[7:])
                if parsed is None:
                    reply_len = self._reply_error(resp_buf)
                    consumed = newline + 1
                else:
                    key, length = parsed
                    value_start = newline + 1
                    if value_start + length > len(raw):
                        break  # suffix not fully received yet
                    reply_len = self._do_append(
                        key, req_buf + value_start, length, resp_buf
                    )
                    consumed = value_start + length
            else:
                reply_len = self._reply_error(resp_buf)
                consumed = newline + 1
            # Per-request reply object, as redis allocates per command.
            reply_obj = self._alloc.call("malloc", self.REPLY_OBJ_SIZE)
            self._alloc.call("free", reply_obj)
            self._net.call("send", sockfd, resp_buf, reply_len)
            self.responses += 1
        return consumed

    def _process_deferred(
        self, raw: bytes, req_buf: int, resp_buf: int, sockfd: int
    ) -> Generator:
        """Batched-durability variant of :meth:`_process` (a generator).

        Phase 1 parses the buffer and *submits* every SET/DEL journal
        record onto the kv queue channel without acknowledging anything.
        Phase 2 waits for every journal completion — wake-driven: the
        scheduler parks this thread on the channel's completion queue
        until a flush delivers them (the channel's own batch/max-delay
        policy, or a flush performed by any other thread, rings the
        doorbell; a policy with no latency bound flushes on behalf of
        the waiter).  Phase 3 applies commands in order, acking each
        SET/DEL only if its journal completion came back clean —
        journal-before-ack, amortised over the request buffer.  A
        command whose journal op failed is answered ``-ERR`` and its
        in-memory effect is skipped, so the store never runs ahead of
        the journal.
        """
        consumed = 0
        submitted = 0
        staged: list[tuple] = []
        while True:
            newline = raw.find(b"\n", consumed)
            if newline < 0:
                break
            line = raw[consumed:newline]
            if line.startswith(b"SET "):
                parsed = self._parse_set(line)
                if parsed is None:
                    staged.append(("err",))
                    consumed = newline + 1
                else:
                    key, length = parsed
                    value_start = newline + 1
                    if value_start + length > len(raw):
                        break  # value not fully received yet
                    ticket = None
                    if length <= KV_MAX_VALUE:
                        ticket = self._kv.submit(
                            "put", key, req_buf + value_start, length
                        )
                        submitted += 1
                    staged.append(
                        ("set", ticket, key, req_buf + value_start, length)
                    )
                    consumed = value_start + length
            elif line.startswith(b"GET "):
                staged.append(("get", line[4:].strip()))
                consumed = newline + 1
            elif line.startswith(b"DEL "):
                key = line[4:].strip()
                # Journal unconditionally: whether the key exists can
                # only be decided once earlier staged SETs have applied,
                # and a tombstone for a missing key is harmless.
                ticket = self._kv.submit("delete", key)
                submitted += 1
                staged.append(("del", ticket, key))
                consumed = newline + 1
            elif line.startswith(b"EXISTS "):
                staged.append(("exists", line[7:].strip()))
                consumed = newline + 1
            elif line.startswith(b"INCR "):
                staged.append(("incr", line[5:].strip()))
                consumed = newline + 1
            elif line.startswith(b"APPEND "):
                parsed = self._parse_set(b"SET " + line[7:])
                if parsed is None:
                    staged.append(("err",))
                    consumed = newline + 1
                else:
                    key, length = parsed
                    value_start = newline + 1
                    if value_start + length > len(raw):
                        break  # suffix not fully received yet
                    staged.append(
                        ("append", key, req_buf + value_start, length)
                    )
                    consumed = value_start + length
            else:
                staged.append(("err",))
                consumed = newline + 1
        # Wake-driven completion delivery: block until every journal
        # op submitted above has completed (one doorbell for the whole
        # pipeline) instead of forcing the flush and polling.
        if submitted:
            completions = yield from self._kv.wait_completions(submitted)
            done = {c.ticket: c for c in completions}
        else:
            done = {}
        for cmd in staged:
            kind = cmd[0]
            if kind == "set":
                _, ticket, key, value_addr, length = cmd
                completion = done.get(ticket)
                if ticket is not None and (
                    completion is None or not completion.ok
                ):
                    reply_len = self._reply_error(resp_buf)
                else:
                    if ticket is not None:
                        self.kv_writes += 1
                    self._apply_set(key, value_addr, length)
                    reply_len = self._reply_ok(resp_buf)
            elif kind == "del":
                _, ticket, key = cmd
                completion = done.get(ticket)
                if completion is None or not completion.ok:
                    reply_len = self._reply_error(resp_buf)
                else:
                    self.kv_writes += 1
                    entry = self._store.pop(key, None)
                    if entry is not None:
                        self._alloc.call("free", entry[0])
                    reply = b":%d\n" % (1 if entry is not None else 0)
                    self.machine.store(resp_buf, reply)
                    reply_len = len(reply)
            elif kind == "get":
                reply_len = self._do_get(cmd[1], resp_buf)
            elif kind == "exists":
                reply_len = self._do_exists(cmd[1], resp_buf)
            elif kind == "incr":
                reply_len = self._do_incr(cmd[1], resp_buf)
            elif kind == "append":
                _, key, suffix_addr, suffix_len = cmd
                reply_len = self._do_append(
                    key, suffix_addr, suffix_len, resp_buf
                )
            else:
                reply_len = self._reply_error(resp_buf)
            # Per-request reply object, as redis allocates per command.
            reply_obj = self._alloc.call("malloc", self.REPLY_OBJ_SIZE)
            self._alloc.call("free", reply_obj)
            self._net.call("send", sockfd, resp_buf, reply_len)
            self.responses += 1
        return consumed

    # --- commands ---------------------------------------------------------------

    @staticmethod
    def _parse_set(line: bytes) -> tuple[bytes, int] | None:
        parts = line.split()
        if len(parts) != 3:
            return None
        try:
            length = int(parts[2])
        except ValueError:
            return None
        if length < 0:
            return None
        return parts[1], length

    def _do_set(self, key: bytes, value_addr: int, length: int) -> None:
        if self._kv is not None and length <= KV_MAX_VALUE:
            # AOF-style journal first: the value is still sitting in the
            # shared request buffer, so the storage compartment can read
            # it straight through the gate without another staging copy.
            # Journal-before-apply means an acknowledged SET is at least
            # as durable as the kv flush policy promises.
            self._kv.call("put", key, value_addr, length)
            self.kv_writes += 1
        self._apply_set(key, value_addr, length)

    def _apply_set(self, key: bytes, value_addr: int, length: int) -> None:
        """In-memory half of SET: copy the value into the private heap."""
        old = self._store.pop(key, None)
        if old is not None:
            self._alloc.call("free", old[0])
        stored = self._alloc.call("malloc", max(1, length))
        if length:
            # The app copies from the shared request buffer into its
            # private heap itself (LibC may not write app memory).
            self.machine.copy(stored, value_addr, length)
        self._store[key] = (stored, length)
        self.sets += 1

    def _do_get(self, key: bytes, resp_buf: int) -> int:
        self.gets += 1
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            self.machine.store(resp_buf, b"$-1\n")
            return 4
        addr, length = entry
        head = b"$%d\n" % length
        self.machine.store(resp_buf, head)
        if length:
            self.machine.copy(resp_buf + len(head), addr, length)
        return len(head) + length

    def _do_del(self, key: bytes, resp_buf: int) -> int:
        entry = self._store.pop(key, None)
        if entry is not None:
            if self._kv is not None:
                self._kv.call("delete", key)
                self.kv_writes += 1
            self._alloc.call("free", entry[0])
        reply = b":%d\n" % (1 if entry is not None else 0)
        self.machine.store(resp_buf, reply)
        return len(reply)

    def _do_exists(self, key: bytes, resp_buf: int) -> int:
        reply = b":%d\n" % (1 if key in self._store else 0)
        self.machine.store(resp_buf, reply)
        return len(reply)

    def _do_incr(self, key: bytes, resp_buf: int) -> int:
        entry = self._store.get(key)
        if entry is None:
            current = 0
        else:
            addr, length = entry
            raw = self.machine.load(addr, length) if length else b"0"
            try:
                current = int(raw)
            except ValueError:
                return self._reply_error(resp_buf)
        current += 1
        encoded = b"%d" % current
        stored = self._alloc.call("malloc", len(encoded))
        self.machine.store(stored, encoded)
        if entry is not None:
            self._alloc.call("free", entry[0])
        self._store[key] = (stored, len(encoded))
        reply = b":%d\n" % current
        self.machine.store(resp_buf, reply)
        return len(reply)

    def _do_append(
        self, key: bytes, suffix_addr: int, suffix_len: int, resp_buf: int
    ) -> int:
        entry = self._store.get(key)
        old_len = entry[1] if entry is not None else 0
        total = old_len + suffix_len
        stored = self._alloc.call("malloc", max(1, total))
        if entry is not None:
            if old_len:
                self.machine.copy(stored, entry[0], old_len)
            self._alloc.call("free", entry[0])
        if suffix_len:
            self.machine.copy(stored + old_len, suffix_addr, suffix_len)
        self._store[key] = (stored, total)
        reply = b":%d\n" % total
        self.machine.store(resp_buf, reply)
        return len(reply)

    def _reply_ok(self, resp_buf: int) -> int:
        self.machine.store(resp_buf, b"+OK\n")
        return 4

    def _reply_error(self, resp_buf: int) -> int:
        self.errors += 1
        self.machine.store(resp_buf, b"-ERR\n")
        return 5

    # --- persistence (RDB-style dump over the vfs micro-library) ----------------------

    @export
    def save(self, path: str) -> int:
        """Dump the whole store to a file; returns the record count.

        Record format: ``klen(2B) key vlen(4B) value``, staged through
        a shared buffer because the filesystem compartment copies via
        LibC (the same shared-data annotation rule as socket I/O).
        """
        from repro.libos.fs.ramfs import O_CREAT, O_TRUNC, O_WRONLY

        vfs = self.stub("vfs")
        staging = self._alloc.call("malloc_shared", self.BUF_SIZE)
        fd = vfs.call("open", path, O_WRONLY | O_CREAT | O_TRUNC)
        records = 0
        try:
            for key, (addr, length) in sorted(self._store.items()):
                header = (
                    len(key).to_bytes(2, "big")
                    + key
                    + length.to_bytes(4, "big")
                )
                self.machine.store(staging, header)
                if length:
                    # App copies its private value into the shared
                    # staging area itself (confused-deputy rule).
                    self.machine.copy(staging + len(header), addr, length)
                vfs.call("write", fd, staging, len(header) + length)
                records += 1
        finally:
            vfs.call("close", fd)
            self._alloc.call("free_shared", staging)
        return records

    def _read_exact(self, vfs, fd: int, staging: int, count: int, context: str) -> bytes:
        """Read exactly ``count`` bytes or raise :class:`DumpTruncatedError`.

        ``vfs.read`` legitimately returns short at EOF; *mid-record*
        that means the dump was truncated or torn, and silently using
        the stale staging-buffer bytes would rebuild a corrupt store.
        """
        got = vfs.call("read", fd, staging, count)
        if got != count:
            raise DumpTruncatedError(context, expected=count, got=got)
        return self.machine.load(staging, count)

    @export
    def load(self, path: str) -> int:
        """Restore the store from a dump; returns the record count.

        A dump that ends cleanly between records is a normal EOF; one
        that ends *inside* a record raises :class:`DumpTruncatedError`
        (and the store keeps the records restored so far — callers
        decide whether a partial restore is acceptable).
        """
        from repro.libos.fs.ramfs import O_RDONLY

        vfs = self.stub("vfs")
        staging = self._alloc.call("malloc_shared", self.BUF_SIZE)
        fd = vfs.call("open", path, O_RDONLY)
        records = 0
        try:
            while True:
                got = vfs.call("read", fd, staging, 2)
                if got == 0:
                    break  # clean EOF on a record boundary
                if got != 2:
                    raise DumpTruncatedError(
                        "record header", expected=2, got=got
                    )
                key_len = int.from_bytes(self.machine.load(staging, 2), "big")
                raw = self._read_exact(
                    vfs, fd, staging, key_len + 4, "key + value length"
                )
                key = raw[:key_len]
                value_len = int.from_bytes(raw[key_len:], "big")
                stored = self._alloc.call("malloc", max(1, value_len))
                remaining = value_len
                copied = 0
                try:
                    while remaining > 0:
                        chunk = min(remaining, self.BUF_SIZE)
                        self._read_exact(
                            vfs, fd, staging, chunk, f"value of {key!r}"
                        )
                        self.machine.copy(stored + copied, staging, chunk)
                        copied += chunk
                        remaining -= chunk
                except DumpTruncatedError:
                    self._alloc.call("free", stored)
                    raise
                old = self._store.pop(key, None)
                if old is not None:
                    self._alloc.call("free", old[0])
                self._store[key] = (stored, value_len)
                records += 1
        finally:
            vfs.call("close", fd)
            self._alloc.call("free_shared", staging)
        return records

    # --- durability (AOF-style journal via the kv micro-library) -----------------------

    @export
    def recover(self) -> dict:
        """Replay the durable kv journal into the in-memory store.

        The boot path of a durable deployment: runs kv recovery (log
        scan / hint load, CRC-discarding torn records), then pulls every
        live key back into the private heap.  Returns the recovery
        report plus the number of keys restored.  A no-op (``durable:
        False``) when the image has no kv library.
        """
        if self._kv is None:
            return {"durable": False, "restored": 0}
        report = self._kv.call("recover")
        staging = self._alloc.call("malloc_shared", KV_MAX_VALUE)
        restored = 0
        try:
            for key in self._kv.call("kv_keys"):
                length = self._kv.call("get", key, staging)
                if length < 0:
                    continue  # raced with a tombstone; nothing to restore
                old = self._store.pop(key, None)
                if old is not None:
                    self._alloc.call("free", old[0])
                stored = self._alloc.call("malloc", max(1, length))
                if length:
                    self.machine.copy(stored, staging, length)
                self._store[key] = (stored, length)
                restored += 1
        finally:
            self._alloc.call("free_shared", staging)
        report = dict(report)
        report.update({"durable": True, "restored": restored})
        return report

    # --- exports ---------------------------------------------------------------------

    @export
    def redis_stats(self) -> dict[str, int]:
        """Command counters."""
        return {
            "sets": self.sets,
            "gets": self.gets,
            "misses": self.misses,
            "errors": self.errors,
            "responses": self.responses,
            "durable": self.durable,
            "kv_writes": self.kv_writes,
        }

    @export
    def dbsize(self) -> int:
        """Number of stored keys."""
        return len(self._store)

    def value_of(self, key: bytes) -> bytes | None:
        """Test helper: read a stored value back out of simulated memory."""
        entry = self._store.get(key)
        if entry is None:
            return None
        if self.machine is None:
            raise GateError("redis not installed")
        addr, length = entry
        return self.machine.dma_read(
            self.compartment.address_space, addr, length
        )
