"""A Redis-like key/value server (paper §4, Redis experiments).

Speaks two request framings over the simulated TCP-lite stream, chosen
per command by the first byte — exactly how real redis accepts both
RESP arrays and inline commands on one connection:

- **RESP2** (``*2\\r\\n$3\\r\\nGET\\r\\n$3\\r\\nkey\\r\\n`` → ``$5\\r\\nvalue\\r\\n``):
  the wire protocol external clients speak, parsed incrementally by
  :mod:`repro.apps.resp`.  Replies use RESP framing (CRLF, trailing
  terminator on bulk strings).
- **legacy text** (``SET <key> <len>\\n<len value bytes>`` → ``+OK\\n``):
  the original ad-hoc protocol, kept as the inline-command compat path
  (disable with ``accept_inline = False``).

Request parsing is a proper byte-stream parser in both framings:
partial commands at the end of a receive are shifted to the front of
the request buffer and completed by the next ``recv``, so pipelined
clients (the closed-loop workload, like redis-benchmark) work at any
window size and frames may split at any byte boundary.

Structure relevant to the paper's numbers:

- values live in the *private* heap (``alloc.malloc``), copied in/out of
  the shared I/O buffers by the application's own code — an app cannot
  ask LibC to write app-private memory across an MPK boundary (the
  confused-deputy issue §5 discusses);
- each request allocates and frees a small reply object, so allocator
  instrumentation (ASAN's malloc tax) is paid per request — the
  mechanism behind the global-vs-local allocator gap in Figure 4.

Durability: when the image links the ``kv`` micro-library, every write
command is journaled through the gate into the storage compartment
before it is acknowledged (AOF-style).  SET/DEL journal the record
as-is (the value travels straight from the shared request buffer);
INCR/APPEND journal their **post-image as a SET record** staged through
the response buffer, so recovery replays them like any other SET —
an acknowledged INCR survives crash→recover exactly like an
acknowledged SET.  :meth:`RedisServerApp.recover` replays the log into
the in-memory store after a reboot; whether an acknowledged write
survives a power failure then depends on the kv flush policy
(``every-write`` is redis ``appendfsync always``; ``batch:N`` is
``everysec``-style batching).

Cluster hooks (host-side, installed by :mod:`repro.cluster`):

- :meth:`set_cluster_router` arms slot-ownership checks — a keyed
  command for a slot this shard does not own (or no longer owns: a
  fenced ex-primary after failover) answers ``-MOVED <slot> <shard>``
  instead of executing, the redirect a smart client follows;
- :attr:`replicator` mirrors the journaled write stream to a follower
  shard over the fabric's vm-rpc-style storage channel, *before* the
  ack — journal-before-ack extends to replicate-before-ack.
"""

from __future__ import annotations

from typing import Generator

from repro.apps import resp as resp_proto
from repro.libos.kv.store import MAX_VALUE as KV_MAX_VALUE
from repro.libos.library import MicroLibrary, export
from repro.machine.faults import GateError


class DumpTruncatedError(GateError):
    """A dump file ended mid-record during ``load``.

    The pre-fix behaviour silently accepted short ``vfs.read`` returns
    mid-record and rebuilt a corrupt store from whatever bytes happened
    to be in the staging buffer; now a truncated or torn dump is a
    typed, observable failure.
    """

    def __init__(self, context: str, expected: int, got: int) -> None:
        self.context = context
        self.expected = expected
        self.got = got
        super().__init__(
            f"dump truncated in {context}: wanted {expected} bytes, got {got}"
        )


#: Commands that take a key (slot routing applies to these).
_KEYED = frozenset(("set", "get", "del", "exists", "incr", "append"))


class RedisServerApp(MicroLibrary):
    """Minimal pipelining-capable key/value server (RESP2 + inline)."""

    NAME = "redis"
    SPEC = """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] netstack::listen, netstack::recv, netstack::send, \
alloc::malloc, alloc::free, alloc::malloc_shared, alloc::free_shared, \
vfs::open, vfs::read, vfs::write, vfs::close, \
kv::put, kv::get, kv::delete, kv::sync, kv::recover, kv::kv_keys
    [API] redis_stats(); dbsize(); save(path); load(path); recover()
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": [
            "netstack::listen",
            "netstack::recv",
            "netstack::send",
            "alloc::malloc",
            "alloc::free",
            "alloc::malloc_shared",
            "alloc::free_shared",
            "vfs::open",
            "vfs::read",
            "vfs::write",
            "vfs::close",
            "kv::put",
            "kv::get",
            "kv::delete",
            "kv::sync",
            "kv::recover",
            "kv::kv_keys",
        ],
    }

    PORT = 6379
    #: Request/response staging buffer sizes.
    BUF_SIZE = 4096
    #: Size of the per-request reply object (redis robj analogue).
    REPLY_OBJ_SIZE = 64
    #: Accept legacy inline/text commands alongside RESP arrays.
    accept_inline = True

    def __init__(self) -> None:
        super().__init__()
        self._net = None
        self._alloc = None
        self._kv = None
        #: key (bytes) → (value address in private heap, length)
        self._store: dict[bytes, tuple[int, int]] = {}
        self.sets = 0
        self.gets = 0
        self.misses = 0
        self.errors = 0
        self.responses = 0
        #: Write records journaled into the kv compartment (durable mode).
        self.kv_writes = 0
        #: ``-MOVED`` redirects answered (cluster mode).
        self.redirects = 0
        self.running = False
        #: Host-side cluster router: ``key -> None | (slot, owner)``;
        #: non-None means redirect (this shard does not own the slot).
        self._cluster_router = None
        #: Host-side replication channel (``.put(key, bytes)`` /
        #: ``.delete(key)``); mirrors the journaled write stream to a
        #: follower shard before each ack.
        self.replicator = None

    def on_boot(self) -> None:
        self._net = self.stub("netstack")
        self._alloc = self.stub("alloc")
        if self.linker is not None and self.linker.has_link(self, "kv"):
            # Optional durability: journal through the gate into the
            # storage compartment whenever the image links kv.
            self._kv = self.stub("kv")

    @property
    def durable(self) -> bool:
        """True when writes are journaled into the kv compartment."""
        return self._kv is not None

    # --- cluster hooks (host-side) ----------------------------------------

    def set_cluster_router(self, router) -> None:
        """Install (or clear) the slot-ownership check.

        ``router(key)`` returns ``None`` when this shard currently owns
        the key's slot, else ``(slot, owner_name)`` — the command is
        answered with ``-MOVED slot owner`` and not executed.  Called
        by the cluster control plane at build, rebalance, and failover
        time; a demoted ex-primary's router redirects everything, which
        is the split-brain fence.
        """
        self._cluster_router = router

    def _route(self, key: bytes):
        if self._cluster_router is None:
            return None
        return self._cluster_router(key)

    # --- server loop ----------------------------------------------------------

    def make_server(self, port: int | None = None):
        """Body factory for the server thread (runs until stack stop)."""
        bind_port = port if port is not None else self.PORT

        def body() -> Generator:
            sockfd = self._net.call("listen", bind_port)
            req_buf = self._alloc.call("malloc_shared", self.BUF_SIZE)
            resp_buf = self._alloc.call("malloc_shared", self.BUF_SIZE)
            self.running = True
            pending = 0
            # Durable deployment over a batched (queue) kv channel:
            # journal the whole request buffer's writes in one doorbell
            # crossing and ack each only on its completion.  The
            # deferred variant is a generator — it parks on the kv
            # channel's completion queue instead of forcing the flush.
            deferred = self._kv is not None and self._kv.supports_async
            while True:
                count = yield from self._net.call_gen(
                    "recv", sockfd, req_buf + pending, self.BUF_SIZE - pending
                )
                if count == 0:
                    break
                total = pending + count
                raw = self.machine.load(req_buf, total)
                if deferred:
                    consumed = yield from self._process_deferred(
                        raw, req_buf, resp_buf, sockfd
                    )
                else:
                    consumed = self._process(raw, req_buf, resp_buf, sockfd)
                if consumed < total:
                    # Shift the partial trailing command to the front.
                    self.machine.copy(req_buf, req_buf + consumed, total - consumed)
                pending = total - consumed
            self._alloc.call("free_shared", req_buf)
            self._alloc.call("free_shared", resp_buf)
            self.running = False

        return body

    # --- request parsing (both framings → command tuples) -----------------

    def _parse_commands(self, raw: bytes) -> tuple[list[tuple], int]:
        """Parse every complete command in ``raw``; (commands, consumed).

        Command tuples end with the framing flag (``True`` = RESP —
        the reply uses RESP framing):

        - ``("set", key, value_offset, length, resp)``
        - ``("get"|"del"|"exists"|"incr", key, resp)``
        - ``("append", key, suffix_offset, length, resp)``
        - ``("ping", resp)`` / ``("err", resp)``

        A malformed RESP frame (bad header, oversized bulk) consumes
        the rest of the buffer and yields one ``err`` — the typed
        :class:`~repro.apps.resp.RespError` path; resynchronising
        inside a corrupt stream would execute attacker-framed bytes.
        """
        commands: list[tuple] = []
        pos = 0
        limit = len(raw)
        while pos < limit:
            if raw[pos] == 0x2A:  # "*": a RESP array
                try:
                    parsed = resp_proto.parse_array(
                        raw, pos, max_bulk=self.BUF_SIZE - 64
                    )
                except resp_proto.RespError:
                    commands.append(("err", True))
                    pos = limit
                    break
                if parsed is None:
                    break  # incomplete frame: wait for more bytes
                args, offsets, pos = parsed
                commands.append(self._command_from_resp(args, offsets))
            else:
                if not self.accept_inline:
                    commands.append(("err", True))
                    pos = limit
                    break
                newline = raw.find(b"\n", pos)
                if newline < 0:
                    break  # incomplete line
                step = self._command_from_line(raw, pos, newline)
                if step is None:
                    break  # inline value not fully received yet
                command, pos = step
                commands.append(command)
        return commands, pos

    @staticmethod
    def _command_from_resp(args: list[bytes], offsets: list[int]) -> tuple:
        name = args[0].upper()
        argc = len(args)
        if name == b"SET" and argc == 3:
            return ("set", args[1], offsets[2], len(args[2]), True)
        if name == b"GET" and argc == 2:
            return ("get", args[1], True)
        if name == b"DEL" and argc == 2:
            return ("del", args[1], True)
        if name == b"EXISTS" and argc == 2:
            return ("exists", args[1], True)
        if name == b"INCR" and argc == 2:
            return ("incr", args[1], True)
        if name == b"APPEND" and argc == 3:
            return ("append", args[1], offsets[2], len(args[2]), True)
        if name == b"PING" and argc == 1:
            return ("ping", True)
        return ("err", True)

    def _command_from_line(
        self, raw: bytes, pos: int, newline: int
    ) -> tuple[tuple, int] | None:
        """One legacy text command at ``pos``; ``(command, next_pos)``.

        Returns ``None`` when a SET/APPEND value extends past the
        received bytes (partial command — retry after the next recv).
        """
        line = raw[pos:newline]
        if line.startswith(b"SET ") or line.startswith(b"APPEND "):
            op = "set" if line[0] == 0x53 else "append"
            parsed = self._parse_set(
                line if op == "set" else b"SET " + line[7:]
            )
            if parsed is None:
                return ("err", False), newline + 1
            key, length = parsed
            value_start = newline + 1
            if value_start + length > len(raw):
                return None  # value not fully received yet
            return (op, key, value_start, length, False), value_start + length
        if line.startswith(b"GET "):
            return ("get", line[4:].strip(), False), newline + 1
        if line.startswith(b"DEL "):
            return ("del", line[4:].strip(), False), newline + 1
        if line.startswith(b"EXISTS "):
            return ("exists", line[7:].strip(), False), newline + 1
        if line.startswith(b"INCR "):
            return ("incr", line[5:].strip(), False), newline + 1
        if line.strip() == b"PING":
            return ("ping", False), newline + 1
        return ("err", False), newline + 1

    # --- synchronous execution --------------------------------------------

    def _process(
        self, raw: bytes, req_buf: int, resp_buf: int, sockfd: int
    ) -> int:
        """Execute every complete command in ``raw``; returns bytes consumed."""
        commands, consumed = self._parse_commands(raw)
        for command in commands:
            reply_len = self._execute(command, req_buf, resp_buf)
            self._send_reply(resp_buf, reply_len, sockfd)
        return consumed

    def _execute(self, command: tuple, req_buf: int, resp_buf: int) -> int:
        kind = command[0]
        rsp = command[-1]
        if kind == "err":
            return self._reply_error(resp_buf, rsp)
        if kind == "ping":
            return self._store_reply(resp_buf, b"+PONG", rsp)
        key = command[1]
        if kind in _KEYED:
            redirect = self._route(key)
            if redirect is not None:
                return self._reply_moved(resp_buf, redirect, rsp)
        if kind == "set":
            _, _, offset, length, _ = command
            self._do_set(key, req_buf + offset, length)
            return self._reply_ok(resp_buf, rsp)
        if kind == "get":
            return self._do_get(key, resp_buf, rsp)
        if kind == "del":
            return self._do_del(key, resp_buf, rsp)
        if kind == "exists":
            return self._do_exists(key, resp_buf, rsp)
        if kind == "incr":
            return self._do_incr(key, resp_buf, rsp)
        if kind == "append":
            _, _, offset, length, _ = command
            return self._do_append(key, req_buf + offset, length, resp_buf, rsp)
        return self._reply_error(resp_buf, rsp)

    def _send_reply(self, resp_buf: int, reply_len: int, sockfd: int) -> None:
        # Per-request reply object, as redis allocates per command.
        reply_obj = self._alloc.call("malloc", self.REPLY_OBJ_SIZE)
        self._alloc.call("free", reply_obj)
        self._net.call("send", sockfd, resp_buf, reply_len)
        self.responses += 1

    # --- deferred (batched-durability) execution --------------------------

    def _process_deferred(
        self, raw: bytes, req_buf: int, resp_buf: int, sockfd: int
    ) -> Generator:
        """Batched-durability variant of :meth:`_process` (a generator).

        Phase 1 parses the buffer and *submits* every SET/DEL journal
        record onto the kv queue channel without acknowledging anything.
        Phase 2 waits for every journal completion — wake-driven: the
        scheduler parks this thread on the channel's completion queue
        until a flush delivers them (the channel's own batch/max-delay
        policy, or a flush performed by any other thread, rings the
        doorbell; a policy with no latency bound flushes on behalf of
        the waiter).  Phase 3 applies commands in order, acking each
        SET/DEL only if its journal completion came back clean —
        journal-before-ack, amortised over the request buffer.  A
        command whose journal op failed is answered ``-ERR`` and its
        in-memory effect is skipped, so the store never runs ahead of
        the journal.  INCR/APPEND post-images are journaled with a
        synchronous call in phase 3 (their value exists only once
        earlier staged commands have applied); the sync path flushes
        any queued records first, so ordering holds.
        """
        commands, consumed = self._parse_commands(raw)
        submitted = 0
        staged: list[tuple] = []
        for command in commands:
            kind = command[0]
            if kind in _KEYED:
                redirect = self._route(command[1])
                if redirect is not None:
                    staged.append(("moved", redirect, command[-1]))
                    continue
            if kind == "set":
                _, key, offset, length, rsp = command
                ticket = None
                if length <= KV_MAX_VALUE:
                    ticket = self._kv.submit(
                        "put", key, req_buf + offset, length
                    )
                    submitted += 1
                staged.append(
                    ("set", ticket, key, req_buf + offset, length, rsp)
                )
            elif kind == "del":
                # Journal unconditionally: whether the key exists can
                # only be decided once earlier staged SETs have applied,
                # and a tombstone for a missing key is harmless.
                key = command[1]
                ticket = self._kv.submit("delete", key)
                submitted += 1
                staged.append(("del", ticket, key, command[-1]))
            else:
                staged.append(command)
        # Wake-driven completion delivery: block until every journal
        # op submitted above has completed (one doorbell for the whole
        # pipeline) instead of forcing the flush and polling.
        if submitted:
            completions = yield from self._kv.wait_completions(submitted)
            done = {c.ticket: c for c in completions}
        else:
            done = {}
        for entry in staged:
            kind = entry[0]
            if kind == "set":
                _, ticket, key, value_addr, length, rsp = entry
                completion = done.get(ticket)
                if ticket is not None and (
                    completion is None or not completion.ok
                ):
                    reply_len = self._reply_error(resp_buf, rsp)
                else:
                    if ticket is not None:
                        self.kv_writes += 1
                        self._replicate_put(key, value_addr, length)
                    self._apply_set(key, value_addr, length)
                    reply_len = self._reply_ok(resp_buf, rsp)
            elif kind == "del":
                _, ticket, key, rsp = entry
                completion = done.get(ticket)
                if completion is None or not completion.ok:
                    reply_len = self._reply_error(resp_buf, rsp)
                else:
                    self.kv_writes += 1
                    self._replicate_delete(key)
                    removed = self._drop_key(key)
                    reply_len = self._reply_int(resp_buf, removed, rsp)
            elif kind == "moved":
                _, redirect, rsp = entry
                reply_len = self._reply_moved(resp_buf, redirect, rsp)
            else:
                reply_len = self._execute(entry, req_buf, resp_buf)
            self._send_reply(resp_buf, reply_len, sockfd)
        return consumed

    # --- commands ---------------------------------------------------------------

    @staticmethod
    def _parse_set(line: bytes) -> tuple[bytes, int] | None:
        parts = line.split()
        if len(parts) != 3:
            return None
        try:
            length = int(parts[2])
        except ValueError:
            return None
        if length < 0:
            return None
        return parts[1], length

    def _replicate_put(self, key: bytes, value_addr: int, length: int) -> None:
        """Mirror one journaled put to the follower (before the ack)."""
        if self.replicator is not None:
            data = self.machine.load(value_addr, length) if length else b""
            self.replicator.put(key, data)

    def _replicate_bytes(self, key: bytes, data: bytes) -> None:
        if self.replicator is not None:
            self.replicator.put(key, data)

    def _replicate_delete(self, key: bytes) -> None:
        if self.replicator is not None:
            self.replicator.delete(key)

    def _journal_post_image(self, key: bytes, data: bytes, resp_buf: int) -> None:
        """Journal (and replicate) a write's post-image as a SET record.

        The INCR/APPEND durability path: the computed value is staged
        through the response buffer (shared memory the storage
        compartment may read through the gate) and journaled before the
        command is acknowledged, so recovery replays it like a SET.
        """
        if self._kv is None or len(data) > KV_MAX_VALUE:
            return
        if data:
            self.machine.store(resp_buf, data)
        self._kv.call("put", key, resp_buf, len(data))
        self.kv_writes += 1
        self._replicate_bytes(key, data)

    def _do_set(self, key: bytes, value_addr: int, length: int) -> None:
        if self._kv is not None and length <= KV_MAX_VALUE:
            # AOF-style journal first: the value is still sitting in the
            # shared request buffer, so the storage compartment can read
            # it straight through the gate without another staging copy.
            # Journal-before-apply means an acknowledged SET is at least
            # as durable as the kv flush policy promises.
            self._kv.call("put", key, value_addr, length)
            self.kv_writes += 1
            self._replicate_put(key, value_addr, length)
        self._apply_set(key, value_addr, length)

    def _apply_set(self, key: bytes, value_addr: int, length: int) -> None:
        """In-memory half of SET: copy the value into the private heap."""
        old = self._store.pop(key, None)
        if old is not None:
            self._alloc.call("free", old[0])
        stored = self._alloc.call("malloc", max(1, length))
        if length:
            # The app copies from the shared request buffer into its
            # private heap itself (LibC may not write app memory).
            self.machine.copy(stored, value_addr, length)
        self._store[key] = (stored, length)
        self.sets += 1

    def _do_get(self, key: bytes, resp_buf: int, rsp: bool = False) -> int:
        self.gets += 1
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            return self._store_reply(resp_buf, b"$-1", rsp)
        addr, length = entry
        head = b"$%d\r\n" % length if rsp else b"$%d\n" % length
        self.machine.store(resp_buf, head)
        if length:
            self.machine.copy(resp_buf + len(head), addr, length)
        total = len(head) + length
        if rsp:
            self.machine.store(resp_buf + total, b"\r\n")
            total += 2
        return total

    def _drop_key(self, key: bytes) -> int:
        """Remove a key from the in-memory store; 1 if it existed."""
        entry = self._store.pop(key, None)
        if entry is None:
            return 0
        self._alloc.call("free", entry[0])
        return 1

    def _do_del(self, key: bytes, resp_buf: int, rsp: bool = False) -> int:
        entry = self._store.pop(key, None)
        if entry is not None:
            if self._kv is not None:
                self._kv.call("delete", key)
                self.kv_writes += 1
                self._replicate_delete(key)
            self._alloc.call("free", entry[0])
        return self._reply_int(resp_buf, 1 if entry is not None else 0, rsp)

    def _do_exists(self, key: bytes, resp_buf: int, rsp: bool = False) -> int:
        return self._reply_int(resp_buf, 1 if key in self._store else 0, rsp)

    def _do_incr(self, key: bytes, resp_buf: int, rsp: bool = False) -> int:
        entry = self._store.get(key)
        if entry is None:
            current = 0
        else:
            addr, length = entry
            raw = self.machine.load(addr, length) if length else b"0"
            try:
                current = int(raw)
            except ValueError:
                return self._reply_error(resp_buf, rsp)
        current += 1
        encoded = b"%d" % current
        # Durability: journal the post-image before applying or acking,
        # same contract as SET (an acked INCR survives crash→recover).
        self._journal_post_image(key, encoded, resp_buf)
        stored = self._alloc.call("malloc", len(encoded))
        self.machine.store(stored, encoded)
        if entry is not None:
            self._alloc.call("free", entry[0])
        self._store[key] = (stored, len(encoded))
        return self._reply_int(resp_buf, current, rsp)

    def _do_append(
        self,
        key: bytes,
        suffix_addr: int,
        suffix_len: int,
        resp_buf: int,
        rsp: bool = False,
    ) -> int:
        entry = self._store.get(key)
        old_len = entry[1] if entry is not None else 0
        total = old_len + suffix_len
        stored = self._alloc.call("malloc", max(1, total))
        if entry is not None:
            if old_len:
                self.machine.copy(stored, entry[0], old_len)
            self._alloc.call("free", entry[0])
        if suffix_len:
            self.machine.copy(stored + old_len, suffix_addr, suffix_len)
        self._store[key] = (stored, total)
        # Durability: journal the concatenated post-image as a SET
        # record (staged via the response buffer) before the ack.
        if self._kv is not None and total <= KV_MAX_VALUE:
            if total:
                self.machine.copy(resp_buf, stored, total)
            self._kv.call("put", key, resp_buf, total)
            self.kv_writes += 1
            if self.replicator is not None:
                self._replicate_bytes(
                    key, self.machine.load(stored, total) if total else b""
                )
        return self._reply_int(resp_buf, total, rsp)

    # --- reply framing ----------------------------------------------------

    def _store_reply(self, resp_buf: int, body: bytes, rsp: bool) -> int:
        reply = body + (b"\r\n" if rsp else b"\n")
        self.machine.store(resp_buf, reply)
        return len(reply)

    def _reply_ok(self, resp_buf: int, rsp: bool = False) -> int:
        return self._store_reply(resp_buf, b"+OK", rsp)

    def _reply_int(self, resp_buf: int, value: int, rsp: bool = False) -> int:
        return self._store_reply(resp_buf, b":%d" % value, rsp)

    def _reply_error(self, resp_buf: int, rsp: bool = False) -> int:
        self.errors += 1
        return self._store_reply(resp_buf, b"-ERR", rsp)

    def _reply_moved(
        self, resp_buf: int, redirect: tuple, rsp: bool = False
    ) -> int:
        slot, owner = redirect
        self.redirects += 1
        owner_bytes = owner.encode() if isinstance(owner, str) else owner
        return self._store_reply(
            resp_buf, b"-MOVED %d %s" % (slot, owner_bytes), rsp
        )

    # --- persistence (RDB-style dump over the vfs micro-library) ----------------------

    @export
    def save(self, path: str) -> int:
        """Dump the whole store to a file; returns the record count.

        Record format: ``klen(2B) key vlen(4B) value``, staged through
        a shared buffer because the filesystem compartment copies via
        LibC (the same shared-data annotation rule as socket I/O).
        """
        from repro.libos.fs.ramfs import O_CREAT, O_TRUNC, O_WRONLY

        vfs = self.stub("vfs")
        staging = self._alloc.call("malloc_shared", self.BUF_SIZE)
        fd = vfs.call("open", path, O_WRONLY | O_CREAT | O_TRUNC)
        records = 0
        try:
            for key, (addr, length) in sorted(self._store.items()):
                header = (
                    len(key).to_bytes(2, "big")
                    + key
                    + length.to_bytes(4, "big")
                )
                self.machine.store(staging, header)
                if length:
                    # App copies its private value into the shared
                    # staging area itself (confused-deputy rule).
                    self.machine.copy(staging + len(header), addr, length)
                vfs.call("write", fd, staging, len(header) + length)
                records += 1
        finally:
            vfs.call("close", fd)
            self._alloc.call("free_shared", staging)
        return records

    def _read_exact(self, vfs, fd: int, staging: int, count: int, context: str) -> bytes:
        """Read exactly ``count`` bytes or raise :class:`DumpTruncatedError`.

        ``vfs.read`` legitimately returns short at EOF; *mid-record*
        that means the dump was truncated or torn, and silently using
        the stale staging-buffer bytes would rebuild a corrupt store.
        """
        got = vfs.call("read", fd, staging, count)
        if got != count:
            raise DumpTruncatedError(context, expected=count, got=got)
        return self.machine.load(staging, count)

    @export
    def load(self, path: str) -> int:
        """Restore the store from a dump; returns the record count.

        A dump that ends cleanly between records is a normal EOF; one
        that ends *inside* a record raises :class:`DumpTruncatedError`
        (and the store keeps the records restored so far — callers
        decide whether a partial restore is acceptable).
        """
        from repro.libos.fs.ramfs import O_RDONLY

        vfs = self.stub("vfs")
        staging = self._alloc.call("malloc_shared", self.BUF_SIZE)
        fd = vfs.call("open", path, O_RDONLY)
        records = 0
        try:
            while True:
                got = vfs.call("read", fd, staging, 2)
                if got == 0:
                    break  # clean EOF on a record boundary
                if got != 2:
                    raise DumpTruncatedError(
                        "record header", expected=2, got=got
                    )
                key_len = int.from_bytes(self.machine.load(staging, 2), "big")
                raw = self._read_exact(
                    vfs, fd, staging, key_len + 4, "key + value length"
                )
                key = raw[:key_len]
                value_len = int.from_bytes(raw[key_len:], "big")
                stored = self._alloc.call("malloc", max(1, value_len))
                remaining = value_len
                copied = 0
                try:
                    while remaining > 0:
                        chunk = min(remaining, self.BUF_SIZE)
                        self._read_exact(
                            vfs, fd, staging, chunk, f"value of {key!r}"
                        )
                        self.machine.copy(stored + copied, staging, chunk)
                        copied += chunk
                        remaining -= chunk
                except DumpTruncatedError:
                    self._alloc.call("free", stored)
                    raise
                old = self._store.pop(key, None)
                if old is not None:
                    self._alloc.call("free", old[0])
                self._store[key] = (stored, value_len)
                records += 1
        finally:
            vfs.call("close", fd)
            self._alloc.call("free_shared", staging)
        return records

    # --- durability (AOF-style journal via the kv micro-library) -----------------------

    @export
    def recover(self) -> dict:
        """Replay the durable kv journal into the in-memory store.

        The boot path of a durable deployment: runs kv recovery (log
        scan / hint load, CRC-discarding torn records), then pulls every
        live key back into the private heap.  Returns the recovery
        report plus the number of keys restored.  A no-op (``durable:
        False``) when the image has no kv library.
        """
        if self._kv is None:
            return {"durable": False, "restored": 0}
        report = self._kv.call("recover")
        staging = self._alloc.call("malloc_shared", KV_MAX_VALUE)
        restored = 0
        try:
            for key in self._kv.call("kv_keys"):
                length = self._kv.call("get", key, staging)
                if length < 0:
                    continue  # raced with a tombstone; nothing to restore
                old = self._store.pop(key, None)
                if old is not None:
                    self._alloc.call("free", old[0])
                stored = self._alloc.call("malloc", max(1, length))
                if length:
                    self.machine.copy(stored, staging, length)
                self._store[key] = (stored, length)
                restored += 1
        finally:
            self._alloc.call("free_shared", staging)
        report = dict(report)
        report.update({"durable": True, "restored": restored})
        return report

    # --- exports ---------------------------------------------------------------------

    @export
    def redis_stats(self) -> dict[str, int]:
        """Command counters."""
        return {
            "sets": self.sets,
            "gets": self.gets,
            "misses": self.misses,
            "errors": self.errors,
            "responses": self.responses,
            "durable": self.durable,
            "kv_writes": self.kv_writes,
            "redirects": self.redirects,
        }

    @export
    def dbsize(self) -> int:
        """Number of stored keys."""
        return len(self._store)

    def value_of(self, key: bytes) -> bytes | None:
        """Test helper: read a stored value back out of simulated memory."""
        entry = self._store.get(key)
        if entry is None:
            return None
        if self.machine is None:
            raise GateError("redis not installed")
        addr, length = entry
        return self.machine.dma_read(
            self.compartment.address_space, addr, length
        )
