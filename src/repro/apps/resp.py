"""RESP2 wire framing (REdis Serialization Protocol, version 2).

The protocol external redis clients actually speak: a request is an
array of bulk strings (``*2\\r\\n$3\\r\\nGET\\r\\n$5\\r\\nhello\\r\\n``),
a reply is a simple string (``+OK``), error (``-ERR ...``), integer
(``:42``), bulk string (``$5\\r\\nhello``), null bulk (``$-1``), or an
array of replies.

Two consumers share this module:

- the **server** (:mod:`repro.apps.rediserver`) parses request arrays
  straight out of its shared receive buffer with :func:`parse_array` —
  offsets of every bulk argument inside the parsed buffer are returned
  alongside the bytes, so a SET value can be journaled zero-copy from
  the buffer it already sits in;
- **clients** (the workload generator, the cluster smart client, the
  framing tests) encode commands with :func:`encode_command` and parse
  reply streams incrementally with :class:`ReplyParser`.

Both sides are proper byte-stream parsers: a frame split at *any* byte
boundary across ``recv`` calls resumes cleanly, and pipelined bursts
parse into as many complete frames as the buffer holds.  Malformed or
oversized frames raise the typed :class:`RespError` instead of being
silently mangled — a protocol error is an observable event, not a
corrupt store.
"""

from __future__ import annotations

#: Default upper bound on one bulk string's declared length.  A frame
#: claiming more is rejected with :class:`RespError` before any bytes
#: are buffered for it (the classic unbounded-allocation DoS guard).
MAX_BULK = 64 * 1024
#: Upper bound on a request array's element count.
MAX_ARRAY = 128

CRLF = b"\r\n"
NULL_BULK = b"$-1\r\n"


class RespError(Exception):
    """Typed RESP protocol error (malformed or oversized frame)."""

    def __init__(self, message: str) -> None:
        self.message = message
        super().__init__(message)


# --- encoding ---------------------------------------------------------------


def _as_bytes(arg) -> bytes:
    if isinstance(arg, bytes):
        return arg
    if isinstance(arg, str):
        return arg.encode()
    if isinstance(arg, int):
        return b"%d" % arg
    raise TypeError(f"cannot encode {type(arg).__name__} as a bulk string")


def encode_command(*args) -> bytes:
    """One request: an array of bulk strings (bytes/str/int args)."""
    if not args:
        raise ValueError("a RESP command needs at least one argument")
    parts = [b"*%d\r\n" % len(args)]
    for arg in args:
        data = _as_bytes(arg)
        parts.append(b"$%d\r\n" % len(data))
        parts.append(data)
        parts.append(CRLF)
    return b"".join(parts)


def encode_simple(text: bytes) -> bytes:
    return b"+" + text + CRLF


def encode_error(text: bytes) -> bytes:
    return b"-" + text + CRLF


def encode_integer(value: int) -> bytes:
    return b":%d\r\n" % value


def encode_bulk(data: bytes | None) -> bytes:
    if data is None:
        return NULL_BULK
    return b"$%d\r\n" % len(data) + data + CRLF


# --- request parsing (server side) ------------------------------------------


def _parse_length(raw: bytes, pos: int, marker: int) -> tuple[int, int] | None:
    """Parse ``<marker><digits>\\r\\n`` at ``pos``; (value, next_pos).

    Returns ``None`` when the line is not complete yet; raises
    :class:`RespError` on a malformed header.
    """
    if pos >= len(raw):
        return None
    if raw[pos] != marker:
        raise RespError(
            f"expected {chr(marker)!r} header, got {raw[pos:pos + 1]!r}"
        )
    end = raw.find(CRLF, pos + 1)
    if end < 0:
        if len(raw) - pos > 32:
            # No terminator within any legal header length.
            raise RespError("unterminated length header")
        return None
    digits = raw[pos + 1 : end]
    body = digits[1:] if digits[:1] == b"-" else digits
    if not body or not body.isdigit():
        raise RespError(f"bad length header {digits!r}")
    return int(digits), end + 2


def parse_array(
    raw: bytes, pos: int = 0, max_bulk: int = MAX_BULK
) -> tuple[list[bytes], list[int], int] | None:
    """Parse one request array at ``pos`` of ``raw``.

    Returns ``(args, offsets, next_pos)`` where ``offsets[i]`` is the
    position of ``args[i]``'s first byte inside ``raw`` (for zero-copy
    consumers), or ``None`` when the frame is incomplete — feed more
    bytes and retry from the same ``pos``.  Raises :class:`RespError`
    on malformed frames and on bulk strings longer than ``max_bulk``.
    """
    head = _parse_length(raw, pos, ord("*"))
    if head is None:
        return None
    count, pos = head
    if count < 1 or count > MAX_ARRAY:
        raise RespError(f"bad array element count {count}")
    args: list[bytes] = []
    offsets: list[int] = []
    for _ in range(count):
        bulk = _parse_length(raw, pos, ord("$"))
        if bulk is None:
            return None
        length, pos = bulk
        if length < 0:
            raise RespError("null bulk string in a request")
        if length > max_bulk:
            raise RespError(f"bulk string of {length} bytes exceeds {max_bulk}")
        if pos + length + 2 > len(raw):
            return None  # bulk payload (or its CRLF) not fully received
        if raw[pos + length : pos + length + 2] != CRLF:
            raise RespError("bulk string not CRLF-terminated")
        args.append(raw[pos : pos + length])
        offsets.append(pos)
        pos += length + 2
    return args, offsets, pos


# --- reply parsing (client side) --------------------------------------------


class ErrorReply:
    """An ``-ERR ...`` reply, as a value (not raised: protocol data)."""

    __slots__ = ("message",)

    def __init__(self, message: bytes) -> None:
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ErrorReply({self.message!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, ErrorReply) and other.message == self.message

    def __hash__(self) -> int:
        return hash((ErrorReply, self.message))


def parse_reply(
    raw: bytes, pos: int = 0, max_bulk: int = MAX_BULK
) -> tuple[object, int] | None:
    """Parse one reply at ``pos``; ``(value, next_pos)`` or ``None``.

    Simple strings and bulk strings parse to ``bytes``, errors to
    :class:`ErrorReply`, integers to ``int``, null bulks to ``None``
    (wrapped in the tuple), arrays to ``list``.
    """
    if pos >= len(raw):
        return None
    marker = raw[pos]
    if marker in (ord("+"), ord("-")):
        end = raw.find(CRLF, pos + 1)
        if end < 0:
            return None
        line = raw[pos + 1 : end]
        value = ErrorReply(line) if marker == ord("-") else line
        return value, end + 2
    if marker == ord(":"):
        head = _parse_length(raw, pos, ord(":"))
        if head is None:
            return None
        return head
    if marker == ord("$"):
        head = _parse_length(raw, pos, ord("$"))
        if head is None:
            return None
        length, body = head
        if length == -1:
            return None, body
        if length < 0:
            raise RespError(f"bad bulk length {length}")
        if length > max_bulk:
            raise RespError(f"bulk reply of {length} bytes exceeds {max_bulk}")
        if body + length + 2 > len(raw):
            return None
        if raw[body + length : body + length + 2] != CRLF:
            raise RespError("bulk reply not CRLF-terminated")
        return raw[body : body + length], body + length + 2
    if marker == ord("*"):
        head = _parse_length(raw, pos, ord("*"))
        if head is None:
            return None
        count, cursor = head
        if count == -1:
            return None, cursor
        if count < 0:
            raise RespError(f"bad array count {count}")
        items = []
        for _ in range(count):
            parsed = parse_reply(raw, cursor, max_bulk)
            if parsed is None:
                return None
            value, cursor = parsed
            items.append(value)
        return items, cursor
    raise RespError(f"unknown reply marker {raw[pos:pos + 1]!r}")


class ReplyParser:
    """Incremental reply-stream parser (the client's receive side).

    Feed arbitrary byte chunks (packet payloads, single bytes); get
    back every reply completed so far.  State between feeds is just
    the unconsumed byte tail, so frames may split anywhere.
    """

    def __init__(self, max_bulk: int = MAX_BULK) -> None:
        self._buffer = b""
        self.max_bulk = max_bulk

    def feed(self, data: bytes) -> list[object]:
        self._buffer += data
        replies: list[object] = []
        pos = 0
        while True:
            parsed = parse_reply(self._buffer, pos, self.max_bulk)
            if parsed is None:
                break
            value, pos = parsed
            replies.append(value)
        self._buffer = self._buffer[pos:]
        return replies

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)
