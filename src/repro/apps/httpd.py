"""A static-file HTTP-style server (netstack + vfs composition).

A third application beyond the paper's two, exercising the crossing
topology the paper's motivation sketches (web server: network stack +
filesystem + application with different trust levels):

- requests: ``GET <path>\\n`` (one per packet, pipelining-capable);
- responses: ``200 <len>\\n<bytes>`` or ``404\\n``;
- file content is read from the ``vfs`` micro-library through gates,
  staged via shared buffers.

Per-request path: netstack → app parse → vfs open/read/close → netstack
send — three trust domains on every request when fully
compartmentalized.
"""

from __future__ import annotations

from typing import Generator

from repro.libos.library import MicroLibrary, export


class HttpdApp(MicroLibrary):
    """Minimal pipelining-capable static file server."""

    NAME = "httpd"
    SPEC = """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] netstack::listen, netstack::recv, netstack::send, \
vfs::open, vfs::read, vfs::close, vfs::stat, \
alloc::malloc_shared, alloc::free_shared
    [API] httpd_stats()
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": [
            "netstack::listen",
            "netstack::recv",
            "netstack::send",
            "vfs::open",
            "vfs::read",
            "vfs::close",
            "vfs::stat",
            "alloc::malloc_shared",
            "alloc::free_shared",
        ],
    }

    PORT = 8080
    BUF_SIZE = 4096

    def __init__(self) -> None:
        super().__init__()
        self._net = None
        self._vfs = None
        self._alloc = None
        self.hits = 0
        self.misses = 0
        self.bad_requests = 0
        self.bytes_served = 0
        self.running = False

    def on_boot(self) -> None:
        self._net = self.stub("netstack")
        self._vfs = self.stub("vfs")
        self._alloc = self.stub("alloc")

    def make_server(self, port: int | None = None):
        """Body factory for the server thread."""
        bind_port = port if port is not None else self.PORT

        def body() -> Generator:
            sockfd = self._net.call("listen", bind_port)
            req_buf = self._alloc.call("malloc_shared", self.BUF_SIZE)
            resp_buf = self._alloc.call("malloc_shared", self.BUF_SIZE)
            self.running = True
            pending = 0
            while True:
                count = yield from self._net.call_gen(
                    "recv", sockfd, req_buf + pending, self.BUF_SIZE - pending
                )
                if count == 0:
                    break
                total = pending + count
                raw = self.machine.load(req_buf, total)
                consumed = self._serve(raw, resp_buf, sockfd)
                if consumed < total:
                    self.machine.copy(req_buf, req_buf + consumed, total - consumed)
                pending = total - consumed
            self._alloc.call("free_shared", req_buf)
            self._alloc.call("free_shared", resp_buf)
            self.running = False

        return body

    def _serve(self, raw: bytes, resp_buf: int, sockfd: int) -> int:
        """Answer every complete request line in ``raw``."""
        from repro.machine.faults import GateError

        consumed = 0
        while True:
            newline = raw.find(b"\n", consumed)
            if newline < 0:
                break
            line = raw[consumed:newline]
            consumed = newline + 1
            if not line.startswith(b"GET "):
                self.bad_requests += 1
                self.machine.store(resp_buf, b"400\n")
                self._net.call("send", sockfd, resp_buf, 4)
                continue
            path = line[4:].strip().decode("ascii", "replace")
            try:
                fd = self._vfs.call("open", path)
            except GateError:
                self.misses += 1
                self.machine.store(resp_buf, b"404\n")
                self._net.call("send", sockfd, resp_buf, 4)
                continue
            size = self._vfs.call("fstat", fd)["size"]
            header = b"200 %d\n" % size
            self.machine.store(resp_buf, header)
            offset = len(header)
            remaining = size
            # Files larger than the staging buffer are streamed in
            # several sends.
            while True:
                chunk = min(remaining, self.BUF_SIZE - offset)
                got = self._vfs.call("read", fd, resp_buf + offset, chunk)
                self._net.call("send", sockfd, resp_buf, offset + got)
                self.bytes_served += got
                remaining -= got
                offset = 0
                if remaining <= 0:
                    break
            self._vfs.call("close", fd)
            self.hits += 1
        return consumed

    @export
    def httpd_stats(self) -> dict[str, int]:
        """Request counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bad_requests": self.bad_requests,
            "bytes_served": self.bytes_served,
        }
