"""Workload generators and measurement runners (the "client side").

The paper drives its servers with an external iperf client and
redis-benchmark; here the client is a pair of NIC callbacks that cost
the measured server nothing (see :mod:`repro.libos.net.nic`):

- :class:`IperfSource` — an open-loop bulk sender saturating the wire;
- :class:`ClosedLoopSource` — a pipelining request/response client with
  a bounded window, like redis-benchmark with pipelining.

Runners build the measurement around :class:`repro.perf.meter.Meter`
and return :class:`~repro.perf.meter.BenchResult` values.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.apps import resp
from repro.libos.net.packet import MSS, build_packet, unpack_header
from repro.perf.meter import BenchResult, Meter

if TYPE_CHECKING:
    from repro.core.image import Image


class IperfSource:
    """Open-loop byte-stream sender: the wire is never idle."""

    def __init__(self, port: int, total_bytes: int, chunk: int = MSS) -> None:
        if not 0 < chunk <= MSS:
            raise ValueError(f"chunk must be in (0, {MSS}]")
        self.port = port
        self.total_bytes = total_bytes
        self.chunk = chunk
        self.remaining = total_bytes
        self._seq = 0
        #: Payload bytes per size, built once: all but the final packet
        #: of a run share one size, so the fill pattern is reused
        #: instead of re-materialised per packet.
        self._payloads: dict[int, bytes] = {}

    def __call__(self) -> bytes | None:
        if self.remaining <= 0:
            return None
        size = min(self.chunk, self.remaining)
        self.remaining -= size
        payload = self._payloads.get(size)
        if payload is None:
            payload = self._payloads[size] = b"\x55" * size
        packet = build_packet(self.port, payload, seq=self._seq)
        self._seq += size
        return packet


class ClosedLoopSource:
    """Pipelining request/response client with a bounded window.

    ``source`` feeds the NIC rx pull; ``sink`` receives transmitted
    responses and opens window slots.  Responses are validated against
    ``expect_prefix`` when given.
    """

    def __init__(
        self,
        port: int,
        payloads: list[bytes],
        window: int = 4,
        expect_prefix: bytes | None = None,
        clock=None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        for payload in payloads:
            if len(payload) > MSS:
                raise ValueError("request payloads must fit one packet")
        self.port = port
        self.window = window
        self.expect_prefix = expect_prefix
        self._queue = deque(payloads)
        self.total = len(payloads)
        self.outstanding = 0
        self.responses = 0
        self.response_bytes = 0
        self.bad_responses = 0
        self.last_response = b""
        self._seq = 0
        #: Optional zero-arg callable returning simulated time; enables
        #: per-request latency tracking (FIFO request/response pairing).
        self._clock = clock
        self._inflight_sends: deque[float] = deque()
        #: Per-request simulated latencies (ns), FIFO-paired.
        self.latencies_ns: list[float] = []

    def source(self) -> bytes | None:
        """NIC rx callback: next request packet, or None (window full)."""
        if self.outstanding >= self.window or not self._queue:
            return None
        payload = self._queue.popleft()
        self.outstanding += 1
        if self._clock is not None:
            self._inflight_sends.append(self._clock())
        packet = build_packet(self.port, payload, seq=self._seq)
        self._seq += len(payload)
        return packet

    def sink(self, frame: bytes) -> None:
        """NIC tx callback: one response packet per request (≤ MSS)."""
        header = unpack_header(frame)
        payload = frame[16 : 16 + header.length]
        self.responses += 1
        self.response_bytes += len(payload)
        self.last_response = payload
        if self.expect_prefix is not None and not payload.startswith(
            self.expect_prefix
        ):
            self.bad_responses += 1
        if self._clock is not None and self._inflight_sends:
            self.latencies_ns.append(self._clock() - self._inflight_sends.popleft())
        self.outstanding = max(0, self.outstanding - 1)

    @property
    def done(self) -> bool:
        """All requests answered."""
        return self.responses >= self.total


def _switch_budget(units: int) -> int:
    """Generous context-switch cap so a wedged run fails fast."""
    return 200 * units + 20_000


def _wait_for_listener(image: "Image", port: int) -> None:
    """Run until the server thread has bound its port.

    A real client connects before sending; without this, the first
    wire packets would arrive before ``listen`` and be dropped.
    """
    netstack = image.lib("netstack")
    image.run(
        until=lambda: port in netstack._conns_by_port, max_switches=10_000
    )
    if port not in netstack._conns_by_port:
        raise RuntimeError(f"server never bound port {port}")


def run_iperf(
    image: "Image",
    buffer_size: int,
    total_bytes: int,
    label: str = "",
) -> BenchResult:
    """Measure iperf receive throughput for one buffer size.

    Spawns a fresh one-shot server thread on a fresh port, saturates
    the wire, and measures the simulated time to absorb
    ``total_bytes``.
    """
    app = image.lib("iperf")
    netstack = image.lib("netstack")
    port = app.next_port()
    image.spawn(
        f"iperf:{port}", app.make_server(port, buffer_size, total_bytes), app
    )
    _wait_for_listener(image, port)
    source = IperfSource(port, total_bytes)
    netstack.nic.rx_source = source
    segments = -(-total_bytes // MSS)
    with Meter(image.machine, label or f"iperf buf={buffer_size}") as meter:
        image.run(
            until=lambda: app.done,
            max_switches=_switch_budget(segments + total_bytes // buffer_size),
        )
    if not app.done:
        raise RuntimeError(
            f"iperf run did not complete: received {app.received} of "
            f"{total_bytes} bytes"
        )
    return meter.result(payload_bytes=total_bytes)


def start_redis(image: "Image", port: int | None = None):
    """Spawn the Redis server thread (idempotent per image)."""
    app = image.lib("redis")
    if app.running:
        return app
    bind_port = port if port is not None else app.PORT
    image.spawn("redis-server", app.make_server(port), app)
    _wait_for_listener(image, bind_port)
    return app


def make_set_payloads(
    count: int,
    value_size: int,
    keyspace: int | None = None,
    protocol: str = "resp",
) -> list[bytes]:
    """SET request payloads cycling over a bounded keyspace.

    ``protocol="resp"`` (default) encodes RESP2 arrays — the framing an
    external redis client speaks; ``protocol="text"`` keeps the legacy
    inline ``SET <key> <len>\\n<value>`` compat format.
    """
    keys = keyspace if keyspace is not None else count
    value = b"v" * value_size
    if protocol == "resp":
        return [
            resp.encode_command(b"SET", b"key%d" % (index % keys), value)
            for index in range(count)
        ]
    return [
        b"SET key%d %d\n" % (index % keys, value_size) + value
        for index in range(count)
    ]


def make_get_payloads(
    count: int, keyspace: int, protocol: str = "resp"
) -> list[bytes]:
    """GET request payloads cycling over a bounded keyspace."""
    if protocol == "resp":
        return [
            resp.encode_command(b"GET", b"key%d" % (index % keyspace))
            for index in range(count)
        ]
    return [b"GET key%d\n" % (index % keyspace) for index in range(count)]


def run_closed_loop(
    image: "Image",
    port: int,
    payloads: list[bytes],
    window: int = 4,
    label: str = "",
    expect_prefix: bytes | None = None,
) -> BenchResult:
    """Run one batch of request/response traffic against a server.

    Responses are counted per transmitted packet, so servers whose
    replies exceed one MSS (streamed responses) should be driven with
    requests that keep replies single-packet, or with a custom sink.
    """
    netstack = image.lib("netstack")
    source = ClosedLoopSource(
        port,
        payloads,
        window=window,
        expect_prefix=expect_prefix,
        clock=lambda: image.machine.cpu.clock_ns,
    )
    netstack.nic.rx_source = source.source
    netstack.nic.tx_sink = source.sink
    with Meter(image.machine, label or f"closed-loop x{len(payloads)}") as meter:
        image.run(
            until=lambda: source.done,
            max_switches=_switch_budget(len(payloads)),
        )
    if not source.done:
        raise RuntimeError(
            f"closed-loop phase stalled: {source.responses}/{source.total} "
            f"responses"
        )
    if source.bad_responses:
        raise RuntimeError(f"{source.bad_responses} malformed responses")
    return meter.result(
        payload_bytes=source.response_bytes,
        requests=source.total,
        latencies_ns=source.latencies_ns,
    )


def run_redis_phase(
    image: "Image",
    payloads: list[bytes],
    window: int = 4,
    label: str = "",
    expect_prefix: bytes | None = None,
) -> BenchResult:
    """Run one batch of requests against a started Redis server."""
    app = image.lib("redis")
    return run_closed_loop(
        image,
        app.PORT,
        payloads,
        window=window,
        label=label or f"redis x{len(payloads)}",
        expect_prefix=expect_prefix,
    )


def start_httpd(image: "Image", port: int | None = None):
    """Spawn the httpd server thread (idempotent per image)."""
    app = image.lib("httpd")
    if app.running:
        return app
    bind_port = port if port is not None else app.PORT
    image.spawn("httpd-server", app.make_server(port), app)
    _wait_for_listener(image, bind_port)
    return app


def _drive_iperf(image: "Image", params: dict) -> tuple[str, dict]:
    result = run_iperf(image, params["buffer_size"], params["total_bytes"])
    return (
        f"iperf: {result.throughput_mbps:.0f} Mb/s simulated",
        {
            "name": "iperf",
            "throughput_mbps": result.throughput_mbps,
            "payload_bytes": result.payload_bytes,
            "elapsed_ns": result.elapsed_ns,
        },
    )


def _drive_redis(image: "Image", params: dict) -> tuple[str, dict]:
    start_redis(image)
    run_redis_phase(
        image,
        make_set_payloads(
            params["sets"], params["value_size"], keyspace=params["keyspace"]
        ),
        window=params["window"],
        expect_prefix=b"+OK",
    )
    result = run_redis_phase(
        image,
        make_get_payloads(params["gets"], params["keyspace"]),
        window=params["window"],
        expect_prefix=b"$",
    )
    p50 = result.latency_percentile(0.5)
    p99 = result.latency_percentile(0.99)
    return (
        f"redis: {result.mreq_s:.3f} Mreq/s, p50 {p50:.0f} ns, "
        f"p99 {p99:.0f} ns",
        {
            "name": "redis",
            "mreq_s": result.mreq_s,
            "requests": result.requests,
            "elapsed_ns": result.elapsed_ns,
            "p50_ns": p50,
            "p99_ns": p99,
        },
    )


#: Named workload drivers: name → (default parameters, driver).  The
#: single registry behind ``tools/report.py``, ``tools/profile.py``,
#: and the profile benchmarks, so a profile captured by one tool
#: describes exactly the run another tool will repeat.
WORKLOADS: dict[str, tuple[dict, Callable[["Image", dict], tuple[str, dict]]]] = {
    "iperf": ({"buffer_size": 1024, "total_bytes": 1 << 18}, _drive_iperf),
    "redis": (
        {"sets": 64, "value_size": 50, "keyspace": 32, "gets": 300, "window": 8},
        _drive_redis,
    ),
}


def workload_params(name: str, overrides: dict | None = None) -> dict:
    """The named workload's full parameter dict, overrides applied."""
    if name not in WORKLOADS:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        )
    params = dict(WORKLOADS[name][0])
    for key, value in (overrides or {}).items():
        if key not in params:
            raise ValueError(
                f"workload {name!r} has no parameter {key!r}; "
                f"known: {sorted(params)}"
            )
        params[key] = value
    return params


def run_named_workload(
    image: "Image", name: str, params: dict | None = None
) -> tuple[str, dict]:
    """Drive the named workload; returns (one-line summary, numbers).

    ``params`` overrides the registered defaults (unknown keys are
    rejected).  Deterministic: the same image + name + params always
    produce the same simulated numbers.
    """
    defaults, driver = (
        WORKLOADS[name] if name in WORKLOADS else (None, None)
    )
    if driver is None:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        )
    return driver(image, workload_params(name, params))


def populate_files(image: "Image", files: dict[str, bytes]) -> None:
    """Create files in the image's vfs (host-side test/bench setup)."""
    from repro.libos.fs.ramfs import O_CREAT, O_TRUNC, O_WRONLY

    if not files:
        return
    staging = image.call(
        "alloc", "malloc_shared", max(64, max(len(v) for v in files.values()))
    )
    space = image.compartment_of("vfs").address_space
    for path, content in files.items():
        fd = image.call("vfs", "open", path, O_WRONLY | O_CREAT | O_TRUNC)
        if content:
            image.machine.dma_write(space, staging, content)
            image.call("vfs", "write", fd, staging, len(content))
        image.call("vfs", "close", fd)
    image.call("alloc", "free_shared", staging)
