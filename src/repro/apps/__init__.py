"""Applications: the paper's two evaluation workloads (iperf, Redis).

Importing this package registers the application micro-libraries with
the FlexOS builder registry, so ``BuildConfig(libraries=[...,"iperf"])``
just works.
"""

from repro.apps import resp
from repro.apps.httpd import HttpdApp
from repro.apps.iperf import IperfServerApp
from repro.apps.rediserver import RedisServerApp
from repro.apps.workload import (
    WORKLOADS,
    ClosedLoopSource,
    IperfSource,
    make_get_payloads,
    make_set_payloads,
    populate_files,
    run_closed_loop,
    run_iperf,
    run_named_workload,
    run_redis_phase,
    start_httpd,
    start_redis,
    workload_params,
)
from repro.core.builder import register_library

register_library("httpd", HttpdApp)
register_library("iperf", IperfServerApp)
register_library("redis", RedisServerApp)

__all__ = [
    "ClosedLoopSource",
    "HttpdApp",
    "IperfServerApp",
    "IperfSource",
    "RedisServerApp",
    "WORKLOADS",
    "make_get_payloads",
    "make_set_payloads",
    "populate_files",
    "resp",
    "run_closed_loop",
    "run_iperf",
    "run_named_workload",
    "run_redis_phase",
    "start_httpd",
    "start_redis",
    "workload_params",
]
