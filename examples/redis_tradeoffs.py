#!/usr/bin/env python3
"""Redis trust models and the design-space explorer (paper Figs. 4-5).

Part 1 replays the paper's four Redis compartmentalization models under
both MPK gate flavours and prints Figure-5-style slowdowns — including
the anomaly the paper highlights: co-locating the scheduler with the
network stack does not help, because the semaphores live in LibC.

Part 2 runs the automated design-space exploration the paper sketches
in §2: "given a set of safety requirements, find a compliant
instantiation that yields the best performance", with the performance
of each candidate measured by actually building and running it.

Run:  python examples/redis_tradeoffs.py
"""

from repro import BuildConfig, build_image
from repro.apps import (
    make_get_payloads,
    make_set_payloads,
    run_redis_phase,
    start_redis,
)
from repro.core import Explorer, library_defs, security_score

LIBRARIES = ["libc", "netstack", "redis"]
MODELS = {
    "No isolation": ("none", [["netstack", "sched", "alloc", "libc", "redis"]]),
    "NW only": ("mpk", [["netstack"], ["sched", "alloc", "libc", "redis"]]),
    "NW/Sched/Rest": (
        "mpk",
        [["netstack"], ["sched"], ["alloc", "libc", "redis"]],
    ),
    "NW+Sched/Rest": (
        "mpk",
        [["netstack", "sched"], ["alloc", "libc", "redis"]],
    ),
}


def measure(backend: str, groups, payload: int = 50, **kw) -> float:
    image = build_image(
        BuildConfig(
            libraries=LIBRARIES, compartments=groups, backend=backend, **kw
        )
    )
    start_redis(image)
    run_redis_phase(
        image,
        make_set_payloads(64, payload, keyspace=64),
        window=8,
        expect_prefix=b"+OK",
    )
    return run_redis_phase(
        image, make_get_payloads(300, 64), window=8, expect_prefix=b"$"
    ).mreq_s


def part_one() -> None:
    print("=== Redis GET throughput by trust model (50 B values) ===")
    base = measure("none", MODELS["No isolation"][1])
    print(f"{'No isolation':22s} {base:6.3f} Mreq/s")
    for label, (kind, groups) in MODELS.items():
        if kind != "mpk":
            continue
        for backend in ("mpk-shared", "mpk-switched"):
            value = measure(backend, groups)
            stacks = "shared" if backend.endswith("shared") else "switched"
            print(
                f"{label + ' (' + stacks + ')':22s} {value:6.3f} Mreq/s "
                f"({base / value:4.2f}x slower)"
            )
    print(
        "\nNote how NW+Sched/Rest is no faster than NW/Sched/Rest: the\n"
        "wait queues are used through semaphores implemented in LibC,\n"
        "which still lives in another compartment (paper Fig. 5).\n"
    )


def part_two() -> None:
    print("=== Automated exploration: cheapest safe deployment ===")
    config = BuildConfig(libraries=LIBRARIES)
    explorer = Explorer(library_defs(config))

    def measured_perf(deployment) -> float:
        groups = deployment.compartments
        hardening = {
            lib: techniques
            for lib, techniques in deployment.choices.items()
            if techniques
        }
        mreq = measure(
            "mpk-shared" if len(groups) > 1 else "none",
            groups,
            hardening=hardening,
        )
        return 1.0 / mreq  # lower is better

    requirements = ["no-wild-writes"]
    best = explorer.best_performance_meeting(
        requirements, perf_fn=measured_perf
    )
    print(f"requirements: {requirements}")
    print(f"candidates considered: {len(explorer.deployments)}")
    print(f"chosen deployment: {best.describe()}")
    print(f"security score: {security_score(best):.1f}")
    budgeted = explorer.max_security_within_budget(budget=10.0)
    print(f"\nmax security within analytic budget 10.0: {budgeted.describe()}")


if __name__ == "__main__":
    part_one()
    part_two()
