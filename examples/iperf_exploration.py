#!/usr/bin/env python3
"""Explore the iperf security/performance space (paper Figure 3).

Builds the same application against five isolation strategies — from
"no protection, maximum speed" to "every compartment in its own VM" —
and sweeps the recv buffer size, printing a Figure-3-style table.  Each
configuration is just "setting a few options and recompiling", FlexOS's
core promise.

Run:  python examples/iperf_exploration.py
"""

from repro import BuildConfig, build_image
from repro.apps import run_iperf

LIBRARIES = ["libc", "netstack", "iperf"]
FLAT = [["netstack", "sched", "alloc", "libc", "iperf"]]
ISOLATED = [["netstack"], ["sched", "alloc", "libc", "iperf"]]
SH_SUITE = ("asan", "ubsan", "stackprotector", "cfi")
BUFFER_SIZES = [2**p for p in range(6, 19, 2)]

CONFIGS = {
    "baseline (no isolation)": BuildConfig(
        libraries=LIBRARIES, compartments=FLAT, backend="none"
    ),
    "SH on netstack": BuildConfig(
        libraries=LIBRARIES,
        compartments=ISOLATED,
        backend="none",
        hardening={"netstack": SH_SUITE},
    ),
    "MPK shared stacks": BuildConfig(
        libraries=LIBRARIES, compartments=ISOLATED, backend="mpk-shared"
    ),
    "MPK switched stacks": BuildConfig(
        libraries=LIBRARIES, compartments=ISOLATED, backend="mpk-switched"
    ),
    "VM RPC (one VM per compartment)": BuildConfig(
        libraries=LIBRARIES, compartments=ISOLATED, backend="vm-rpc"
    ),
}


def main() -> None:
    header = "configuration".ljust(32) + "".join(
        f"{size:>9}" for size in BUFFER_SIZES
    )
    print(header)
    print("-" * len(header))
    baseline = None
    for label, config in CONFIGS.items():
        image = build_image(config)
        series = []
        for size in BUFFER_SIZES:
            total = max(1 << 19, 4 * size)
            series.append(run_iperf(image, size, total).throughput_mbps)
        print(
            label.ljust(32)
            + "".join(f"{value:9.0f}" for value in series)
        )
        if baseline is None:
            baseline = series
        else:
            ratios = "".join(
                f"{b / v:9.2f}" if v else "        -"
                for b, v in zip(baseline, series)
            )
            print("  slowdown vs baseline".ljust(32) + ratios)
    print(
        "\nShapes to notice (paper Fig. 3): MPK/SH cost 2-3x at small\n"
        "buffers and catch the baseline around 1 KiB; the VM backend\n"
        "needs ~32 KiB; everything converges at line rate."
    )


if __name__ == "__main__":
    main()
