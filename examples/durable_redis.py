#!/usr/bin/env python3
"""Durable redis: crash-consistent storage behind a compartment gate.

1. Build a redis image whose storage stack — a write-back block cache
   (``blk``) and a bitcask-style KV log (``kv``) — lives in its own
   compartment behind an MPK gate.
2. Serve SETs over the simulated wire; every acknowledged write is
   journaled into the KV log before the +OK goes out.
3. Pull the plug with unflushed writes in the block cache (seeded, so
   the torn sectors are reproducible).
4. Reboot onto the same disk medium and recover: every acknowledged
   write survives, torn tails are discarded by CRC.
5. Run a seeded crash-recovery campaign cell for the matrix view.

Run:  python examples/durable_redis.py
"""

import random

from repro import BuildConfig, build_image
from repro.apps import start_redis
from repro.apps.workload import run_redis_phase
from repro.libos.blk.blkdev import DiskMedium
from repro.resilience import default_recovery_plan, run_recovery_cell

LAYOUT = dict(
    libraries=["libc", "netstack", "blk", "kv", "redis"],
    compartments=[
        ["netstack"],                       # untrusted packet handling
        ["blk", "kv"],                      # the storage stack
        ["sched", "alloc", "libc", "redis"],  # the application core
    ],
    backend="mpk-shared",
)

# --- 1+2. A durable server takes writes --------------------------------------

medium = DiskMedium()  # host-side: survives the "machine" losing power

image = build_image(BuildConfig(**LAYOUT))
image.lib("blk").attach_medium(medium)
image.call("kv", "set_flush_policy", "every-write")
start_redis(image)

entries = {b"motd": b"welcome back", b"hits": b"1024", b"theme": b"dark"}
requests = [
    b"SET %s %d\n" % (key, len(value)) + value
    for key, value in entries.items()
]
run_redis_phase(image, requests, window=2, expect_prefix=b"+OK")

stats = image.call("redis", "redis_stats")
print(f"served {stats['sets']} SETs, journaled {stats['kv_writes']} "
      f"writes into the kv compartment (durable={stats['durable']})")

# --- 3. Power failure with dirty cache ---------------------------------------

image.call("kv", "set_flush_policy", "batch:1000")  # stop flushing
run_redis_phase(
    image, [b"SET doomed 4\nlost"], window=1, expect_prefix=b"+OK"
)
kv_stats = image.call("kv", "kv_stats")
pending = kv_stats["seq"] - kv_stats["durable_seq"]
report = image.lib("blk").crash(random.Random(7))
print(f"power failure: {pending} journaled write(s) had not reached the "
      f"medium ({report.dirty} dirty cache sectors, "
      f"{len(report.torn_sectors)} torn)")

# --- 4. Reboot and recover ---------------------------------------------------

rebooted = build_image(BuildConfig(**LAYOUT))
rebooted.lib("blk").attach_medium(medium)
recovery = rebooted.call("redis", "recover")
print(f"recovered {recovery['restored']} keys "
      f"({recovery['torn_discarded']} torn records discarded by CRC)")
for key, value in entries.items():
    assert rebooted.lib("redis").value_of(key) == value, key
assert rebooted.lib("redis").value_of(b"doomed") is None
print("every flushed write survived; the unflushed one is gone "
      "(exactly what batch mode trades away)")

start_redis(rebooted)
run_redis_phase(
    rebooted, [b"GET motd\n"], window=1, expect_prefix=b"$12\nwelcome back"
)
print("GET motd -> 'welcome back' (served from the recovered store)")

# --- 5. One campaign cell: torn write during flush ---------------------------

cell = run_recovery_cell(
    "mpk-shared",
    "blk-torn-write",
    default_recovery_plan("blk-torn-write", seed=5),
    sets=12,
)
print(f"campaign cell blk-torn-write/mpk-shared: verdict={cell['verdict']} "
      f"(acked={cell['acked']}, restored={cell['restored']})")
