#!/usr/bin/env python3
"""Quickstart: the paper's §2 worked example, end to end.

1. Write FlexOS metadata for two components — a verified scheduler and
   an unsafe C library — in the paper's DSL.
2. Let the compatibility analysis decide whether they may share a
   compartment (they may not).
3. Apply the SH metadata transformations: the hardened variant of the
   unsafe library *can* co-locate; graph coloring shrinks the image to
   one compartment.
4. Build and run an actual image under MPK isolation and watch a
   hijacked component get stopped by the protection keys.

Run:  python examples/quickstart.py
"""

from repro import BuildConfig, build_image
from repro.core import (
    can_share,
    enumerate_deployments,
    explain_conflict,
    parse_spec,
)
from repro.core.hardening import LibraryDef
from repro.machine.faults import ProtectionFault

# --- 1. Metadata in the paper's DSL ------------------------------------------

SCHEDULER_SPEC = parse_spec(
    "sched",
    """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] alloc::malloc, alloc::free
    [API] thread_add(); thread_rm(); yield_()
    [Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add), \
*(Call, thread_rm), *(Call, yield_)
    """,
)

UNSAFE_SPEC = parse_spec(
    "unsafe_c",
    """
    [Memory access] Read(*); Write(*)
    [Call] *
    """,
)

print("=== The scheduler's metadata ===")
print(SCHEDULER_SPEC.describe())
print()
print("=== The unsafe C component's metadata ===")
print(UNSAFE_SPEC.describe())

# --- 2. Pairwise compatibility ---------------------------------------------------

print("\n=== Can they share a compartment? ===")
print("can_share:", can_share(SCHEDULER_SPEC, UNSAFE_SPEC))
for violation in explain_conflict(SCHEDULER_SPEC, UNSAFE_SPEC):
    print("  -", violation)

# --- 3. SH transformations + coloring ----------------------------------------------

print("\n=== Enumerating deployments (SH variants × coloring) ===")
libdefs = [
    LibraryDef(name="sched", spec=SCHEDULER_SPEC),
    LibraryDef(
        name="unsafe_c",
        spec=UNSAFE_SPEC,
        true_behavior={
            "writes": ["Own", "Shared"],
            "reads": ["Own", "Shared"],
            "calls": ["sched::thread_add", "alloc::malloc"],
        },
    ),
]
for deployment in enumerate_deployments(libdefs):
    print(
        f"  {deployment.num_compartments} compartment(s):",
        deployment.describe(),
    )

# --- 4. Build a real image and attack it ---------------------------------------------

print("\n=== Building an MPK image: untrusted netstack isolated ===")
config = BuildConfig(
    libraries=["libc", "netstack", "iperf"],
    compartments=[["netstack"], ["sched", "alloc", "libc", "iperf"]],
    backend="mpk-shared",
)
image = build_image(config)
print(image.layout())

print("\n=== A hijacked netstack attacks the scheduler's memory ===")
victim = image.compartment_of("sched").alloc_region(64)
machine = image.machine
machine.cpu.push_context(image.compartment_of("sched").make_context())
machine.store(victim, b"scheduler state")
machine.cpu.pop_context()

machine.cpu.push_context(image.compartment_of("netstack").make_context("hijacked"))
try:
    machine.store(victim, b"pwned")
    print("!!! attack succeeded — this should not happen under MPK")
except ProtectionFault as fault:
    print(f"attack stopped by MPK: {fault}")
finally:
    machine.cpu.pop_context()

print("\n=== Same image still serves real traffic ===")
from repro.apps import run_iperf  # noqa: E402

result = run_iperf(image, buffer_size=4096, total_bytes=1 << 20)
print(
    f"iperf: {result.throughput_mbps:.0f} Mb/s simulated "
    f"({result.elapsed_ns / 1e6:.2f} simulated ms for 1 MiB)"
)
