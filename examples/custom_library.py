#!/usr/bin/env python3
"""Porting your own micro-library to FlexOS.

Walks through what a library author does once (paper §2: "such metadata
are created manually for each library by its developer, a one-time and
relatively low effort"):

1. implement the micro-library against the gate-friendly API (exports,
   stubs, shared-data annotations);
2. write its FlexOS metadata;
3. register it with the builder and link it into images under different
   isolation backends — without changing a line of its code;
4. watch hardening catch one of its bugs.

The example library is a tiny key/value cache with an intentional
off-by-one bug in one code path.

Run:  python examples/custom_library.py
"""

from repro import BuildConfig, build_image
from repro.core import register_library
from repro.libos.library import MicroLibrary, export
from repro.machine.faults import SHViolation


class CacheLibrary(MicroLibrary):
    """A tiny LRU-less cache storing fixed-size entries in its heap."""

    NAME = "cache"
    SPEC = """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] alloc::malloc, alloc::free
    [API] cache_put(key, addr, n); cache_get(key); cache_len()
    [Requires] *(Read,Own), *(Write,Shared), *(Call, cache_put), \
*(Call, cache_get), *(Call, cache_len)
    """
    TRUE_BEHAVIOR = {
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": ["alloc::malloc", "alloc::free"],
    }

    def __init__(self) -> None:
        super().__init__()
        self._entries: dict[str, tuple[int, int]] = {}
        self._alloc = None

    def on_boot(self) -> None:
        self._alloc = self.stub("alloc")

    @export
    def cache_put(self, key: str, addr: int, length: int) -> None:
        """Copy ``length`` bytes from shared memory into the cache."""
        stored = self._alloc.call("malloc", max(1, length))
        self.machine.copy(stored, addr, length)
        old = self._entries.pop(key, None)
        if old is not None:
            self._alloc.call("free", old[0])
        self._entries[key] = (stored, length)

    @export
    def cache_put_buggy(self, key: str, addr: int, length: int) -> None:
        """The same, with a classic off-by-one: copies length+1 bytes."""
        stored = self._alloc.call("malloc", max(1, length))
        self.machine.copy(stored, addr, length + 1)  # BUG
        self._entries[key] = (stored, length)

    @export
    def cache_get(self, key: str) -> bytes | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        addr, length = entry
        return self.machine.load(addr, length)

    @export
    def cache_len(self) -> int:
        return len(self._entries)


def main() -> None:
    register_library("cache", CacheLibrary)

    print("=== Same library, three isolation backends ===")
    for backend in ("none", "mpk-shared", "vm-rpc"):
        config = BuildConfig(
            libraries=["libc", "cache"],
            compartments=[["cache"], ["sched", "alloc", "libc"]],
            backend=backend,
        )
        image = build_image(config)
        staging = image.call("alloc", "malloc_shared", 64)
        machine = image.machine
        machine.cpu.push_context(image.compartment_of("libc").make_context())
        machine.store(staging, b"cached-value")
        stub = image.lib("libc").stub("cache")
        stub.call("cache_put", "greeting", staging, 12)
        value = stub.call("cache_get", "greeting")
        machine.cpu.pop_context()
        print(f"  backend {backend:11s}: cache_get -> {value!r}")

    print("\n=== ASAN catches the off-by-one in the hardened build ===")
    config = BuildConfig(
        libraries=["libc", "cache"],
        compartments=[["cache"], ["sched", "alloc", "libc"]],
        backend="none",
        hardening={"cache": ("asan",)},
    )
    image = build_image(config)
    staging = image.call("alloc", "malloc_shared", 64)
    machine = image.machine
    machine.cpu.push_context(image.compartment_of("libc").make_context())
    machine.store(staging, b"cached-value")
    stub = image.lib("libc").stub("cache")
    try:
        stub.call("cache_put_buggy", "oops", staging, 12)
        print("  !!! bug went undetected")
    except SHViolation as violation:
        print(f"  caught: {violation}")
    finally:
        machine.cpu.pop_context()

    print("\n=== And the metadata keeps it out of untrusted company ===")
    from repro.core import auto_compartments

    groups = auto_compartments(
        BuildConfig(libraries=["libc", "netstack", "cache"])
    )
    for index, group in enumerate(groups):
        print(f"  compartment {index}: {', '.join(group)}")


if __name__ == "__main__":
    main()
