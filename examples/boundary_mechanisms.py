#!/usr/bin/env python3
"""A tour of the paper's §5 mechanisms: guards, capabilities, inference.

The paper closes with open questions — "isolation alone is not enough"
(APIs need trust-boundary checks), hardware heterogeneity (CHERI-style
capabilities), and "who verifies the metadata?".  This example runs the
three answers this repo implements:

1. **API boundary guards**: the builder generates precondition and
   pointer-validation wrappers on cross-compartment calls only; a
   confused-deputy attempt is rejected before the callee runs.
2. **Capability backend**: under ``backend="cheri"`` a *private* buffer
   can legally cross the boundary as a bounded, auto-revoked
   delegation — something the MPK backend must forbid.
3. **Metadata inference**: a profiling run generates each library's
   metadata from its observed behaviour and cross-checks the
   developer-declared specs.

Run:  python examples/boundary_mechanisms.py
"""

from repro import BuildConfig, build_image
from repro.core.inference import profiling_image
from repro.machine.faults import BoundaryViolation, ProtectionFault

LIBS = ["libc", "netstack", "iperf"]
GROUPS = [["netstack"], ["sched", "alloc", "libc", "iperf"]]


def part_guards() -> None:
    print("=== 1. API boundary guards (api_guards=True) ===")
    image = build_image(
        BuildConfig(
            libraries=LIBS,
            compartments=GROUPS,
            backend="mpk-shared",
            api_guards=True,
        )
    )
    iperf = image.lib("iperf")
    private = image.compartment_of("iperf").alloc_region(64)
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        stub = iperf.stub("netstack")
        fd = stub.call("listen", 5555)
        print("  listen on a valid port: ok")
        try:
            stub.call("listen", 0)
        except BoundaryViolation as violation:
            print(f"  bad argument rejected at the boundary: {violation}")
        try:
            stub.call("send", fd, private, 16)
        except BoundaryViolation as violation:
            print(f"  confused deputy rejected: {violation}")
    finally:
        image.machine.cpu.pop_context()


def part_capabilities() -> None:
    print("\n=== 2. CHERI-style capability delegation (backend='cheri') ===")
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=GROUPS, backend="cheri")
    )
    iperf_comp = image.compartment_of("iperf")
    private = iperf_comp.alloc_region(64)
    machine = image.machine
    machine.cpu.push_context(iperf_comp.make_context("app"))
    try:
        machine.store(private, b"private bytes, delegated")
        stub = image.lib("iperf").stub("netstack")
        fd = stub.call("listen", 5556)
        frames = []
        image.lib("netstack").nic.tx_sink = frames.append
        stub.call("send", fd, private, 24)
        print(
            "  sent straight from app-PRIVATE memory via a bounded "
            f"capability: {frames[0][16:]!r}"
        )
    finally:
        machine.cpu.pop_context()
    # After the call returns, the delegation is revoked.
    machine.cpu.push_context(image.compartment_of("netstack").make_context())
    try:
        machine.load(private, 8)
        print("  !!! delegation leaked")
    except ProtectionFault as fault:
        print(f"  delegation revoked after return: {fault}")
    finally:
        machine.cpu.pop_context()


def part_inference() -> None:
    print("\n=== 3. Metadata inference from a profiling run ===")
    from repro.apps import run_iperf

    image, recorder = profiling_image(LIBS)
    run_iperf(image, 1024, 1 << 17)
    for name in ("netstack", "iperf"):
        observation = recorder.observed(name)
        print(f"--- inferred for {name} ---")
        print(observation.spec().describe())
        for finding in recorder.validate_declared(name):
            print(f"  {finding}")
    print(
        "\nThe inferred facts can seed TRUE_BEHAVIOR for the SH\n"
        "transformations — see repro.core.hardening."
    )


if __name__ == "__main__":
    part_guards()
    part_capabilities()
    part_inference()
