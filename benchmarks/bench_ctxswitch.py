"""§4 microbenchmark: context-switch latency, verified vs C scheduler.

Paper: "The context switch latency of our verified scheduler is
218.6ns, 3x slower than the C scheduler (76.6ns)."
"""

from __future__ import annotations

import pytest

from repro import BuildConfig, build_image
from repro.libos.sched.base import YIELD

SWITCHES = 10_000


def measure(scheduler: str) -> float:
    image = build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
            scheduler=scheduler,
        )
    )
    libc = image.lib("libc")

    def body():
        for _ in range(SWITCHES):
            yield YIELD

    image.spawn("ping", body, libc)
    image.spawn("pong", body, libc)
    start = image.clock_ns
    switches = image.run(max_switches=2 * SWITCHES)
    return (image.clock_ns - start) / switches


@pytest.mark.parametrize("scheduler,expected", [("coop", 76.6), ("verified", 218.6)])
def test_ctx_switch_latency(benchmark, report, scheduler, expected):
    latency = benchmark.pedantic(measure, args=(scheduler,), rounds=1, iterations=1)
    report.row(
        "Context switch microbenchmark",
        f"{scheduler:9s} scheduler: {latency:6.1f} ns/switch "
        f"(paper: {expected} ns)",
    )
    report.value("ctxswitch", scheduler, latency)
    benchmark.extra_info["ns_per_switch"] = latency
    assert latency == pytest.approx(expected, rel=0.02)


def test_verified_is_about_3x(benchmark, report):
    coop = benchmark.pedantic(measure, args=("coop",), rounds=1, iterations=1)
    verified = measure("verified")
    ratio = verified / coop
    assert 2.5 < ratio < 3.3  # paper: "3x slower"
    report.row(
        "Context switch microbenchmark",
        f"verified/C ratio: {ratio:.2f}x (paper: ~3x)",
    )
