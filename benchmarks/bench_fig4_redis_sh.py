"""Figure 4: Redis throughput under SH configs and the verified scheduler.

Paper setup: Redis SET/GET with SH enabled for the network stack,
comparing (1) one global allocator for the entire system against (2)
dedicated local allocators, plus the Dafny-verified scheduler against
the C scheduler.

Shape targets (paper): with a global allocator the netstack-SH
slowdown is ~1.45x; a local allocator reduces it to ~1.24x; the
verified scheduler's overhead over the C one stays below ~6%.
"""

from __future__ import annotations

import pytest

from repro import BuildConfig, build_image
from repro.apps import (
    make_get_payloads,
    make_set_payloads,
    run_redis_phase,
    start_redis,
)

LIBRARIES = ["libc", "netstack", "redis"]
COMPARTMENTS = [["netstack"], ["sched", "alloc", "libc", "redis"]]
SH_SUITE = ("asan", "ubsan", "stackprotector", "cfi")
PAYLOADS = (50, 500)
REQUESTS = 300
WINDOW = 8  # emulates redis-benchmark's multi-connection load

CONFIGS = {
    "No SH": {},
    "SH global alloc": {
        "hardening": {"netstack": SH_SUITE},
        "allocator_policy": "global",
    },
    "SH local alloc": {"hardening": {"netstack": SH_SUITE}},
    "Verified Sched": {"scheduler": "verified"},
}


def measure(overrides: dict, payload: int, op: str) -> float:
    image = build_image(
        BuildConfig(
            libraries=LIBRARIES,
            compartments=COMPARTMENTS,
            backend="none",
            **overrides,
        )
    )
    start_redis(image)
    run_redis_phase(
        image,
        make_set_payloads(64, payload, keyspace=64),
        window=WINDOW,
        expect_prefix=b"+OK",
    )
    if op == "SET":
        result = run_redis_phase(
            image,
            make_set_payloads(REQUESTS, payload, keyspace=64),
            window=WINDOW,
            expect_prefix=b"+OK",
        )
    else:
        result = run_redis_phase(
            image,
            make_get_payloads(REQUESTS, 64),
            window=WINDOW,
            expect_prefix=b"$",
        )
    return result.mreq_s


@pytest.mark.parametrize("label", list(CONFIGS))
def test_fig4_redis_sh(benchmark, report, label):
    def run() -> dict[str, float]:
        return {
            f"{op} {payload}B": measure(CONFIGS[label], payload, op)
            for payload in PAYLOADS
            for op in ("SET", "GET")
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    cells = "  ".join(f"{key}: {value:5.3f}" for key, value in series.items())
    report.row("Fig4 Redis SH configs (Mreq/s)", f"{label:16s} {cells}")
    report.value("fig4", label, series)
    benchmark.extra_info["mreq_s"] = series


def test_fig4_shape_claims(benchmark, report):
    """Allocator-placement and verified-scheduler claims."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    keys = [f"{op} {p}B" for p in PAYLOADS for op in ("SET", "GET")]
    base = {
        k: measure(CONFIGS["No SH"], int(k.split()[1][:-1]), k.split()[0])
        for k in keys
    }
    global_alloc = {
        k: measure(CONFIGS["SH global alloc"], int(k.split()[1][:-1]), k.split()[0])
        for k in keys
    }
    local_alloc = {
        k: measure(CONFIGS["SH local alloc"], int(k.split()[1][:-1]), k.split()[0])
        for k in keys
    }
    verified = {
        k: measure(CONFIGS["Verified Sched"], int(k.split()[1][:-1]), k.split()[0])
        for k in keys
    }

    mean = lambda d: sum(d.values()) / len(d)  # noqa: E731
    global_slowdown = mean(base) / mean(global_alloc)
    local_slowdown = mean(base) / mean(local_alloc)
    # "With a global allocator, the slowdown from running the network
    # stack with SH is on average 1.45x.  FlexOS' capacity to easily
    # setup a local allocator ... allows us to reduce that overhead to
    # a 1.24x slowdown."
    assert 1.2 < global_slowdown < 1.8
    assert 1.05 < local_slowdown < 1.35
    assert global_slowdown > local_slowdown + 0.1
    # "The verified scheduler's overhead over the C one is always below
    # 6% for Redis" (we allow a bit of slack; see EXPERIMENTS.md).
    for key in keys:
        assert base[key] / verified[key] < 1.12
    report.row(
        "Fig4 Redis SH configs (Mreq/s)",
        f"shape claims verified: global {global_slowdown:.2f}x > local "
        f"{local_slowdown:.2f}x; verified sched <~10% everywhere",
    )
    report.value(
        "fig4",
        "slowdowns",
        {"global": global_slowdown, "local": local_slowdown},
    )
