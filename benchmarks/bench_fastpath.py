"""Crossing-plan fast path: host wall-clock per gate crossing, fast vs slow.

Not a figure from the paper — the measurement behind ISSUE 9's
optimisation of the simulator's gate crossings.  The ``REPRO_GATEPLAN``
toggle (default on) selects between the per-edge compiled
:class:`~repro.gates.plan.CrossingPlan` and the original
interpret-every-call path; both must produce bit-identical simulated
clocks and counters, so the only thing allowed to differ is host time.
Three claims:

- **per-crossing microbenchmark** — a sync ``invoke`` on an
  ``mpk-shared`` channel at batch 1 must be at least **2x** cheaper in
  host wall-clock with the plan than without (the other backends and
  the batched queue point are reported alongside);
- **end-to-end figures** — fig3-style iperf (MPK shared), fig4-style
  redis under SH hardening, and fig5-style redis (MPK switched), timed
  under both toggles and compared against the wall times recorded in
  ``benchmarks/BENCH_machine.json`` by the simulation-core pass;
- **identity** (``--check``) — for every isolation profile
  (mpk-shared, mpk-switched, vm-rpc/EPT, CHERI, SH-asan, SH-dfi, and
  an mpk-shared deployment with a batched queue edge) the fast and
  slow runs produce bit-identical clocks, counter snapshots, and
  application numbers.

Results go to ``benchmarks/BENCH_fastpath.json`` and the trajectory is
recorded in ``benchmarks/results.json``.  Runs standalone:

    PYTHONPATH=src python benchmarks/bench_fastpath.py --smoke --check
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import pathlib
import time

from repro import BuildConfig, build_image
from repro.apps import (
    make_get_payloads,
    make_set_payloads,
    run_iperf,
    run_redis_phase,
    start_redis,
)
from repro.gates import GateOptions, make_channel
from repro.libos.compartment import Compartment
from repro.libos.library import Linker, MicroLibrary, export
from repro.machine.capabilities import base_capabilities
from repro.machine.machine import Machine
from repro.machine.mpk import pkru_for_keys

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_fastpath.json"
MACHINE_JSON = pathlib.Path(__file__).parent / "BENCH_machine.json"
RESULTS_JSON = pathlib.Path(__file__).parent / "results.json"

#: Required per-crossing speedup on mpk-shared at batch 1 (ISSUE 9).
CROSSING_FLOOR = 2.0
#: Required end-to-end fast-vs-slow speedup on the gate-heavy figures
#: (full runs only; smoke runs are too short to time reliably).
E2E_FLOOR = 1.02

IPERF_LIBS = ["libc", "netstack", "iperf"]
REDIS_LIBS = ["libc", "netstack", "redis"]
IPERF_COMPARTMENTS = [["netstack"], ["sched", "alloc", "libc", "iperf"]]
REDIS_COMPARTMENTS = [["netstack"], ["sched", "alloc", "libc", "redis"]]
SH_SUITE = ("asan", "ubsan", "stackprotector", "cfi")


@contextlib.contextmanager
def _gateplan(enabled: bool):
    """Scope the crossing-plan toggle for images built inside the block."""
    saved = os.environ.get("REPRO_GATEPLAN")
    os.environ["REPRO_GATEPLAN"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if saved is None:
            del os.environ["REPRO_GATEPLAN"]
        else:
            os.environ["REPRO_GATEPLAN"] = saved


# --- per-crossing microbenchmark ---------------------------------------------


class _Service(MicroLibrary):
    NAME = "svc"
    SPEC = "[Memory access] Read(Own); Write(Own)"

    @export
    def echo(self, value):
        return value


class _Caller(MicroLibrary):
    NAME = "caller"
    SPEC = "[Memory access] Read(Own); Write(Own)"


def _bench_world(backend: str, gateplan: bool):
    machine = Machine(gateplan=gateplan)
    linker = Linker()
    comp_a = Compartment(0, "svc-comp", machine)
    comp_b = Compartment(1, "caller-comp", machine)
    if backend == "vm-rpc":
        domain_a = machine.new_vm_domain("svc")
        comp_a.vm_domain = domain_a
        comp_a.address_space = domain_a.space
        domain_b = machine.new_vm_domain("caller")
        comp_b.vm_domain = domain_b
        comp_b.address_space = domain_b.space
    else:
        space = machine.new_address_space("main")
        comp_a.address_space = space
        comp_a.pkey = 1
        comp_a.pkru_value = pkru_for_keys(writable=[1, 14])
        comp_b.address_space = space
        comp_b.pkey = 2
        comp_b.pkru_value = pkru_for_keys(writable=[2, 14])
    if backend == "cheri":
        comp_a.capabilities = base_capabilities(comp_a, [])
        comp_b.capabilities = base_capabilities(comp_b, [])
    service = _Service()
    caller = _Caller()
    service.install(machine, comp_a, linker)
    caller.install(machine, comp_b, linker)
    return machine, service, caller


def _sync_run(backend: str, gateplan: bool, iterations: int):
    """Time ``iterations`` sync invokes; returns (wall_s, observables)."""
    machine, service, caller = _bench_world(backend, gateplan)
    channel = make_channel(backend, machine, caller, service)
    machine.cpu.push_context(caller.compartment.make_context("bench"))
    channel.invoke("echo", (0,))  # warm the plan / caches
    start = time.perf_counter()
    for index in range(iterations):
        channel.invoke("echo", (index,))
    wall = time.perf_counter() - start
    observables = (
        machine.cpu.clock_ns,
        tuple(sorted(machine.cpu.snapshot().items())),
    )
    return wall, observables, machine.fastpath_stats()["gateplan"]


def _queue_run(backend: str, gateplan: bool, iterations: int, batch: int):
    """Time batched submissions through a queue channel."""
    machine, service, caller = _bench_world(backend, gateplan)
    channel = make_channel(
        f"queue:{backend}",
        machine,
        caller,
        service,
        options=GateOptions(queue_batch=batch, queue_depth=max(batch, 64)),
    )
    machine.cpu.push_context(caller.compartment.make_context("bench"))
    start = time.perf_counter()
    for index in range(iterations):
        channel.submit("echo", index)
    channel.flush()
    channel.poll()
    wall = time.perf_counter() - start
    observables = (
        machine.cpu.clock_ns,
        tuple(sorted(machine.cpu.snapshot().items())),
    )
    return wall, observables, machine.fastpath_stats()["gateplan"]


def micro_matrix(smoke: bool) -> list[dict]:
    """Fast-vs-slow wall clock per backend, identical observables."""
    iterations = 4000 if smoke else 20000
    cells = []
    points = [
        ("mpk-shared", "sync", 1),
        ("mpk-switched", "sync", 1),
        ("vm-rpc", "sync", 1),
        ("cheri", "sync", 1),
        ("mpk-shared", "queue", 16),
    ]
    for backend, mode, batch in points:
        fast_wall = slow_wall = None
        stats = None
        for _ in range(3):  # best-of-3 against host noise
            if mode == "sync":
                wall_f, obs_f, stats = _sync_run(backend, True, iterations)
                wall_s, obs_s, _ = _sync_run(backend, False, iterations)
            else:
                wall_f, obs_f, stats = _queue_run(
                    backend, True, iterations, batch
                )
                wall_s, obs_s, _ = _queue_run(
                    backend, False, iterations, batch
                )
            assert obs_f == obs_s, f"observables diverged on {backend}/{mode}"
            fast_wall = wall_f if fast_wall is None else min(fast_wall, wall_f)
            slow_wall = wall_s if slow_wall is None else min(slow_wall, wall_s)
        cells.append({
            "backend": backend,
            "mode": mode,
            "batch": batch,
            "iterations": iterations,
            "fast_wall_s": fast_wall,
            "slow_wall_s": slow_wall,
            "speedup": slow_wall / fast_wall,
            "fast_us_per_crossing": fast_wall / iterations * 1e6,
            "slow_us_per_crossing": slow_wall / iterations * 1e6,
            "plan_hits": stats["plan_hits"],
        })
    return cells


# --- end-to-end figure workloads ---------------------------------------------


def _fig3_config() -> BuildConfig:
    return BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="mpk-shared",
    )


def _fig4_config() -> BuildConfig:
    return BuildConfig(
        libraries=REDIS_LIBS, compartments=REDIS_COMPARTMENTS,
        backend="none", hardening={"netstack": SH_SUITE},
    )


def _fig5_config() -> BuildConfig:
    return BuildConfig(
        libraries=REDIS_LIBS, compartments=REDIS_COMPARTMENTS,
        backend="mpk-switched",
    )


def _drive_iperf(image, smoke: bool) -> dict:
    total = 1 << 17 if smoke else 1 << 20
    result = run_iperf(image, 4096, total)
    return {"throughput_mbps": result.throughput_mbps,
            "elapsed_ns": result.elapsed_ns}


def _drive_redis(image, smoke: bool) -> dict:
    requests = 100 if smoke else 600
    start_redis(image)
    run_redis_phase(
        image, make_set_payloads(64, 500, keyspace=64),
        window=8, expect_prefix=b"+OK",
    )
    result = run_redis_phase(
        image, make_get_payloads(requests, keyspace=64), window=8,
    )
    return {"throughput_mbps": result.throughput_mbps,
            "elapsed_ns": result.elapsed_ns}


#: Keys match BENCH_machine.json's end_to_end cells so the two passes'
#: wall clocks can be compared run-over-run.
E2E_WORKLOADS = {
    "fig3_iperf_mpk_shared": (_fig3_config, _drive_iperf, True),
    "fig4_redis_sh": (_fig4_config, _drive_redis, False),
    "fig5_redis_mpk_switched": (_fig5_config, _drive_redis, True),
}


def _e2e_once(config_factory, driver, fast: bool, smoke: bool):
    with _gateplan(fast):
        image = build_image(config_factory())
    start = time.perf_counter()
    numbers = driver(image, smoke)
    wall = time.perf_counter() - start
    snapshot = image.machine.cpu.snapshot()
    counters = dict(image.machine.cpu.metrics.counters)
    return wall, numbers, snapshot, counters, image.machine.fastpath_stats()


def _machine_baseline() -> dict:
    """fig3/4/5 wall clocks recorded by the simulation-core pass."""
    if not MACHINE_JSON.exists():
        return {}
    data = json.loads(MACHINE_JSON.read_text())
    return {
        cell["workload"]: cell["fast_wall_s"]
        for cell in data.get("end_to_end", [])
    }


def e2e_matrix(smoke: bool) -> list[dict]:
    baseline = _machine_baseline()
    cells = []
    for name, (config_factory, driver, gate_heavy) in E2E_WORKLOADS.items():
        fast_wall = slow_wall = None
        stats = None
        rounds = 1 if smoke else 3
        for _ in range(rounds):
            wall_f, numbers_f, snap_f, counters_f, stats = _e2e_once(
                config_factory, driver, True, smoke
            )
            wall_s, numbers_s, snap_s, counters_s, _ = _e2e_once(
                config_factory, driver, False, smoke
            )
            # The toggle must be invisible in simulation.
            assert numbers_f == numbers_s, f"{name}: workload numbers diverged"
            assert snap_f == snap_s, f"{name}: counter snapshot diverged"
            assert counters_f == counters_s, f"{name}: metrics diverged"
            fast_wall = wall_f if fast_wall is None else min(fast_wall, wall_f)
            slow_wall = wall_s if slow_wall is None else min(slow_wall, wall_s)
        plan = stats["gateplan"]
        cells.append({
            "workload": name,
            "gate_heavy": gate_heavy,
            "fast_wall_s": fast_wall,
            "slow_wall_s": slow_wall,
            "speedup": slow_wall / fast_wall,
            "simulated": numbers_f,
            "plan_hits": plan["plan_hits"],
            "plan_refreshes": plan["plan_refreshes"],
            # Wall clock the simulation-core bench recorded for the same
            # workload (its fast path on, this PR's plans absent) — the
            # pre-PR baseline the figures must beat on full runs.
            "machine_baseline_wall_s": baseline.get(name),
        })
    return cells


# --- bit-identity check across isolation profiles ----------------------------


CHECK_PROFILES = {
    "mpk-shared": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="mpk-shared",
    ),
    "mpk-switched": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="mpk-switched",
    ),
    "vm-rpc": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="vm-rpc",
    ),
    "cheri": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="cheri",
    ),
    "sh-asan": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="mpk-shared", hardening={"netstack": ("asan",)},
    ),
    "sh-dfi": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="mpk-shared", hardening={"netstack": ("dfi",)},
    ),
    # Exercises the queue + wake-driven completion path under the toggle.
    "mpk-shared+queue": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="mpk-shared", queue_edges={"iperf->netstack": "batch:8"},
    ),
}


def check_profiles(smoke: bool) -> list[dict]:
    """Fast vs slow bit-identity for every isolation profile."""
    verdicts = []
    for name, config_factory in CHECK_PROFILES.items():
        _, numbers_f, snap_f, counters_f, stats = _e2e_once(
            config_factory, _drive_iperf, True, smoke
        )
        _, numbers_s, snap_s, counters_s, _ = _e2e_once(
            config_factory, _drive_iperf, False, smoke
        )
        assert numbers_f == numbers_s, f"{name}: workload numbers diverged"
        assert snap_f == snap_s, f"{name}: counter snapshot diverged"
        assert counters_f == counters_s, f"{name}: metrics diverged"
        assert snap_f["clock_ns"] == snap_s["clock_ns"]
        verdicts.append({
            "profile": name,
            "identical": True,
            "clock_ns": snap_f["clock_ns"],
            "plan_hits": stats["gateplan"]["plan_hits"],
        })
    return verdicts


# --- orchestration -----------------------------------------------------------


def run(smoke: bool, check: bool) -> dict:
    micro = micro_matrix(smoke)
    e2e = e2e_matrix(smoke)
    payload = {
        "smoke": smoke,
        "per_crossing": micro,
        "end_to_end": e2e,
        "identity_checks": check_profiles(smoke) if check else None,
    }
    _check(payload)
    return payload


def _check(payload: dict) -> None:
    """The claims the numbers must support."""
    micro = payload["per_crossing"]
    # Every sync backend must win; the headline mpk-shared batch-1
    # point must clear the 2x floor.
    for cell in micro:
        if cell["mode"] == "sync":
            assert cell["speedup"] > 1.0, (
                f"fast path slower on {cell['backend']}: "
                f"{cell['speedup']:.2f}x"
            )
        assert cell["plan_hits"] > 0, f"{cell['backend']}: plan never hit"
    headline = next(
        cell for cell in micro
        if cell["backend"] == "mpk-shared" and cell["mode"] == "sync"
    )
    assert headline["speedup"] >= CROSSING_FLOOR, (
        f"mpk-shared per-crossing speedup {headline['speedup']:.2f}x "
        f"< required {CROSSING_FLOOR}x"
    )
    # End-to-end: the plans must actually move the gate-heavy figures
    # (full runs only; smoke runs are too short to time meaningfully).
    if not payload["smoke"]:
        for cell in payload["end_to_end"]:
            if not cell["gate_heavy"]:
                continue
            assert cell["speedup"] >= E2E_FLOOR, (
                f"{cell['workload']}: speedup {cell['speedup']:.2f}x "
                f"< required {E2E_FLOOR}x"
            )
    # The plans are actually doing the work on the gate-heavy figures.
    for cell in payload["end_to_end"]:
        if cell["gate_heavy"]:
            assert cell["plan_hits"] > 0, cell["workload"]


def _record_trajectory(payload: dict) -> None:
    """Append the headline numbers to benchmarks/results.json."""
    data = {}
    if RESULTS_JSON.exists():
        data = json.loads(RESULTS_JSON.read_text())
    headline = next(
        cell for cell in payload["per_crossing"]
        if cell["backend"] == "mpk-shared" and cell["mode"] == "sync"
    )
    data["Crossing-plan fast path"] = {
        "smoke": payload["smoke"],
        "per_crossing_mpk_shared_speedup": round(headline["speedup"], 2),
        "per_crossing": {
            f"{cell['backend']}/{cell['mode']}": round(cell["speedup"], 2)
            for cell in payload["per_crossing"]
        },
        "end_to_end": {
            cell["workload"]: {
                "speedup": round(cell["speedup"], 2),
                "plan_hits": cell["plan_hits"],
            }
            for cell in payload["end_to_end"]
        },
        "identity_profiles_checked": [
            verdict["profile"]
            for verdict in payload["identity_checks"] or []
        ],
    }
    RESULTS_JSON.write_text(json.dumps(data, indent=2, sort_keys=True))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes for CI (same matrix shape, same identity "
        "assertions, no end-to-end wall-clock floor)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="also verify fast-vs-slow bit-identity across all "
        "isolation profiles (mpk/ept/cheri/sh/queue)",
    )
    parser.add_argument("--json", default=str(BENCH_JSON))
    options = parser.parse_args(argv)
    payload = run(smoke=options.smoke, check=options.check)
    pathlib.Path(options.json).write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )
    _record_trajectory(payload)
    for cell in payload["per_crossing"]:
        print(
            f"crossing {cell['backend']:14s} {cell['mode']:5s} "
            f"fast {cell['fast_us_per_crossing']:8.3f} us  "
            f"slow {cell['slow_us_per_crossing']:8.3f} us  "
            f"{cell['speedup']:5.2f}x"
        )
    for cell in payload["end_to_end"]:
        baseline = cell["machine_baseline_wall_s"]
        versus = (
            f"  vs core-pass {baseline:.3f}s" if baseline is not None else ""
        )
        print(
            f"e2e  {cell['workload']:26s} {cell['speedup']:5.2f}x  "
            f"(plan hits {cell['plan_hits']}){versus}"
        )
    if payload["identity_checks"]:
        profiles = ", ".join(
            verdict["profile"] for verdict in payload["identity_checks"]
        )
        print(f"identity verified (clock, counters, app numbers): {profiles}")
    print(f"wrote {options.json}")
    return 0


# --- pytest entry points (same helpers, bench-suite reporting) ---------------


def test_crossing_fastpath_microbench(report):
    micro = micro_matrix(smoke=True)
    for cell in micro:
        report.row(
            "Crossing fast path (us/crossing, host)",
            f"{cell['backend']:14s} {cell['mode']:5s} "
            f"fast={cell['fast_us_per_crossing']:8.3f} "
            f"slow={cell['slow_us_per_crossing']:8.3f} "
            f"{cell['speedup']:5.2f}x",
        )
        report.value(
            "fastpath", f"crossing/{cell['backend']}/{cell['mode']}",
            cell["speedup"],
        )
    headline = next(
        cell for cell in micro
        if cell["backend"] == "mpk-shared" and cell["mode"] == "sync"
    )
    assert headline["speedup"] >= CROSSING_FLOOR


def test_crossing_fastpath_identity(report):
    verdicts = check_profiles(smoke=True)
    for verdict in verdicts:
        report.row(
            "Crossing fast path identity",
            f"{verdict['profile']:20s} clock={verdict['clock_ns']:.0f}ns "
            f"plan_hits={verdict['plan_hits']}",
        )
    assert all(verdict["identical"] for verdict in verdicts)


if __name__ == "__main__":
    raise SystemExit(main())
