"""Resilience benchmark: containment rate and recovery latency.

Not a figure from the paper, but a measurement of the claim behind all
of them: the isolation backends differ in *what a compartment failure
can do*, not just in crossing cost.  A seeded fault-injection campaign
(see :mod:`repro.resilience`) runs the iperf workload while injecting
faults at every site the harness knows, per backend, and measures:

- **containment rate** — the fraction of triggered faults stopped at a
  compartment boundary (contained or recovered);
- **recovery latency** — simulated ns from first failure to workload
  completion for cells that recovered via restart/retry.

The headline assertions: every hardware-isolation backend
(mpk-shared, mpk-switched, vm-rpc, cheri) contains a cross-compartment
wild write that backend ``none`` lets corrupt the victim silently, and
the VM backend recovers dropped notifications through gate-level
retry/backoff.  Results go to ``benchmarks/BENCH_resilience.json``.
"""

from __future__ import annotations

import json
import pathlib

from repro.resilience import run_campaign

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_resilience.json"

BACKENDS = ("none", "mpk-shared", "mpk-switched", "vm-rpc", "cheri")
SITES = ("gate-crash", "wild-write", "alloc-exhaustion", "sched-kill", "vm-drop")
ISOLATING = ("mpk-shared", "mpk-switched", "vm-rpc", "cheri")
SEED = 7


def test_containment_matrix(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_campaign(
            backends=BACKENDS, sites=SITES, schedules=2, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )
    matrix = result.matrix()

    # The headline claim: isolation contains the wild write, "none"
    # lets it silently corrupt the victim compartment.
    assert matrix["wild-write"]["none"] == "propagated"
    for backend in ISOLATING:
        assert matrix["wild-write"][backend] in ("contained", "recovered"), (
            backend,
            matrix["wild-write"][backend],
        )
    # Transient VM-RPC faults are absorbed by the gate's retry/backoff.
    assert matrix["vm-drop"]["vm-rpc"] == "recovered"
    retried = [
        cell
        for cell in result.cells
        if cell["backend"] == "vm-rpc" and cell["site"] == "vm-drop"
    ]
    assert any(cell["vm_rpc_retries"] > 0 for cell in retried)

    rates = {backend: result.containment_rate(backend) for backend in BACKENDS}
    latencies = {
        backend: result.recovery_latencies(backend) for backend in BACKENDS
    }
    mean_recovery = {
        backend: (sum(values) / len(values) if values else None)
        for backend, values in latencies.items()
    }
    assert rates["none"] < 1.0
    for backend in ISOLATING:
        assert rates[backend] == 1.0

    payload = {
        "seed": SEED,
        "schedules": 2,
        "policy": result.policy,
        "matrix": matrix,
        "containment_rate": rates,
        "mean_recovery_ns": mean_recovery,
        "recovery_ns": latencies,
        "cells": [
            {
                key: cell[key]
                for key in (
                    "backend",
                    "site",
                    "seed",
                    "outcome",
                    "attempts",
                    "injected",
                    "restarts",
                    "vm_rpc_retries",
                    "recovery_ns",
                )
            }
            for cell in result.cells
        ],
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True))

    for site in SITES:
        row = matrix[site]
        report.row(
            "resilience",
            f"{site:18s} " + "  ".join(
                f"{backend}={row.get(backend, '-')}" for backend in BACKENDS
            ),
        )
    report.row(
        "resilience",
        "containment rate: "
        + "  ".join(f"{b}={rates[b]:.0%}" for b in BACKENDS),
    )
    for backend, mean in mean_recovery.items():
        if mean is not None:
            report.row(
                "resilience",
                f"mean recovery {backend}: {mean / 1e3:.1f} us simulated",
            )
    report.value("resilience", "containment_rate", rates)
    report.value("resilience", "mean_recovery_ns", mean_recovery)


def test_same_seed_identical_matrix(report):
    """Determinism acceptance: the campaign is a pure function of seed."""
    kwargs = dict(
        backends=("none", "vm-rpc"),
        sites=("wild-write", "vm-drop"),
        schedules=2,
        seed=SEED,
    )
    first = run_campaign(**kwargs)
    second = run_campaign(**kwargs)
    assert first.matrix() == second.matrix()
    assert [c["outcome"] for c in first.cells] == [
        c["outcome"] for c in second.cells
    ]
    report.row("resilience", "same seed -> identical matrix: ok")
