"""Queue-channel benchmark: batched doorbells vs per-op gate crossings.

Measures the tentpole claim of the submission/completion-queue channels:
enqueueing operations into a shared ring and ringing the doorbell once
per batch amortises the per-crossing tax of isolation without changing
what the operations do.

- **kv.put**: an application compartment journals puts into the storage
  compartment, sync (one crossing per put) vs queued at batch 8, across
  isolation backends.
- **netstack send**: multi-segment socket sends, where the network
  stack copies each MSS-sized payload chunk through LibC — sync (one
  crossing per segment) vs a queued ``netstack->libc`` edge (one
  doorbell per send call).
- **batch sweep**: per-op crossing cost for kv.put as the batch size
  grows (1, 2, 8, 32) on one backend.

The headline metric is **per-op crossing cost**: boundary crossings on
the measured edge × the backend's per-crossing round-trip cost
(:func:`repro.gates.registry.relative_crossing_cost`) ÷ operations —
i.e. what the caller pays in doorbells.  ``sim_ns_per_op`` (wall
simulated time) is reported alongside: it includes the ring traffic the
queue adds, so it improves less than the crossing cost does.

Results go to ``benchmarks/BENCH_queue.json``.  Runs standalone:

    PYTHONPATH=src python benchmarks/bench_queue.py --smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro import BuildConfig, build_image
from repro.gates.registry import relative_crossing_cost
from repro.libos.net.packet import MSS

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_queue.json"

KV_BACKENDS = ("mpk-shared", "mpk-switched", "vm-rpc")
NET_BACKENDS = ("mpk-shared", "cheri")
BATCH = 8
SWEEP_BATCHES = (1, 2, 8, 32)


def _edge_channel(image, caller: str, callee: str):
    return image.lib(caller).stub(callee)._channel


def _build_kv(backend: str, batch: int | None):
    queue_edges = {"libc->kv": f"batch:{batch}"} if batch else {}
    return build_image(
        BuildConfig(
            libraries=["libc", "blk", "kv"],
            compartments=[["blk"], ["kv"], ["sched", "alloc", "libc"]],
            backend=backend,
            queue_edges=queue_edges,
        )
    )


def kv_cell(backend: str, puts: int, batch: int | None) -> dict:
    """ns and crossings per put, sync (batch=None) or queued."""
    image = _build_kv(backend, batch)
    libc = image.lib("libc")
    stub = libc.stub("kv")
    channel = stub._channel
    # One staging buffer per in-flight submission: a queued put reads
    # its value at flush time, so the writer must not reuse a buffer
    # before the batch drains (same hazard the kv store's own write
    # ring solves).
    ring = max(1, batch or 1)
    bufs = [image.call("alloc", "malloc_shared", 4096) for _ in range(ring)]
    space = libc.compartment.address_space
    context = libc.compartment.make_context("bench")
    machine = image.machine
    machine.cpu.push_context(context)
    try:
        crossings_before = channel.crossings
        start = image.clock_ns
        for index in range(puts):
            value = (b"%06d" % index) * 8  # 48 bytes
            buf = bufs[index % ring]
            machine.dma_write(space, buf, value)
            key = b"bench%04d" % (index % 32)
            if batch:
                stub.submit("put", key, buf, len(value))
            else:
                stub.call("put", key, buf, len(value))
        if batch:
            stub.flush()
            failed = [c for c in stub.poll() if not c.ok]
            assert not failed, failed[0].error
        elapsed = image.clock_ns - start
        crossings = channel.crossings - crossings_before
    finally:
        machine.cpu.pop_context()
    per_crossing = relative_crossing_cost(backend)
    return {
        "workload": "kv.put",
        "backend": backend,
        "mode": f"queued(batch:{batch})" if batch else "sync",
        "batch": batch or 1,
        "ops": puts,
        "edge_crossings": crossings,
        "crossing_cost_per_op_ns": crossings * per_crossing / puts,
        "sim_ns_per_op": elapsed / puts,
    }


def _build_net(backend: str, batch: int | None):
    queue_edges = {"netstack->libc": f"batch:{batch}"} if batch else {}
    return build_image(
        BuildConfig(
            libraries=["libc", "netstack"],
            compartments=[["netstack"], ["sched", "alloc", "libc"]],
            backend=backend,
            queue_edges=queue_edges,
        )
    )


def net_cell(backend: str, sends: int, batch: int | None) -> dict:
    """Crossings per transmitted segment for the netstack->libc edge.

    Each send covers ``batch`` (or 8, for the sync baseline) MSS-sized
    segments, so the stack issues that many payload copies through
    LibC per call — one gate crossing each on the sync path, one
    doorbell per send on the queued path.
    """
    image = _build_net(backend, batch)
    channel = _edge_channel(image, "netstack", "libc")
    segments_per_send = batch or BATCH
    sockfd = image.call("netstack", "listen", 5001)
    size = segments_per_send * MSS
    buf = image.call("alloc", "malloc_shared", size)
    space = image.lib("netstack").compartment.address_space
    image.machine.dma_write(space, buf, b"\xa5" * size)
    crossings_before = channel.crossings
    start = image.clock_ns
    for _ in range(sends):
        sent = image.call("netstack", "send", sockfd, buf, size)
        assert sent == size
    elapsed = image.clock_ns - start
    crossings = channel.crossings - crossings_before
    segments = image.call("netstack", "net_stats")["tx_packets"]
    assert segments == sends * segments_per_send
    per_crossing = relative_crossing_cost(backend)
    return {
        "workload": "netstack.send",
        "backend": backend,
        "mode": f"queued(batch:{batch})" if batch else "sync",
        "batch": batch or 1,
        "ops": segments,
        "edge_crossings": crossings,
        "crossing_cost_per_op_ns": crossings * per_crossing / segments,
        "sim_ns_per_op": elapsed / segments,
    }


def run(puts: int, sends: int) -> dict:
    kv_cells = []
    for backend in KV_BACKENDS:
        kv_cells.append(kv_cell(backend, puts, None))
        kv_cells.append(kv_cell(backend, puts, BATCH))
    net_cells = []
    for backend in NET_BACKENDS:
        net_cells.append(net_cell(backend, sends, None))
        net_cells.append(net_cell(backend, sends, BATCH))
    sweep = [kv_cell("mpk-shared", puts, batch) for batch in SWEEP_BATCHES]
    payload = {
        "puts": puts,
        "sends": sends,
        "batch": BATCH,
        "kv": kv_cells,
        "net": net_cells,
        "sweep": sweep,
        "amortised_cost_model": {
            backend: {
                "sync_ns": relative_crossing_cost(backend),
                f"queue_batch_{BATCH}_ns": relative_crossing_cost(
                    f"queue:{backend}", batch=BATCH
                ),
            }
            for backend in sorted(set(KV_BACKENDS) | set(NET_BACKENDS))
        },
    }
    _check(payload)
    return payload


def _check(payload: dict) -> None:
    """The claims the numbers must support (smoke-level sanity)."""

    def by_mode(cells, workload, backend):
        rows = [
            c
            for c in cells
            if c["workload"] == workload and c["backend"] == backend
        ]
        sync = next(c for c in rows if c["mode"] == "sync")
        queued = next(c for c in rows if c["mode"].startswith("queued"))
        return sync, queued

    # Acceptance: >=2x lower per-op crossing cost at batch >= 8 for both
    # batched kv.put and netstack send, on at least two backends each.
    for backend in KV_BACKENDS:
        sync, queued = by_mode(payload["kv"], "kv.put", backend)
        assert (
            queued["crossing_cost_per_op_ns"]
            <= sync["crossing_cost_per_op_ns"] / 2
        ), backend
        assert queued["edge_crossings"] < sync["edge_crossings"]
    for backend in NET_BACKENDS:
        sync, queued = by_mode(payload["net"], "netstack.send", backend)
        assert (
            queued["crossing_cost_per_op_ns"]
            <= sync["crossing_cost_per_op_ns"] / 2
        ), backend
    # The sweep amortises monotonically in batch size.
    sweep = payload["sweep"]
    for smaller, larger in zip(sweep, sweep[1:]):
        assert (
            larger["crossing_cost_per_op_ns"]
            <= smaller["crossing_cost_per_op_ns"]
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes for CI (same matrix shape, same checks)",
    )
    parser.add_argument("--json", default=str(BENCH_JSON))
    options = parser.parse_args(argv)
    if options.smoke:
        payload = run(puts=64, sends=16)
    else:
        payload = run(puts=400, sends=64)
    pathlib.Path(options.json).write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )
    for cell in payload["kv"] + payload["net"]:
        print(
            f"{cell['workload']:13s} {cell['backend']:12s} "
            f"{cell['mode']:16s} "
            f"crossing {cell['crossing_cost_per_op_ns']:9.1f} ns/op  "
            f"wall {cell['sim_ns_per_op']:9.1f} ns/op"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
