"""Design-space exploration benchmark (paper §2's two strategies).

Not a paper figure, but the automation the paper positions as FlexOS's
purpose: enumerate the SH-variant × coloring space for the full
micro-library set, run both search strategies (plus the portability
variant), and time the whole pipeline — demonstrating that exploration
is interactive-speed even with simulation-backed cost measurement.
"""

from __future__ import annotations

import time

from repro.core.autobench import simulated_perf_fn
from repro.core.builder import library_defs
from repro.core.config import BuildConfig
from repro.core.explorer import Explorer, security_score

LIBS = ["libc", "netstack", "vfs", "iperf"]


def test_explorer_pipeline(benchmark, report):
    def run():
        t0 = time.perf_counter()
        defs = library_defs(BuildConfig(libraries=LIBS))
        explorer = Explorer(defs)
        enumerate_s = time.perf_counter() - t0

        perf = simulated_perf_fn(LIBS, workload="iperf")
        t1 = time.perf_counter()
        budget = explorer.max_security_within_budget(budget=1e9, perf_fn=perf)
        safe = explorer.best_performance_meeting(["no-wild-writes"], perf_fn=perf)
        portable = explorer.most_portable(["no-wild-writes"], perf_fn=perf)
        search_s = time.perf_counter() - t1
        return explorer, budget, safe, portable, enumerate_s, search_s

    explorer, budget, safe, portable, enumerate_s, search_s = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    report.row(
        "Design-space exploration",
        f"{len(explorer.deployments)} deployments enumerated in "
        f"{enumerate_s * 1e3:.1f} ms; both strategies + portability "
        f"searched (simulation-backed) in {search_s:.2f} s",
    )
    report.row(
        "Design-space exploration",
        f"max-security-within-budget -> {budget.describe()} "
        f"(score {security_score(budget):.1f})",
    )
    report.row(
        "Design-space exploration",
        f"best-perf meeting no-wild-writes -> {safe.describe()}",
    )
    deployment, placements = portable
    report.row(
        "Design-space exploration",
        f"most-portable -> {deployment.describe()} "
        f"(runs on {len(placements)} device classes)",
    )
    assert budget is not None and safe is not None
    assert len(placements) >= 4


def test_exploration_scales_with_library_count(benchmark, report):
    """Enumeration cost grows with 2^(hardenable libs): measure it."""

    def run():
        timings = {}
        for libs in (["libc"], ["libc", "netstack"], LIBS):
            t0 = time.perf_counter()
            explorer = Explorer(library_defs(BuildConfig(libraries=libs)))
            timings[len(explorer.deployments)] = time.perf_counter() - t0
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    cells = "  ".join(
        f"{count} deployments: {secs * 1e3:.1f} ms"
        for count, secs in sorted(timings.items())
    )
    report.row("Design-space exploration", f"enumeration scaling: {cells}")
