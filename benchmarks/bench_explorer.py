"""Design-space exploration benchmarks (paper §2's two strategies).

Not a paper figure, but the automation the paper positions as FlexOS's
purpose: enumerate the SH-variant × coloring space, run the search
strategies, and time the whole pipeline.  The paper's enumeration is
exponential in the number of hardenable libraries ("iterate through
all combinations of such library versions and run the graph coloring
algorithm"), so these benchmarks measure how far the fast path —
pairwise variant compatibility matrix + coloring memo + lazy
enumeration — pushes the scale wall compared to the eager reference
pipeline, across a library-count × variant-count grid.

The headline comparison (10 libraries × 3 variants, 59049 combos) is
written to ``benchmarks/BENCH_explorer.json`` together with the grid,
and asserts the fast path is ≥10× faster with bit-identical
deployments and strategy answers.  ``test_explorer_perf_smoke`` is the
small-scale CI guard.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core.autobench import simulated_perf_fn
from repro.core.builder import library_defs
from repro.core.config import BuildConfig
from repro.core.explorer import (
    Explorer,
    estimate_crossing_cost,
    requirement_satisfied,
    security_score,
)
from repro.core.hardening import (
    LibraryDef,
    enumerate_deployments,
    sh_variants,
)
from repro.core.metadata import LibrarySpec, Region, Requires

LIBS = ["libc", "netstack", "vfs", "iperf"]

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_explorer.json"

#: Accumulated across tests in this module, dumped by whichever test
#: runs last so a partial selection still writes a valid file.
_BENCH_DATA: dict = {}


def synthetic_libdefs(count: int) -> list[LibraryDef]:
    """``count`` libraries, each with 3 SH variants under alternatives.

    Every library is a wild writer/reader whose true behaviour is
    bounded, so ``sh_variants(…, alternatives=True)`` yields
    ``()``/``("asan",)``/``("dfi",)``.  Odd-indexed libraries carry a
    Requires clause (only shared-area writes tolerated), so conflict
    edges appear exactly between a requiring library and any
    *unhardened* neighbour — edge sets vary per combination, and many
    combinations repeat the same conflict graph, which is precisely the
    structure the coloring memo exploits.
    """
    defs = []
    for index in range(count):
        requires = (
            Requires(writes=frozenset({Region.SHARED})) if index % 2 else None
        )
        spec = LibrarySpec(
            name=f"lib{index:02d}",
            reads=frozenset({Region.ALL}),
            writes=frozenset({Region.ALL}),
            calls=frozenset(),
            requires=requires,
        )
        defs.append(
            LibraryDef(
                name=spec.name,
                spec=spec,
                true_behavior={
                    "writes": ["Own", "Shared"],
                    "reads": ["Own", "Shared"],
                },
            )
        )
    return defs


def _eager_strategy_keys(deployments, libdefs) -> dict:
    """Strategy answers computed directly over the eager list, with the
    same first-optimum tie-breaking the Explorer uses."""
    perf = lambda d: estimate_crossing_cost(d, libdefs)  # noqa: E731
    within = [d for d in deployments if perf(d) <= 1e9]
    max_security = max(within, key=security_score) if within else None
    compliant = [
        d
        for d in deployments
        if requirement_satisfied(d, "no-wild-writes", libdefs)
    ]
    best_perf = min(compliant, key=perf) if compliant else None
    return {
        "max_security_within_budget": max_security and max_security.key(),
        "best_performance_meeting": best_perf and best_perf.key(),
    }


def _fast_strategy_keys(explorer: Explorer) -> dict:
    max_security = explorer.max_security_within_budget(budget=1e9)
    best_perf = explorer.best_performance_meeting(["no-wild-writes"])
    return {
        "max_security_within_budget": max_security and max_security.key(),
        "best_performance_meeting": best_perf and best_perf.key(),
    }


def _compare_paths(count: int, alternatives: bool) -> dict:
    """Time eager vs fast enumeration + strategy queries at one scale.

    Two ratios: *enumeration* (the exponential variant-product phase
    this PR attacks — matrix + memo vs per-combo conflict graph and
    coloring) and *pipeline* (enumeration plus both strategy queries;
    the query phase scans every candidate on both paths, so it dilutes
    the headline ratio at small candidate counts).
    """
    defs = synthetic_libdefs(count)
    variants = max(len(sh_variants(d, alternatives)) for d in defs)

    t0 = time.perf_counter()
    eager = enumerate_deployments(defs, alternatives, eager=True)
    eager_enumerate_s = time.perf_counter() - t0
    eager_keys = _eager_strategy_keys(eager, defs)
    eager_total_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    explorer = Explorer(defs, alternatives)
    fast = explorer.deployments
    fast_enumerate_s = time.perf_counter() - t0
    fast_keys = _fast_strategy_keys(explorer)
    fast_total_s = time.perf_counter() - t0

    assert fast == eager, "fast path must be bit-identical to eager"
    assert fast_keys == eager_keys, "strategy answers must be identical"
    return {
        "libraries": count,
        "variants": variants,
        "combos": len(eager),
        "eager_enumerate_s": eager_enumerate_s,
        "eager_total_s": eager_total_s,
        "fast_enumerate_s": fast_enumerate_s,
        "fast_total_s": fast_total_s,
        "enumerate_speedup": (
            eager_enumerate_s / fast_enumerate_s
            if fast_enumerate_s
            else float("inf")
        ),
        "pipeline_speedup": (
            eager_total_s / fast_total_s if fast_total_s else float("inf")
        ),
        "strategies_identical": True,
        "strategy_keys": {
            name: key and repr(key) for name, key in fast_keys.items()
        },
        "stats": explorer.exploration_stats(),
    }


def _write_bench_json() -> None:
    serialisable = json.loads(json.dumps(_BENCH_DATA, default=repr))
    BENCH_JSON.write_text(json.dumps(serialisable, indent=2, sort_keys=True))


def test_explorer_scaling_grid(benchmark, report):
    """Fast-path enumeration cost across library count × variant count."""

    def run():
        grid = []
        for alternatives in (False, True):
            for count in (4, 6, 8, 10):
                defs = synthetic_libdefs(count)
                t0 = time.perf_counter()
                explorer = Explorer(defs, alternatives)
                combos = len(explorer.deployments)
                elapsed = time.perf_counter() - t0
                grid.append(
                    {
                        "libraries": count,
                        "variants": max(
                            len(sh_variants(d, alternatives)) for d in defs
                        ),
                        "combos": combos,
                        "fast_s": elapsed,
                        "coloring_memo_size": len(explorer.coloring_cache),
                    }
                )
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    _BENCH_DATA["grid"] = grid
    _write_bench_json()
    for row in grid:
        report.row(
            "Explorer scaling",
            f"{row['libraries']} libs x {row['variants']} variants: "
            f"{row['combos']} combos in {row['fast_s'] * 1e3:.0f} ms "
            f"({row['coloring_memo_size']} distinct colorings)",
        )
    report.value("Explorer scaling", "grid", grid)


def test_fast_vs_eager_headline(benchmark, report):
    """The acceptance target: ≥10× at 10 libraries × 3 variants."""
    headline = benchmark.pedantic(
        lambda: _compare_paths(10, alternatives=True), rounds=1, iterations=1
    )
    _BENCH_DATA["headline"] = headline
    _write_bench_json()
    report.row(
        "Explorer fast path",
        f"10 libs x 3 variants ({headline['combos']} combos): enumeration "
        f"{headline['eager_enumerate_s']:.2f} s -> "
        f"{headline['fast_enumerate_s']:.2f} s "
        f"({headline['enumerate_speedup']:.1f}x); full pipeline "
        f"{headline['eager_total_s']:.2f} s -> "
        f"{headline['fast_total_s']:.2f} s "
        f"({headline['pipeline_speedup']:.1f}x); identical deployments & "
        f"strategy answers",
    )
    report.value("Explorer fast path", "headline", headline)
    assert headline["enumerate_speedup"] >= 10.0
    assert headline["pipeline_speedup"] >= 5.0


def test_explorer_perf_smoke(report):
    """CI guard: the memoized path must not be slower than eager.

    Small scale (6 libraries × 3 variants, 729 combos) so the whole
    test stays under a few seconds on CI runners; the fast path wins by
    a wide margin there, so the 1.0× assertion has plenty of slack.
    """
    result = _compare_paths(6, alternatives=True)
    _BENCH_DATA.setdefault("smoke", result)
    _write_bench_json()
    report.row(
        "Explorer fast path",
        f"smoke 6 libs x 3 variants: enumeration "
        f"{result['eager_enumerate_s'] * 1e3:.0f} ms -> "
        f"{result['fast_enumerate_s'] * 1e3:.0f} ms "
        f"({result['enumerate_speedup']:.1f}x)",
    )
    assert result["fast_enumerate_s"] <= result["eager_enumerate_s"] * 1.10


def test_explorer_pipeline(benchmark, report):
    def run():
        t0 = time.perf_counter()
        defs = library_defs(BuildConfig(libraries=LIBS))
        explorer = Explorer(defs)
        enumerate_s = time.perf_counter() - t0

        perf = simulated_perf_fn(LIBS, workload="iperf")
        t1 = time.perf_counter()
        # Pre-measure all candidates through the parallel batch path,
        # then run the strategies against the warm memo.
        perf.measure_many(explorer.deployments, workers=4)
        budget = explorer.max_security_within_budget(budget=1e9, perf_fn=perf)
        safe = explorer.best_performance_meeting(["no-wild-writes"], perf_fn=perf)
        portable = explorer.most_portable(["no-wild-writes"], perf_fn=perf)
        search_s = time.perf_counter() - t1
        return explorer, budget, safe, portable, enumerate_s, search_s

    explorer, budget, safe, portable, enumerate_s, search_s = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    report.row(
        "Design-space exploration",
        f"{len(explorer.deployments)} deployments enumerated in "
        f"{enumerate_s * 1e3:.1f} ms; both strategies + portability "
        f"searched (simulation-backed, parallel measurement) in "
        f"{search_s:.2f} s",
    )
    report.row(
        "Design-space exploration",
        f"max-security-within-budget -> {budget.describe()} "
        f"(score {security_score(budget):.1f})",
    )
    report.row(
        "Design-space exploration",
        f"best-perf meeting no-wild-writes -> {safe.describe()}",
    )
    deployment, placements = portable
    report.row(
        "Design-space exploration",
        f"most-portable -> {deployment.describe()} "
        f"(runs on {len(placements)} device classes)",
    )
    assert budget is not None and safe is not None
    assert len(placements) >= 4


def test_exploration_scales_with_library_count(benchmark, report):
    """Enumeration cost grows with 2^(hardenable libs): measure it."""

    def run():
        timings = {}
        for libs in (["libc"], ["libc", "netstack"], LIBS):
            t0 = time.perf_counter()
            explorer = Explorer(library_defs(BuildConfig(libraries=libs)))
            timings[len(explorer.deployments)] = time.perf_counter() - t0
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    cells = "  ".join(
        f"{count} deployments: {secs * 1e3:.1f} ms"
        for count, secs in sorted(timings.items())
    )
    report.row("Design-space exploration", f"enumeration scaling: {cells}")


def test_persistent_cache_warm_run(tmp_path, report):
    """A warm persistent cache makes a re-exploration build nothing."""
    from repro.obs import exploration_metrics

    cache_path = tmp_path / "perfcache.json"
    defs = library_defs(BuildConfig(libraries=LIBS))

    cold = Explorer(defs)
    cold_perf = simulated_perf_fn(LIBS, workload="iperf", cache_path=cache_path)
    t0 = time.perf_counter()
    cold_perf.measure_many(cold.deployments, workers=4)
    cold_best = cold.best_performance_meeting(["no-wild-writes"], perf_fn=cold_perf)
    cold_s = time.perf_counter() - t0

    builds_before = exploration_metrics().counter("explore.builds")
    warm = Explorer(defs)
    warm_perf = simulated_perf_fn(LIBS, workload="iperf", cache_path=cache_path)
    t0 = time.perf_counter()
    warm_perf.measure_many(warm.deployments, workers=4)
    warm_best = warm.best_performance_meeting(["no-wild-writes"], perf_fn=warm_perf)
    warm_s = time.perf_counter() - t0
    builds_after = exploration_metrics().counter("explore.builds")

    assert builds_after == builds_before, "warm run must build zero images"
    assert warm_best.key() == cold_best.key()
    _BENCH_DATA["persistent_cache"] = {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "entries": len(warm_perf.perf_cache),
        "warm_builds": builds_after - builds_before,
    }
    _write_bench_json()
    report.row(
        "Explorer fast path",
        f"persistent perf cache: cold search {cold_s:.2f} s -> warm "
        f"{warm_s * 1e3:.0f} ms, 0 image builds on the warm run",
    )
