"""KV durability benchmark: flush policy vs throughput, recovery vs log size.

Not a figure from the paper, but the measurement behind the durable
storage subsystem's design choices:

- **throughput vs flush policy x backend** — simulated cost of one
  ``kv.put`` under ``every-write`` (a flush barrier per mutation) and
  ``batch:16`` (amortized barriers), across the gate menu.  Batching
  should recover most of the flush cost regardless of the isolation
  backend; the backends should separate by their per-crossing cost.
- **recovery time vs log size, before/after compaction** — replaying a
  longer log costs proportionally more; compaction collapses the log
  to the live set so recovery cost tracks *data*, not *history*.

Results go to ``benchmarks/BENCH_kv.json``.  Runs standalone too:

    PYTHONPATH=src python benchmarks/bench_kv.py --smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro import BuildConfig, build_image
from repro.libos.blk.blkdev import DiskMedium

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_kv.json"

BACKENDS = ("none", "mpk-shared", "mpk-switched", "cheri")
POLICIES = ("every-write", "batch:16")


def _build(medium: DiskMedium, backend: str):
    image = build_image(
        BuildConfig(
            libraries=["libc", "blk", "kv"],
            compartments=[["blk", "kv"], ["sched", "alloc", "libc"]],
            backend=backend,
        )
    )
    image.lib("blk").attach_medium(medium)
    return image


def _fill(image, buf, count: int, live_keys: int):
    """``count`` puts cycling over ``live_keys`` distinct keys."""
    space = image.compartments[0].address_space
    for index in range(count):
        value = (b"%06d" % index) * 8  # 48 bytes
        image.machine.dma_write(space, buf, value)
        image.call("kv", "put", b"bench%04d" % (index % live_keys), buf,
                   len(value))


def throughput_cell(backend: str, policy: str, writes: int) -> dict:
    """Simulated ns/put for one (backend, flush-policy) pair.

    Puts are driven from the application compartment through a real
    stub, so every mutation pays one gate crossing into the storage
    compartment — the backends separate by crossing cost.
    """
    image = _build(DiskMedium(), backend)
    image.call("kv", "set_flush_policy", policy)
    buf = image.call("alloc", "malloc_shared", 4096)
    space = image.compartments[0].address_space
    libc = image.lib("libc")
    stub = libc.stub("kv")
    context = libc.compartment.make_context("bench")
    image.machine.cpu.push_context(context)
    try:
        start = image.clock_ns
        for index in range(writes):
            value = (b"%06d" % index) * 8  # 48 bytes
            image.machine.dma_write(space, buf, value)
            stub.call("put", b"bench%04d" % (index % 32), buf, len(value))
        elapsed = image.clock_ns - start
    finally:
        image.machine.cpu.pop_context()
    stats = image.call("blk", "blk_stats")
    return {
        "backend": backend,
        "policy": policy,
        "writes": writes,
        "ns_per_put": elapsed / writes,
        "puts_per_msec": writes / (elapsed / 1e6),
        "flushes": stats["flushes"],
        "medium_writes": stats["medium_writes"],
    }


def throughput_matrix(writes: int) -> list[dict]:
    return [
        throughput_cell(backend, policy, writes)
        for backend in BACKENDS
        for policy in POLICIES
    ]


def recovery_curve(log_sizes: tuple[int, ...], live_keys: int = 30) -> list[dict]:
    """Recovery cost for growing logs, before and after compaction."""
    points = []
    for size in log_sizes:
        medium = DiskMedium()
        image = _build(medium, "none")
        image.call("kv", "set_flush_policy", "batch:8")
        buf = image.call("alloc", "malloc_shared", 4096)
        _fill(image, buf, size, live_keys)
        image.call("kv", "sync")

        fresh = _build(medium, "none")
        before = fresh.call("kv", "recover")
        fresh.call("kv", "compact")
        compacted = _build(medium, "none")
        after = compacted.call("kv", "recover")
        points.append({
            "log_records": size,
            "live_keys": before["live_keys"],
            "recovery_ns": before["recovery_ns"],
            "records_replayed": before["records"],
            "post_compaction_recovery_ns": after["recovery_ns"],
            "post_compaction_records": after["records"],
        })
    return points


def run(writes: int, log_sizes: tuple[int, ...]) -> dict:
    matrix = throughput_matrix(writes)
    curve = recovery_curve(log_sizes)
    payload = {
        "writes": writes,
        "log_sizes": list(log_sizes),
        "throughput": matrix,
        "recovery": curve,
    }
    _check(payload)
    return payload


def _check(payload: dict) -> None:
    """The claims the numbers must support (smoke-level sanity)."""
    by_cell = {
        (cell["backend"], cell["policy"]): cell
        for cell in payload["throughput"]
    }
    for backend in BACKENDS:
        every = by_cell[(backend, "every-write")]
        batch = by_cell[(backend, "batch:16")]
        # Batching amortizes flush barriers: strictly fewer flushes,
        # strictly cheaper puts.
        assert batch["flushes"] < every["flushes"], backend
        assert batch["ns_per_put"] < every["ns_per_put"], backend
    # Gates separate by crossing cost under the batched policy.
    assert (
        by_cell[("none", "batch:16")]["ns_per_put"]
        < by_cell[("mpk-shared", "batch:16")]["ns_per_put"]
        < by_cell[("mpk-switched", "batch:16")]["ns_per_put"]
    )

    curve = payload["recovery"]
    if not curve:
        return
    # Longer history costs more to replay ...
    for shorter, longer in zip(curve, curve[1:]):
        assert longer["recovery_ns"] > shorter["recovery_ns"]
    # ... until compaction collapses it to the live set.
    largest = curve[-1]
    assert largest["post_compaction_recovery_ns"] < largest["recovery_ns"]
    assert (
        largest["post_compaction_records"] <= largest["live_keys"] + 2
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes for CI (same matrix shape, same checks)",
    )
    parser.add_argument("--json", default=str(BENCH_JSON))
    options = parser.parse_args(argv)
    if options.smoke:
        payload = run(writes=120, log_sizes=(50, 150, 300))
    else:
        payload = run(writes=600, log_sizes=(100, 300, 600))
    pathlib.Path(options.json).write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )
    for cell in payload["throughput"]:
        print(
            f"{cell['backend']:13s} {cell['policy']:12s} "
            f"{cell['ns_per_put']:10.1f} ns/put "
            f"({cell['flushes']} flushes)"
        )
    for point in payload["recovery"]:
        print(
            f"log={point['log_records']:4d} recovery "
            f"{point['recovery_ns']:>10.0f} ns -> compacted "
            f"{point['post_compaction_recovery_ns']:>10.0f} ns"
        )
    print(f"wrote {options.json}")
    return 0


# --- pytest entry points (same helpers, bench-suite reporting) ---------------


def test_kv_flush_policy_throughput(report):
    matrix = throughput_matrix(writes=120)
    for cell in matrix:
        report.row(
            "KV put cost (ns, simulated)",
            f"{cell['backend']:13s} {cell['policy']:12s} "
            f"{cell['ns_per_put']:9.1f}",
        )
        report.value(
            "kv", f"{cell['backend']}/{cell['policy']}", cell["ns_per_put"]
        )
    _check({"throughput": matrix, "recovery": []})


def test_kv_recovery_scales_with_log_not_history(report):
    curve = recovery_curve(log_sizes=(50, 150, 300))
    payload = {
        "throughput": throughput_matrix(writes=60),
        "recovery": curve,
    }
    _check(payload)
    for point in curve:
        report.row(
            "KV recovery vs log size (ns, simulated)",
            f"log={point['log_records']:4d} "
            f"before={point['recovery_ns']:8.0f} "
            f"after-compaction={point['post_compaction_recovery_ns']:8.0f}",
        )
    report.value("kv", "recovery_curve", curve)


if __name__ == "__main__":
    sys.exit(main())
