"""Shared reporting for the benchmark suite.

Every benchmark records paper-style rows into the session ``report``;
they are printed in the terminal summary so the paper-vs-measured
comparison is visible even under output capture, and dumped to
``benchmarks/results.json`` for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import json
import pathlib

import pytest

_RESULTS: dict[str, list[str]] = {}
_RAW: dict[str, dict] = {}


class Report:
    """Accumulates human-readable rows and raw values per experiment."""

    def row(self, experiment: str, text: str) -> None:
        _RESULTS.setdefault(experiment, []).append(text)

    def value(self, experiment: str, key: str, value) -> None:
        _RAW.setdefault(experiment, {})[key] = value

    def metrics(self, experiment: str, key: str, image) -> None:
        """Attach an image's full metrics snapshot to the raw results.

        Gives results.json the per-configuration crossing counts and
        histograms alongside the headline numbers, so regressions can
        be traced to a specific gate edge rather than just a slower
        total.
        """
        _RAW.setdefault(experiment, {})[f"{key}:metrics"] = (
            image.metrics_snapshot()
        )


@pytest.fixture(scope="session")
def report() -> Report:
    return Report()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.section("FlexOS reproduction: paper-style results")
    for experiment in sorted(_RESULTS):
        terminalreporter.write_line(f"== {experiment} ==")
        for line in _RESULTS[experiment]:
            terminalreporter.write_line("  " + line)
    out = pathlib.Path(__file__).parent / "results.json"
    out.write_text(json.dumps(_RAW, indent=2, sort_keys=True))
    terminalreporter.write_line(f"raw values written to {out}")
