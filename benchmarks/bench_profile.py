"""Profile-guided re-compartmentalization benchmark (the feedback loop).

The paper's exploration ranks candidate deployments with a *static*
estimate: call-graph edges are all equally hot and every SH technique
costs its Table-1 weight regardless of where the workload burns time.
This benchmark closes the loop the tentpole builds: capture a
:class:`repro.obs.WorkloadProfile` from a live run, re-run the same
exploration with :func:`repro.core.explorer.profiled_cost_fn` (measured
crossing frequencies × per-backend crossing cost + measured-time-
weighted SH overheads), and **measure both picks** by re-running the
workload under ``repro.obs``.

Headline (written to ``benchmarks/BENCH_profile.json``): on the iperf
workload the static estimator picks DFI-hardening the netstack/libc
compartment (DFI looks cheap at weight 2), but iperf's receive path is
store-heavy, so measured DFI overhead exceeds the measured cost of the
MPK crossings it avoids — the profile-guided pick (keep the split,
skip the hardening) measures ~15% faster.  On redis both estimators
agree (the DFI-hardened single compartment really is fastest), which
is the other half of the contract: profile-guidance must never do
*worse* than the static pick.  A third test pins the observability
invariant the pipeline rests on: profiling a run changes no simulated
result bit.
"""

from __future__ import annotations

import json
import pathlib

from repro.apps import run_named_workload, workload_params
from repro.core.builder import build_image, library_defs
from repro.core.config import BuildConfig
from repro.core.explorer import (
    Explorer,
    crossing_cost_fn,
    profiled_cost_fn,
    requirement_satisfied,
)
from repro.obs import capture_profile

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_profile.json"

_BENCH_DATA: dict = {}


def _write_bench_json() -> None:
    serialisable = json.loads(json.dumps(_BENCH_DATA, default=repr))
    BENCH_JSON.write_text(json.dumps(serialisable, indent=2, sort_keys=True))


def _measure(deployment, libraries, workload, params, backend) -> dict:
    """Re-run the profiled workload on a pick, under repro.obs."""
    groups = deployment.compartments
    config = BuildConfig(
        libraries=libraries,
        compartments=groups,
        backend=backend if len(groups) > 1 else "none",
        hardening={
            lib: techniques
            for lib, techniques in deployment.choices.items()
            if techniques
        },
    )
    image = build_image(config)
    with capture_profile(image, workload, params) as capture:
        _, numbers = run_named_workload(image, workload, params)
    return {
        "describe": deployment.describe(),
        "elapsed_ns": capture.profile.elapsed_ns,
        "workload_numbers": numbers,
    }


def _feedback_loop(
    workload: str,
    libraries: list[str],
    requirements: list[str],
    backend: str = "mpk-shared",
) -> dict:
    """Capture → explore twice (static / profiled) → measure both picks."""
    params = workload_params(workload)

    image = build_image(BuildConfig(libraries=libraries, backend=backend))
    with capture_profile(image, workload, params) as capture:
        run_named_workload(image, workload, params)
    profile = capture.profile

    defs = library_defs(BuildConfig(libraries=libraries))
    explorer = Explorer(defs, alternatives=True)
    static_fn = crossing_cost_fn(defs, backend=backend)
    profiled_fn = profiled_cost_fn(profile, backend=backend)
    static_pick = explorer.best_performance_meeting(
        requirements, perf_fn=static_fn
    )
    profiled_pick = explorer.best_performance_meeting(
        requirements, perf_fn=profiled_fn
    )
    assert static_pick is not None and profiled_pick is not None
    for requirement in requirements:
        assert requirement_satisfied(profiled_pick, requirement, defs)

    static = _measure(static_pick, libraries, workload, params, backend)
    static["estimated_cost"] = static_fn(static_pick)
    if profiled_pick.key() == static_pick.key():
        profiled = dict(static)
    else:
        profiled = _measure(
            profiled_pick, libraries, workload, params, backend
        )
    profiled["estimated_cost_ns"] = profiled_fn(profiled_pick)
    return {
        "workload": workload,
        "libraries": libraries,
        "backend": backend,
        "requirements": requirements,
        "profile_hash": profile.profile_hash(),
        "profile_crossings": profile.total_crossings,
        "same_pick": profiled_pick.key() == static_pick.key(),
        "static": static,
        "profiled": profiled,
        "measured_delta_ns": static["elapsed_ns"] - profiled["elapsed_ns"],
    }


def test_profile_guided_beats_static_on_iperf(report):
    """The headline: measured feedback corrects a static mis-rank.

    Static sees 6 boundary edges vs 5 SH weight units and hardens;
    the profile prices the actual 477 crossings below DFI's measured
    cost on 192 µs of store-heavy netstack time and keeps the split.
    """
    result = _feedback_loop(
        "iperf",
        ["libc", "netstack", "iperf"],
        ["write-protected:iperf"],
    )
    _BENCH_DATA["iperf"] = result
    _write_bench_json()
    report.row(
        "Profile-guided re-compartmentalization",
        f"iperf: static pick [{result['static']['describe']}] "
        f"{result['static']['elapsed_ns'] / 1e3:.1f} us -> profiled pick "
        f"[{result['profiled']['describe']}] "
        f"{result['profiled']['elapsed_ns'] / 1e3:.1f} us "
        f"(measured delta {result['measured_delta_ns'] / 1e3:.1f} us)",
    )
    report.value("Profile-guided re-compartmentalization", "iperf", result)
    assert not result["same_pick"], (
        "the static estimator is expected to mis-rank DFI on iperf's "
        "store-heavy path; if the picks converged the headline is gone"
    )
    assert (
        result["profiled"]["elapsed_ns"] < result["static"]["elapsed_ns"]
    ), "profile-guided pick must measure strictly faster on iperf"


def test_profile_guided_matches_static_on_redis(report):
    """Never-worse: on redis both estimators find the same optimum."""
    result = _feedback_loop(
        "redis",
        ["libc", "netstack", "redis"],
        ["write-protected:redis"],
    )
    _BENCH_DATA["redis"] = result
    _write_bench_json()
    report.row(
        "Profile-guided re-compartmentalization",
        f"redis: static pick [{result['static']['describe']}] "
        f"{result['static']['elapsed_ns'] / 1e3:.1f} us, profiled pick "
        f"[{result['profiled']['describe']}] "
        f"{result['profiled']['elapsed_ns'] / 1e3:.1f} us "
        f"(same_pick={result['same_pick']})",
    )
    report.value("Profile-guided re-compartmentalization", "redis", result)
    assert (
        result["profiled"]["elapsed_ns"] <= result["static"]["elapsed_ns"]
    ), "profile-guided pick must never measure slower than the static pick"


def test_profiling_is_free(report):
    """Profiling a run must not change one simulated bit.

    The whole pipeline rests on this: a profile captured from a
    production-shaped run describes exactly the run that would have
    happened without the profiler attached.
    """
    results = []
    for profiled in (False, True):
        image = build_image(
            BuildConfig(
                libraries=["libc", "netstack", "redis"], backend="mpk-shared"
            )
        )
        if profiled:
            with capture_profile(image, "redis") as capture:
                summary, numbers = run_named_workload(image, "redis")
            results.append(
                (summary, numbers, image.machine.cpu.clock_ns)
            )
            profile = capture.profile
        else:
            summary, numbers = run_named_workload(image, "redis")
            results.append(
                (summary, numbers, image.machine.cpu.clock_ns)
            )
    assert results[0] == results[1], (
        "profiling on vs off must produce bit-identical simulated results"
    )
    _BENCH_DATA["bit_identical"] = {
        "workload": "redis",
        "summary": results[0][0],
        "final_clock_ns": results[0][2],
        "identical": True,
        "profile_hash": profile.profile_hash(),
    }
    _write_bench_json()
    report.row(
        "Profile-guided re-compartmentalization",
        f"profiling on vs off: bit-identical redis run "
        f"({results[0][0]}; final clock {results[0][2] / 1e3:.1f} us)",
    )
