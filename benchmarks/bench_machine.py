"""Simulation-core fast path: host wall-clock, fast vs slow toggle.

Not a figure from the paper — the measurement behind ISSUE 7's
optimisation of the simulator itself.  Two claims, both against the
``REPRO_FASTPATH`` toggle (identical machines, only translation caching
differs):

- **load/store microbenchmark** — checked accesses through the
  software TLB vs the per-page walk, across access sizes.  Small
  accesses win by skipping the walk/permission/PKRU re-checks; bulk
  accesses win again through the range cache (one probe + one slice
  per multi-page run).  The bulk point must clear **5x**.
- **end-to-end figures** — fig3-style iperf (MPK shared stacks),
  fig4-style redis under the SH suite, and fig5-style redis (MPK
  switched stacks), timed wall-clock under both toggles.

``--check`` additionally proves the optimisation invisible in
simulation: for every isolation profile (mpk-shared, mpk-switched,
vm-rpc/EPT, CHERI, SH-asan, SH-dfi) the fast and slow runs must
produce bit-identical clocks, counter snapshots, and application
numbers.  Results go to ``benchmarks/BENCH_machine.json`` and the
trajectory is recorded in ``benchmarks/results.json``.  Runs
standalone:

    PYTHONPATH=src python benchmarks/bench_machine.py --smoke --check
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import pathlib
import sys
import time

from repro import BuildConfig, build_image
from repro.apps import (
    make_get_payloads,
    make_set_payloads,
    run_iperf,
    run_redis_phase,
    start_redis,
)
from repro.machine.machine import Machine
from repro.machine.memory import PAGE_SIZE

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_machine.json"
RESULTS_JSON = pathlib.Path(__file__).parent / "results.json"

#: Required speedup of the bulk load/store point (ISSUE 7 acceptance).
MICRO_BULK_FLOOR = 5.0
#: Required end-to-end speedup on the figure workloads (full runs only;
#: smoke runs are too short to time reliably).
E2E_FLOOR = 1.02

IPERF_LIBS = ["libc", "netstack", "iperf"]
REDIS_LIBS = ["libc", "netstack", "redis"]
IPERF_COMPARTMENTS = [["netstack"], ["sched", "alloc", "libc", "iperf"]]
REDIS_COMPARTMENTS = [["netstack"], ["sched", "alloc", "libc", "redis"]]
SH_SUITE = ("asan", "ubsan", "stackprotector", "cfi")


@contextlib.contextmanager
def _fastpath(enabled: bool):
    """Scope the machine fast path for images built inside the block."""
    saved = os.environ.get("REPRO_FASTPATH")
    os.environ["REPRO_FASTPATH"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if saved is None:
            del os.environ["REPRO_FASTPATH"]
        else:
            os.environ["REPRO_FASTPATH"] = saved


# --- load/store microbenchmark ----------------------------------------------


def _micro_run(fast: bool, size: int, iterations: int):
    """Time ``iterations`` store+load pairs; returns (wall_s, observables)."""
    machine = Machine(fastpath=fast)
    space = machine.new_address_space("bench")
    payload = b"\x5a" * size
    stride = max(size, 256)
    window = 8
    pages = (window * stride + size) // PAGE_SIZE + 2
    base = space.map_new(pages * PAGE_SIZE)
    machine.boot_context(space, label="bench")
    start = time.perf_counter()
    for index in range(iterations):
        vaddr = base + (index % window) * stride
        machine.store(vaddr, payload)
        machine.load(vaddr, size)
    wall = time.perf_counter() - start
    observables = (machine.cpu.clock_ns, tuple(sorted(machine.cpu.snapshot().items())))
    return wall, observables, machine.fastpath_stats()


def micro_matrix(smoke: bool) -> list[dict]:
    """Fast-vs-slow wall clock per access size, identical observables."""
    scale = 1 if smoke else 4
    cells = []
    for size, iterations in (
        (64, 4000 * scale),
        (4096, 2000 * scale),
        (65536, 400 * scale),
        (262144, 100 * scale),
    ):
        fast_wall = slow_wall = None
        for _ in range(3):  # best-of-3 against host noise
            wall_f, obs_f, stats = _micro_run(True, size, iterations)
            wall_s, obs_s, _ = _micro_run(False, size, iterations)
            assert obs_f == obs_s, f"observables diverged at size {size}"
            fast_wall = wall_f if fast_wall is None else min(fast_wall, wall_f)
            slow_wall = wall_s if slow_wall is None else min(slow_wall, wall_s)
        cells.append({
            "size_bytes": size,
            "iterations": iterations,
            "fast_wall_s": fast_wall,
            "slow_wall_s": slow_wall,
            "speedup": slow_wall / fast_wall,
            "fast_us_per_pair": fast_wall / iterations * 1e6,
            "slow_us_per_pair": slow_wall / iterations * 1e6,
            "tlb_hits": stats["tlb_hits"],
            "tlb_misses": stats["tlb_misses"],
        })
    return cells


# --- end-to-end figure workloads --------------------------------------------


def _fig3_config() -> BuildConfig:
    return BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="mpk-shared",
    )


def _fig4_config() -> BuildConfig:
    return BuildConfig(
        libraries=REDIS_LIBS, compartments=REDIS_COMPARTMENTS,
        backend="none", hardening={"netstack": SH_SUITE},
    )


def _fig5_config() -> BuildConfig:
    return BuildConfig(
        libraries=REDIS_LIBS, compartments=REDIS_COMPARTMENTS,
        backend="mpk-switched",
    )


def _drive_iperf(image, smoke: bool) -> dict:
    total = 1 << 17 if smoke else 1 << 20
    result = run_iperf(image, 4096, total)
    return {"throughput_mbps": result.throughput_mbps,
            "elapsed_ns": result.elapsed_ns}


def _drive_redis(image, smoke: bool) -> dict:
    requests = 100 if smoke else 600
    start_redis(image)
    run_redis_phase(
        image, make_set_payloads(64, 500, keyspace=64),
        window=8, expect_prefix=b"+OK",
    )
    result = run_redis_phase(
        image, make_get_payloads(requests, keyspace=64), window=8,
    )
    return {"throughput_mbps": result.throughput_mbps,
            "elapsed_ns": result.elapsed_ns}


E2E_WORKLOADS = {
    "fig3_iperf_mpk_shared": (_fig3_config, _drive_iperf),
    "fig4_redis_sh": (_fig4_config, _drive_redis),
    "fig5_redis_mpk_switched": (_fig5_config, _drive_redis),
}


def _e2e_once(config_factory, driver, fast: bool, smoke: bool):
    with _fastpath(fast):
        image = build_image(config_factory())
    start = time.perf_counter()
    numbers = driver(image, smoke)
    wall = time.perf_counter() - start
    snapshot = image.machine.cpu.snapshot()
    return wall, numbers, snapshot, image.machine.fastpath_stats()


def e2e_matrix(smoke: bool) -> list[dict]:
    cells = []
    for name, (config_factory, driver) in E2E_WORKLOADS.items():
        fast_wall = slow_wall = None
        rounds = 1 if smoke else 3
        for _ in range(rounds):
            wall_f, numbers_f, snap_f, stats = _e2e_once(
                config_factory, driver, True, smoke
            )
            wall_s, numbers_s, snap_s, _ = _e2e_once(
                config_factory, driver, False, smoke
            )
            # The toggle must be invisible in simulation.
            assert numbers_f == numbers_s, f"{name}: workload numbers diverged"
            assert snap_f == snap_s, f"{name}: counter snapshot diverged"
            fast_wall = wall_f if fast_wall is None else min(fast_wall, wall_f)
            slow_wall = wall_s if slow_wall is None else min(slow_wall, wall_s)
        hit_rate = stats["tlb_hits"] / max(
            1, stats["tlb_hits"] + stats["tlb_misses"]
        )
        cells.append({
            "workload": name,
            "fast_wall_s": fast_wall,
            "slow_wall_s": slow_wall,
            "speedup": slow_wall / fast_wall,
            "simulated": numbers_f,
            "tlb_hits": stats["tlb_hits"],
            "tlb_misses": stats["tlb_misses"],
            "tlb_hit_rate": hit_rate,
        })
    return cells


# --- bit-identity check across isolation profiles ---------------------------


CHECK_PROFILES = {
    "mpk-shared": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="mpk-shared",
    ),
    "mpk-switched": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="mpk-switched",
    ),
    "vm-rpc": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="vm-rpc",
    ),
    "cheri": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="cheri",
    ),
    "sh-asan": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="none", hardening={"netstack": ("asan",)},
    ),
    "sh-dfi": lambda: BuildConfig(
        libraries=IPERF_LIBS, compartments=IPERF_COMPARTMENTS,
        backend="none", hardening={"netstack": ("dfi",)},
    ),
}


def check_profiles(smoke: bool) -> list[dict]:
    """Fast vs slow bit-identity for every isolation profile."""
    verdicts = []
    for name, config_factory in CHECK_PROFILES.items():
        _, numbers_f, snap_f, stats = _e2e_once(
            config_factory, _drive_iperf, True, smoke
        )
        _, numbers_s, snap_s, _ = _e2e_once(
            config_factory, _drive_iperf, False, smoke
        )
        assert numbers_f == numbers_s, f"{name}: workload numbers diverged"
        assert snap_f == snap_s, f"{name}: counter snapshot diverged"
        assert snap_f["clock_ns"] == snap_s["clock_ns"]
        verdicts.append({
            "profile": name,
            "identical": True,
            "clock_ns": snap_f["clock_ns"],
            "tlb_hits": stats["tlb_hits"],
            "tlb_misses": stats["tlb_misses"],
        })
    return verdicts


# --- orchestration -----------------------------------------------------------


def run(smoke: bool, check: bool) -> dict:
    micro = micro_matrix(smoke)
    e2e = e2e_matrix(smoke)
    payload = {
        "smoke": smoke,
        "microbench": micro,
        "end_to_end": e2e,
        "identity_checks": check_profiles(smoke) if check else None,
    }
    _check(payload)
    return payload


def _check(payload: dict) -> None:
    """The claims the numbers must support."""
    micro = payload["microbench"]
    # Every size must win; the bulk (range-cache) point must clear 5x.
    for cell in micro:
        assert cell["speedup"] > 1.0, (
            f"fast path slower at {cell['size_bytes']}B: "
            f"{cell['speedup']:.2f}x"
        )
    bulk_speedup = max(
        cell["speedup"] for cell in micro if cell["size_bytes"] >= 65536
    )
    assert bulk_speedup >= MICRO_BULK_FLOOR, (
        f"bulk load/store speedup {bulk_speedup:.2f}x "
        f"< required {MICRO_BULK_FLOOR}x"
    )
    # End-to-end: the fast path must actually help the figures (full
    # runs only; smoke runs are too short to time meaningfully).
    if not payload["smoke"]:
        for cell in payload["end_to_end"]:
            assert cell["speedup"] >= E2E_FLOOR, (
                f"{cell['workload']}: speedup {cell['speedup']:.2f}x "
                f"< required {E2E_FLOOR}x"
            )
    # The software TLB is actually doing the work on the figures.
    for cell in payload["end_to_end"]:
        assert cell["tlb_hit_rate"] > 0.5, cell["workload"]


def _record_trajectory(payload: dict) -> None:
    """Append the headline numbers to benchmarks/results.json."""
    data = {}
    if RESULTS_JSON.exists():
        data = json.loads(RESULTS_JSON.read_text())
    bulk_speedup = max(
        cell["speedup"]
        for cell in payload["microbench"]
        if cell["size_bytes"] >= 65536
    )
    small = min(payload["microbench"], key=lambda cell: cell["size_bytes"])
    data["Simulation-core fast path"] = {
        "smoke": payload["smoke"],
        "micro_small_speedup": round(small["speedup"], 2),
        "micro_bulk_speedup": round(bulk_speedup, 2),
        "end_to_end": {
            cell["workload"]: {
                "speedup": round(cell["speedup"], 2),
                "tlb_hit_rate": round(cell["tlb_hit_rate"], 4),
            }
            for cell in payload["end_to_end"]
        },
        "identity_profiles_checked": [
            verdict["profile"]
            for verdict in payload["identity_checks"] or []
        ],
    }
    RESULTS_JSON.write_text(json.dumps(data, indent=2, sort_keys=True))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes for CI (same matrix shape, same identity "
        "assertions, no end-to-end wall-clock floor)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="also verify fast-vs-slow bit-identity across all "
        "isolation profiles (mpk/ept/cheri/sh)",
    )
    parser.add_argument("--json", default=str(BENCH_JSON))
    options = parser.parse_args(argv)
    payload = run(smoke=options.smoke, check=options.check)
    pathlib.Path(options.json).write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )
    _record_trajectory(payload)
    for cell in payload["microbench"]:
        print(
            f"micro {cell['size_bytes']:7d}B  "
            f"fast {cell['fast_us_per_pair']:8.2f} us/pair  "
            f"slow {cell['slow_us_per_pair']:8.2f} us/pair  "
            f"{cell['speedup']:5.2f}x"
        )
    for cell in payload["end_to_end"]:
        print(
            f"e2e  {cell['workload']:26s} {cell['speedup']:5.2f}x  "
            f"(tlb hit rate {cell['tlb_hit_rate']:.1%})"
        )
    if payload["identity_checks"]:
        profiles = ", ".join(
            verdict["profile"] for verdict in payload["identity_checks"]
        )
        print(f"identity verified (clock, counters, app numbers): {profiles}")
    print(f"wrote {options.json}")
    return 0


# --- pytest entry points (same helpers, bench-suite reporting) ---------------


def test_machine_fastpath_microbench(report):
    micro = micro_matrix(smoke=True)
    for cell in micro:
        report.row(
            "Machine fast path (us/pair, host)",
            f"{cell['size_bytes']:7d}B fast={cell['fast_us_per_pair']:8.2f} "
            f"slow={cell['slow_us_per_pair']:8.2f} {cell['speedup']:5.2f}x",
        )
        report.value(
            "machine", f"micro/{cell['size_bytes']}", cell["speedup"]
        )
    assert max(
        cell["speedup"] for cell in micro if cell["size_bytes"] >= 65536
    ) >= MICRO_BULK_FLOOR


def test_machine_fastpath_identity(report):
    verdicts = check_profiles(smoke=True)
    for verdict in verdicts:
        report.row(
            "Machine fast path identity",
            f"{verdict['profile']:13s} clock={verdict['clock_ns']:14.1f} "
            f"hits={verdict['tlb_hits']}",
        )
    assert len(verdicts) == len(CHECK_PROFILES)


if __name__ == "__main__":
    sys.exit(main())
