"""Table 1: iperf throughput with SH on individual components.

Paper setup: iperf with FlexOS components grouped into four trust
domains — network stack, scheduler, LibC, and the rest of the system
(including iperf itself) — running the GCC/clang hardening suite on
(a) one component only and (b) everything but that component, against
an unhardened baseline and a fully-hardened build.

Shape targets (paper, small recv buffer): scheduler-only ≈1%
overhead, network-stack-only ≈6%, LibC-only ≈2.3x, rest ≈1.18x;
hardening everything is the most expensive configuration (paper: 6x —
see EXPERIMENTS.md for the measured deviation and its cause).
"""

from __future__ import annotations

import pytest

from repro import BuildConfig, build_image
from repro.apps import run_iperf

LIBRARIES = ["libc", "netstack", "iperf"]
#: Four trust domains: the table's component granularity.
COMPARTMENTS = [["netstack"], ["sched"], ["libc"], ["alloc", "iperf"]]
SH_SUITE = ("asan", "ubsan", "stackprotector", "cfi")
#: Component name → libraries hardened when "SH: C only" is selected.
COMPONENTS = {
    "Scheduler": ["sched"],
    "Network stack": ["netstack"],
    "LibC": ["libc"],
    "Rest of the system": ["iperf"],
}
ALL_LIBS = ["sched", "netstack", "libc", "iperf"]
#: Table 1's measurement point: a small recv buffer (CPU-bound regime).
BUFFER_SIZE = 128
TOTAL_BYTES = 1 << 19


def measure(hardened: list[str]) -> float:
    config = BuildConfig(
        libraries=LIBRARIES,
        compartments=COMPARTMENTS,
        backend="none",
        hardening={lib: SH_SUITE for lib in hardened},
    )
    image = build_image(config)
    return run_iperf(image, BUFFER_SIZE, TOTAL_BYTES).throughput_mbps


@pytest.fixture(scope="module")
def baseline():
    return measure([])


@pytest.mark.parametrize("component", list(COMPONENTS))
def test_table1_sh_placement(benchmark, report, baseline, component):
    libs = COMPONENTS[component]
    others = [lib for lib in ALL_LIBS if lib not in libs]

    def run() -> tuple[float, float]:
        return measure(libs), measure(others)

    only, all_but = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row(
        "Table1 iperf SH placement",
        f"{component:20s} SH-all-but-C: {all_but:7.0f} Mb/s "
        f"({baseline / all_but:4.2f}x)   SH-C-only: {only:7.0f} Mb/s "
        f"({baseline / only:4.2f}x)",
    )
    report.value(
        "table1",
        component,
        {"only_mbps": only, "all_but_mbps": all_but, "baseline_mbps": baseline},
    )
    benchmark.extra_info["slowdown_only"] = baseline / only
    benchmark.extra_info["slowdown_all_but"] = baseline / all_but


def test_table1_whole_system(benchmark, report, baseline):
    everything = benchmark.pedantic(
        measure, args=(ALL_LIBS,), rounds=1, iterations=1
    )
    report.row(
        "Table1 iperf SH placement",
        f"{'Entire system':20s} baseline: {baseline:7.0f} Mb/s   "
        f"SH everything: {everything:7.0f} Mb/s "
        f"({baseline / everything:4.2f}x)",
    )
    report.value(
        "table1",
        "Entire system",
        {"baseline_mbps": baseline, "all_sh_mbps": everything},
    )
    assert baseline / everything > 2.0


def test_table1_shape_claims(benchmark, report, baseline):
    """Ordering claims: libc dominates, scheduler is ~free."""
    slowdowns = benchmark.pedantic(
        lambda: {
            component: baseline / measure(libs)
            for component, libs in COMPONENTS.items()
        },
        rounds=1,
        iterations=1,
    )
    # "The performance impact strongly depends on the component
    # running with SH: the scheduler brings a 1% overhead while the
    # LibC has a 2.3x slowdown.  Interestingly, the slowdown with SH
    # for the network stack is low (6%)."
    assert slowdowns["Scheduler"] < 1.03
    assert slowdowns["Network stack"] < 1.15
    assert 1.05 < slowdowns["Rest of the system"] < 1.45
    assert slowdowns["LibC"] > 2.0
    assert slowdowns["LibC"] == max(slowdowns.values())
    report.row(
        "Table1 iperf SH placement",
        "shape claims verified: sched ~1x < netstack < rest << libc",
    )
